//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface `benches/micro.rs` uses: `Criterion`,
//! `benchmark_group` / `bench_function` / `sample_size` / `finish`,
//! `Bencher::{iter, iter_batched}`, [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain monotonic-clock loop (no outlier rejection or
//! HTML reports): each benchmark is calibrated to ~2 ms per sample, runs
//! `sample_size` samples, and prints the mean, min, and max ns/iteration.
//! Under `cargo test` (no `--bench` argument) every benchmark body runs
//! exactly once as a smoke test, mirroring upstream's test mode.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for parity; the shim always
/// runs setup once per measured batch element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { bench_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 50,
            criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Registers and (unless filtered out) runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            bench_mode: self.criterion.bench_mode,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    /// Ends the group (upstream writes reports here; the shim prints live).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure to drive timing.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    /// Mean ns/iter of each sample.
    samples_ns: Vec<f64>,
}

/// Target wall-clock duration of one timed sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(2);

impl Bencher {
    /// Times a routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            black_box(routine());
            return;
        }
        // Calibrate iterations per sample against the per-sample budget.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times a routine with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.bench_mode {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..self.sample_size {
            // One setup+run per sample keeps setup cost fully untimed.
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, id: &str) {
        if !self.bench_mode {
            println!("test {id} ... ok (smoke)");
            return;
        }
        let n = self.samples_ns.len().max(1) as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!("{id:<48} time: [{min:>12.1} ns  {mean:>12.1} ns  {max:>12.1} ns]/iter");
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut criterion = Criterion {
            bench_mode: false,
            filter: None,
        };
        let mut runs = 0;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut criterion = Criterion {
            bench_mode: true,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5).bench_function("spin", |b| {
            b.iter(|| std::hint::black_box(17u64.wrapping_mul(31)))
        });
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            bench_mode: false,
            filter: Some("other".to_string()),
        };
        let mut runs = 0;
        let mut group = criterion.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0);
    }
}
