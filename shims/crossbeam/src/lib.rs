//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `deque` module (work-stealing scheduler queues) is provided —
//! that is the sole surface the DMVCC executor uses. The implementation
//! trades crossbeam's lock-free Chase-Lev algorithm for short critical
//! sections over per-deque spin-friendly mutexes: owners push/pop at the
//! back of their own deque, thieves steal from the front, and the global
//! [`deque::Injector`] is a FIFO overflow queue. The *sharding* property
//! that matters for scalability — each worker contends only on its own
//! deque — is preserved; only the instruction-level lock-freedom is not.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A race was lost; the caller may retry.
        Retry,
    }

    impl<T> Steal<T> {
        /// `true` for [`Steal::Success`].
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        /// Extracts the stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    #[derive(Debug)]
    struct Buffer<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// A per-worker double-ended queue. The owning worker pushes and pops
    /// at one end; [`Stealer`]s take from the other.
    #[derive(Debug)]
    pub struct Worker<T> {
        buffer: Arc<Buffer<T>>,
        lifo: bool,
    }

    /// A handle for stealing tasks from another worker's deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        buffer: Arc<Buffer<T>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                buffer: Arc::clone(&self.buffer),
            }
        }
    }

    impl<T> Worker<T> {
        /// Creates a FIFO worker deque (pop from the front).
        pub fn new_fifo() -> Self {
            Worker {
                buffer: Arc::new(Buffer {
                    queue: Mutex::new(VecDeque::new()),
                }),
                lifo: false,
            }
        }

        /// Creates a LIFO worker deque (pop from the back).
        pub fn new_lifo() -> Self {
            Worker {
                buffer: Arc::new(Buffer {
                    queue: Mutex::new(VecDeque::new()),
                }),
                lifo: true,
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.buffer
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(task);
        }

        /// Pops a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            let mut queue = self.buffer.queue.lock().unwrap_or_else(|p| p.into_inner());
            if self.lifo {
                queue.pop_back()
            } else {
                queue.pop_front()
            }
        }

        /// `true` when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.buffer
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.buffer
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// Creates a stealer handle onto this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                buffer: Arc::clone(&self.buffer),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the front of the deque.
        pub fn steal(&self) -> Steal<T> {
            let mut queue = match self.buffer.queue.try_lock() {
                Ok(queue) => queue,
                Err(std::sync::TryLockError::WouldBlock) => return Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            };
            match queue.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// `true` when the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.buffer
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }
    }

    /// A global FIFO injector queue shared by all workers.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(task);
        }

        /// Steals one task from the front of the queue.
        pub fn steal(&self) -> Steal<T> {
            let mut queue = match self.queue.try_lock() {
                Ok(queue) => queue,
                Err(std::sync::TryLockError::WouldBlock) => return Steal::Retry,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            };
            match queue.pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// `true` when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            self.queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .is_empty()
        }

        /// Number of queued tasks.
        pub fn len(&self) -> usize {
            self.queue.lock().unwrap_or_else(|p| p.into_inner()).len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn worker_fifo_order() {
        let w: Worker<u32> = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_front() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        // Owner pops LIFO (2), thief steals FIFO (1).
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_roundtrip_across_threads() {
        let injector = std::sync::Arc::new(Injector::new());
        for i in 0..100 {
            injector.push(i);
        }
        let mut handles = Vec::new();
        let total = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..4 {
            let injector = std::sync::Arc::clone(&injector);
            let total = std::sync::Arc::clone(&total);
            handles.push(std::thread::spawn(move || loop {
                match injector.steal() {
                    Steal::Success(v) => {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                    Steal::Empty => break,
                    Steal::Retry => continue,
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 4950);
    }
}
