//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the minimal API surface it actually uses: [`Mutex`], [`RwLock`]
//! and [`Condvar`] with parking_lot's ergonomics (no lock poisoning, guards
//! returned directly, `Condvar::wait` taking `&mut MutexGuard`). Everything
//! is a thin wrapper over `std::sync`; poisoning is deliberately swallowed
//! (a panicking thread aborts the test anyway).

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` internally so [`Condvar`]
/// can temporarily relinquish the underlying std guard during a wait.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => MutexGuard(Some(guard)),
            Err(poison) => MutexGuard(Some(poison.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(poison)) => {
                Some(MutexGuard(Some(poison.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard present outside of wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_deref_mut()
            .expect("guard present outside of wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable mirroring `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex meanwhile.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.0 = Some(inner);
    }

    /// Blocks until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poison) => RwLockReadGuard(poison.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poison) => RwLockWriteGuard(poison.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_roundtrip() {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_all();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        drop(started);
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let result = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(result.timed_out());
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
