//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`Content`](serde::Content) tree as JSON text.

use serde::{Content, Serialize};

/// Serialization error (the shim's renderer is total; kept for API parity).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(content: &Content, indent: Option<usize>, depth: usize, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => {
            if x.is_finite() {
                // Match serde_json: integral floats keep a trailing `.0`.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => render_string(s, out),
        Content::Array(items) => {
            render_container(items.iter(), '[', ']', indent, depth, out, |item, out| {
                render(item, indent, depth + 1, out);
            });
        }
        Content::Object(entries) => {
            render_container(
                entries.iter(),
                '{',
                '}',
                indent,
                depth,
                out,
                |(k, v), out| {
                    render_string(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(v, indent, depth + 1, out);
                },
            );
        }
    }
}

fn render_container<I, F>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut each: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        each(item, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty_json() {
        let value = Content::Object(vec![
            ("name".to_string(), Content::Str("fig7a".to_string())),
            ("threads".to_string(), Content::U64(8)),
            ("speedup".to_string(), Content::F64(3.0)),
            (
                "series".to_string(),
                Content::Array(vec![Content::U64(1), Content::U64(2)]),
            ),
        ]);
        struct Wrapper(Content);
        impl Serialize for Wrapper {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let text = to_string_pretty(&Wrapper(value)).unwrap();
        assert_eq!(
            text,
            "{\n  \"name\": \"fig7a\",\n  \"threads\": 8,\n  \"speedup\": 3.0,\n  \"series\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        let text = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\"");
    }
}
