//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Backed by xoshiro256++ seeded via splitmix64 — a high-quality, fast,
//! deterministic generator. The *stream* differs from upstream `StdRng`
//! (ChaCha12), which is fine here: every consumer in this workspace derives
//! expectations dynamically (serial-vs-parallel equality, distribution
//! shape assertions), never from hard-coded sample values.

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types samplable from uniform bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Rejection-free (modulo-bias-corrected via widening multiply) uniform
/// draw from `[0, bound)`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's multiply-shift with one rejection round for exactness.
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound && low < bound.wrapping_neg() % bound + bound {
            // Statistically negligible; retry keeps the draw exactly uniform.
            continue;
        }
        return (m >> 64) as u64;
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} far from 0.25");
    }
}
