//! Offline stand-in for `serde` (serialization only).
//!
//! Instead of upstream's visitor-based `Serializer` machinery, types
//! serialize into a small [`Content`] tree that `serde_json` renders.
//! `#[derive(Serialize)]` (re-exported from the companion `serde_derive`
//! shim) supports named-field structs, which is every derive site in this
//! workspace.

pub use serde_derive::Serialize;

/// A serialized value: the JSON data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Content>),
    /// Ordered key/value map (field order preserved).
    Object(Vec<(String, Content)>),
}

/// Types serializable into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_content(&self) -> Content;
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u64.to_content(), Content::U64(7));
        assert_eq!((-3i64).to_content(), Content::I64(-3));
        assert_eq!("hi".to_content(), Content::Str("hi".to_string()));
        assert_eq!(
            vec![1u8, 2].to_content(),
            Content::Array(vec![Content::U64(1), Content::U64(2)])
        );
        assert_eq!(None::<u64>.to_content(), Content::Null);
    }
}
