//! Offline `#[derive(Serialize)]` built directly on `proc_macro` (no
//! `syn`/`quote`). Supports structs with named fields — the only shape this
//! workspace derives — and emits an `impl ::serde::Serialize` that builds a
//! `::serde::Content::Object` from the fields in declaration order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut tokens = input.into_iter();
    let mut name = None;
    let mut body = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            if id.to_string() == "struct" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive(Serialize): expected struct name, got {other:?}"),
                }
                for tt in tokens.by_ref() {
                    if let TokenTree::Group(g) = tt {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
        }
    }
    let name = name.expect("derive(Serialize): input is not a struct");
    let body = body.expect("derive(Serialize): only named-field structs are supported");
    let fields = field_names(body);

    let mut entries = String::new();
    for field in &fields {
        entries.push_str(&format!(
            "(\"{field}\".to_string(), ::serde::Serialize::to_content(&self.{field})),\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Object(vec![\n{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl failed to parse")
}

/// Extracts field identifiers from the token stream inside the struct braces.
fn field_names(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip `#[...]` attributes (doc comments included).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Skip `pub` / `pub(...)` visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            other => panic!("derive(Serialize): unsupported struct shape at {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive(Serialize): expected ':' after field name, got {other:?}"),
        }
        // Skip the type: everything up to a comma outside angle brackets.
        let mut angle_depth = 0i64;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    names
}
