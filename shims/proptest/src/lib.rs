//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's test suite uses:
//! the [`proptest!`] macro (both `arg: Type` and `pat in strategy` binding
//! forms), strategies over integer ranges / tuples / collections,
//! [`prop_oneof!`] with optional weights, `prop::sample::select`,
//! `prop_map`, and the `prop_assert*` family.
//!
//! Differences from upstream, deliberate for offline minimalism:
//! - **No shrinking.** A failing case reports its case number and values
//!   (via the assertion message) but is not minimized.
//! - **Deterministic seeding.** Case `i` of every test derives its RNG from
//!   a fixed base seed (override with `PROPTEST_SEED`), so failures
//!   reproduce without persistence files; `proptest-regressions/` is
//!   ignored.
//! - Case count comes from `ProptestConfig.cases` as upstream, default 256,
//!   override with `PROPTEST_CASES`.

use std::ops::{Range, RangeFrom, RangeInclusive};

pub mod test_runner {
    //! Runner plumbing used by the [`proptest!`](crate::proptest) macro.

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for upstream compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Applies the `PROPTEST_CASES` environment override.
    pub fn resolve_cases(configured: u32) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(configured)
            .max(1)
    }

    /// The per-case RNG: xoshiro256++ seeded from a splitmix64 expansion
    /// of `base_seed ^ case_index`.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// RNG for case `case` of the current test.
        pub fn for_case(case: u64) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x9E3779B97F4A7C15u64);
            let mut state = base ^ case.wrapping_mul(0xA24BAED4963EE407);
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            loop {
                let x = self.next_u64();
                let m = (x as u128) * (bound as u128);
                let low = m as u64;
                if low < bound && low < bound.wrapping_neg() % bound {
                    continue;
                }
                return (m >> 64) as u64;
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for storage in heterogeneous collections.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    choices: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(choices: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { choices, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(self.total);
        for (weight, strategy) in &self.choices {
            if roll < *weight as u64 {
                return strategy.generate(rng);
            }
            roll -= *weight as u64;
        }
        unreachable!("roll below total weight")
    }
}

/// Types with a canonical "any value" strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy yielding any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Collection-size specification (`1..60`, `0..=5`, or an exact `usize`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s of `element` with length in `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors from an element strategy.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet`s (best-effort target size; duplicates
        /// drawn from small domains may yield fewer elements, never fewer
        /// than one when the minimum size is at least one).
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates ordered sets from an element strategy.
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.sample(rng);
                let mut set = std::collections::BTreeSet::new();
                let mut attempts = 0usize;
                while set.len() < target && attempts < target.saturating_mul(50) + 100 {
                    set.insert(self.element.generate(rng));
                    attempts += 1;
                }
                set
            }
        }

        /// Strategy for `BTreeMap`s (same sizing semantics as sets).
        #[derive(Debug, Clone)]
        pub struct BTreeMapStrategy<K, V> {
            keys: K,
            values: V,
            size: SizeRange,
        }

        /// Generates ordered maps from key and value strategies.
        pub fn btree_map<K, V>(
            keys: K,
            values: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            BTreeMapStrategy {
                keys,
                values,
                size: size.into(),
            }
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            type Value = std::collections::BTreeMap<K::Value, V::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.sample(rng);
                let mut map = std::collections::BTreeMap::new();
                let mut attempts = 0usize;
                while map.len() < target && attempts < target.saturating_mul(50) + 100 {
                    map.insert(self.keys.generate(rng), self.values.generate(rng));
                    attempts += 1;
                }
                map
            }
        }
    }

    /// Strategies sampling from explicit choices.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            choices: Vec<T>,
        }

        /// Uniform choice from `choices` (must be non-empty).
        pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
            assert!(!choices.is_empty(), "select from empty list");
            Select { choices }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.choices.len() as u64) as usize;
                self.choices[i].clone()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests. Supports `arg: Type` (implicit `any`),
/// `pat in strategy`, mixed forms, and `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $crate::__proptest_params!{ @parse ($config) ($name) ($body) [] $($params)* }
        $crate::__proptest_fns!{ ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    (@parse ($config:expr) ($name:ident) ($body:block) [$($acc:tt)*]) => {
        $crate::__proptest_emit!{ ($config) ($name) ($body) [$($acc)*] }
    };
    (@parse ($config:expr) ($name:ident) ($body:block) [$($acc:tt)*] $pname:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_params!{ @parse ($config) ($name) ($body)
            [$($acc)* (($pname) ($crate::any::<$ty>()))] $($rest)* }
    };
    (@parse ($config:expr) ($name:ident) ($body:block) [$($acc:tt)*] $pname:ident : $ty:ty) => {
        $crate::__proptest_params!{ @parse ($config) ($name) ($body)
            [$($acc)* (($pname) ($crate::any::<$ty>()))] }
    };
    (@parse ($config:expr) ($name:ident) ($body:block) [$($acc:tt)*] $pat:pat in $strategy:expr, $($rest:tt)*) => {
        $crate::__proptest_params!{ @parse ($config) ($name) ($body)
            [$($acc)* (($pat) ($strategy))] $($rest)* }
    };
    (@parse ($config:expr) ($name:ident) ($body:block) [$($acc:tt)*] $pat:pat in $strategy:expr) => {
        $crate::__proptest_params!{ @parse ($config) ($name) ($body)
            [$($acc)* (($pat) ($strategy))] }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_emit {
    (($config:expr) ($name:ident) ($body:block) [$((($pat:pat) ($strategy:expr)))*]) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            for case in 0..cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(case as u64);
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __proptest_rng);)*
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{case} failed: {msg}");
                    }
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case(0);
        for _ in 0..1000 {
            let v = (5u64..10).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (0u8..=3).generate(&mut rng);
            assert!(w <= 3);
            let x = (1u64..).generate(&mut rng);
            assert!(x >= 1);
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = crate::test_runner::TestRng::for_case(1);
        let strategy = prop_oneof![3 => Just(0u8), 1 => Just(1u8)];
        let ones: usize = (0..4000)
            .map(|_| strategy.generate(&mut rng) as usize)
            .sum();
        assert!((800..1200).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::test_runner::TestRng::for_case(2);
        for _ in 0..200 {
            let v = prop::collection::vec(0u8..=255, 1..24).generate(&mut rng);
            assert!((1..24).contains(&v.len()));
            let s = prop::collection::btree_set(0usize..10, 1..5).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_typed_and_strategy_args(a: u64, b in 1u64..100, pair in (0usize..4, 0u8..=3)) {
            prop_assert!((1..100).contains(&b));
            prop_assert!(pair.0 < 4 && pair.1 <= 3);
            prop_assert_eq!(a.wrapping_add(0), a);
            prop_assume!(a != u64::MAX);
            prop_assert_ne!(a + 1, a);
        }

        #[test]
        fn macro_array_args(limbs: [u64; 4], tail in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert_eq!(limbs.len(), 4);
            prop_assert!(tail.len() < 8);
        }
    }
}
