//! Example applications for the DMVCC reproduction.
//!
//! Each binary in this directory is a self-contained scenario:
//!
//! - `quickstart` — mint/transfer block, serial vs DMVCC, root equality.
//! - `token_airdrop` — the commutative-write showcase.
//! - `ico_rush` — the paper's hot-contract scenario with an early-write
//!   ablation.
//! - `analyze_contract` — P-SAG/C-SAG inspection of the paper's Fig. 1
//!   contract.
