//! Quickstart: deploy a token, build a block of transactions, execute it
//! serially and with DMVCC, and verify both produce the same state root.
//!
//! Run with: `cargo run --release -p dmvcc-examples --bin quickstart`

use dmvcc_analysis::Analyzer;
use dmvcc_core::{
    build_csags, execute_block_serial, simulate_dmvcc, DmvccConfig, ParallelConfig,
    ParallelExecutor,
};
use dmvcc_primitives::{Address, U256};
use dmvcc_state::StateDb;
use dmvcc_vm::{calldata, contracts, BlockEnv, CodeRegistry, Transaction, TxEnv};

fn main() {
    // 1. Deploy an ERC20-style token.
    let token = Address::from_u64(1000);
    let registry = CodeRegistry::builder()
        .deploy(token, contracts::token())
        .build();
    let analyzer = Analyzer::new(registry);

    // 2. Build a block: a mint followed by a payment chain and a batch of
    //    independent airdrops.
    let user = |i: u64| Address::from_u64(i);
    let mint = |to: Address, amount: u64| {
        Transaction::call(TxEnv::call(
            user(999),
            token,
            calldata(
                contracts::token_fn::MINT,
                &[to.to_u256(), U256::from(amount)],
            ),
        ))
    };
    let transfer = |from: Address, to: Address, amount: u64| {
        Transaction::call(TxEnv::call(
            from,
            token,
            calldata(
                contracts::token_fn::TRANSFER,
                &[to.to_u256(), U256::from(amount)],
            ),
        ))
    };
    let mut block = vec![
        mint(user(1), 1_000),
        transfer(user(1), user(2), 300),
        transfer(user(2), user(3), 100),
    ];
    for i in 10..30 {
        block.push(mint(user(i), 50)); // independent airdrops
    }

    // 3. Serial reference execution.
    let mut serial_db = StateDb::new();
    let snapshot = serial_db.latest().clone();
    let env = BlockEnv::new(1, 1_700_000_000);
    let trace = execute_block_serial(&block, &snapshot, &analyzer, &env);
    let serial_root = serial_db.commit(&trace.final_writes);
    println!("serial execution: {} gas total", trace.total_gas);

    // 4. DMVCC in virtual time: the paper's speedup metric.
    let csags = build_csags(&block, &snapshot, &analyzer, &env);
    for threads in [1, 2, 4, 8] {
        let report = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads));
        println!(
            "DMVCC on {threads} thread(s): makespan {} gas, speedup {:.2}x, {} aborts",
            report.makespan,
            report.speedup(),
            report.aborts
        );
    }

    // 5. DMVCC for real: multi-threaded execution, committed to a second
    //    StateDB — the Merkle roots must match (deterministic
    //    serializability, the paper's Theorem 1 / RQ1).
    let executor = ParallelExecutor::new(analyzer, ParallelConfig::default());
    let outcome = executor.execute_block(&block, &snapshot, &env);
    let mut parallel_db = StateDb::new();
    let parallel_root = parallel_db.commit(&outcome.final_writes);
    println!("serial root:   {serial_root}");
    println!("parallel root: {parallel_root}");
    assert_eq!(serial_root, parallel_root, "roots must match");
    println!("roots match — deterministic serializability holds");
}
