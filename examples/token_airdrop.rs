//! Token airdrop scenario: one distributor credits thousands of accounts
//! of a single popular token — the workload class the paper highlights
//! where *commutative writes* and *write versioning* shine: every credit
//! updates the shared `totalSupply`, so DAG-style scheduling serializes
//! the entire airdrop while DMVCC executes it embarrassingly parallel.
//!
//! Run with: `cargo run --release -p dmvcc-examples --bin token_airdrop`

use dmvcc_analysis::Analyzer;
use dmvcc_baselines::{simulate_dag, simulate_occ};
use dmvcc_core::{build_csags, execute_block_serial, simulate_dmvcc, DmvccConfig};
use dmvcc_primitives::{Address, U256};
use dmvcc_state::Snapshot;
use dmvcc_vm::{calldata, contracts, BlockEnv, CodeRegistry, Transaction, TxEnv};

fn main() {
    let token = Address::from_u64(5000);
    let registry = CodeRegistry::builder()
        .deploy(token, contracts::token())
        .build();
    let analyzer = Analyzer::new(registry);

    // A block that is one big airdrop: 500 mints to distinct accounts.
    let block: Vec<Transaction> = (0..500)
        .map(|i| {
            Transaction::call(TxEnv::call(
                Address::from_u64(9_999),
                token,
                calldata(
                    contracts::token_fn::MINT,
                    &[Address::from_u64(10 + i).to_u256(), U256::from(25u64)],
                ),
            ))
        })
        .collect();

    let snapshot = Snapshot::empty();
    let env = BlockEnv::new(1, 1_700_000_000);
    let trace = execute_block_serial(&block, &snapshot, &analyzer, &env);
    let csags = build_csags(&block, &snapshot, &analyzer, &env);

    println!(
        "airdrop block: {} mints, {} gas serial\n",
        block.len(),
        trace.total_gas
    );
    println!("{:>8}{:>12}{:>12}{:>12}", "threads", "DAG", "OCC", "DMVCC");
    for threads in [1, 2, 4, 8, 16, 32] {
        let dag = simulate_dag(&trace, threads);
        let occ = simulate_occ(&trace, threads);
        let dmvcc = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads));
        println!(
            "{threads:>8}{:>11.2}x{:>11.2}x{:>11.2}x",
            dag.speedup(),
            occ.speedup(),
            dmvcc.speedup()
        );
    }
    println!(
        "\nEvery mint bumps the shared totalSupply slot: write-write conflicts\n\
         serialize the DAG baseline and retry-storm OCC, while DMVCC's\n\
         commutative writes make the whole airdrop conflict-free."
    );
}
