//! ICO rush: the paper's motivating high-contention scenario ("almost all
//! transactions in the recent blocks access the same ICO contract").
//! Compares all four schedulers on a block dominated by one hot token plus
//! background traffic, and shows early-write visibility's contribution.
//!
//! Run with: `cargo run --release -p dmvcc-examples --bin ico_rush`

use dmvcc_analysis::Analyzer;
use dmvcc_baselines::{simulate_dag, simulate_occ};
use dmvcc_core::{build_csags, execute_block_serial, simulate_dmvcc, DmvccConfig};
use dmvcc_state::Snapshot;
use dmvcc_vm::BlockEnv;
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    // The library's skewed profile: 1 % hot contracts, 50 % hot traffic,
    // ICO-style mint bias.
    let mut generator = WorkloadGenerator::new(WorkloadConfig::high_contention(7));
    let analyzer = Analyzer::new(generator.registry().clone());
    let snapshot = Snapshot::from_entries(generator.genesis_entries());
    let env = BlockEnv::new(1, 1_700_000_000);
    let block = generator.block(1_000);

    let trace = execute_block_serial(&block, &snapshot, &analyzer, &env);
    let csags = build_csags(&block, &snapshot, &analyzer, &env);

    println!(
        "ICO-rush block: {} txs, {} gas serial",
        block.len(),
        trace.total_gas
    );
    println!(
        "hot contracts: {:?}\n",
        generator
            .hot_contracts()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "{:>8}{:>10}{:>10}{:>12}{:>18}",
        "threads", "DAG", "OCC", "DMVCC", "DMVCC -early"
    );
    for threads in [4, 8, 16, 32] {
        let dag = simulate_dag(&trace, threads);
        let occ = simulate_occ(&trace, threads);
        let dmvcc = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads));
        let no_early = simulate_dmvcc(
            &trace,
            &csags,
            &DmvccConfig {
                early_write: false,
                ..DmvccConfig::new(threads)
            },
        );
        println!(
            "{threads:>8}{:>9.2}x{:>9.2}x{:>11.2}x{:>17.2}x",
            dag.speedup(),
            occ.speedup(),
            dmvcc.speedup(),
            no_early.speedup()
        );
    }
    println!(
        "\nUnder hot-contract pressure the baselines flatten while DMVCC keeps\n\
         scaling; disabling early-write visibility shows how much of that edge\n\
         comes from publishing versions at release points."
    );
}
