//! SAG inspection: builds the P-SAG of the paper's Fig. 1 contract, then
//! refines it into C-SAGs for two transactions that take different
//! branches — demonstrating runtime-dependent key resolution, loop
//! unrolling and release-point gas bounds (paper §III-B).
//!
//! Run with: `cargo run --release -p dmvcc-examples --bin analyze_contract`

use dmvcc_analysis::{cfg_to_dot, static_gas_bounds, Analyzer, PSag};
use dmvcc_primitives::{Address, U256};
use dmvcc_state::{Snapshot, StateKey};
use dmvcc_vm::{calldata, contracts, disassemble, BlockEnv, CodeRegistry, Transaction, TxEnv};

fn main() {
    let code = contracts::fig1_example();
    println!("=== Fig. 1 `Example` contract, disassembly (excerpt) ===");
    for line in disassemble(&code).lines().take(18) {
        println!("{line}");
    }
    println!("  ... ({} bytes total)\n", code.len());

    // Static analysis: the P-SAG.
    let psag = PSag::build(&code);
    println!("=== P-SAG (static) ===");
    println!("state-access nodes : {}", psag.ops.len());
    println!(
        "resolved statically: {} (constant slots like B[0], B[1])",
        psag.resolved().count()
    );
    println!(
        "placeholders '–'   : {} (keys depending on tx input / state)",
        psag.unresolved().count()
    );
    println!("loop nodes         : {:?}", psag.loop_head_pcs);
    println!("release points     : {:?}", psag.release_pcs);
    let bounds = static_gas_bounds(&psag.cfg);
    let bounded = bounds.iter().filter(|b| b.is_some()).count();
    println!(
        "static gas bounds  : {}/{} blocks bounded (loop blocks are unbounded;",
        bounded,
        bounds.len()
    );
    println!("                     their release gas comes from C-SAG measurement)\n");

    // Graphviz export for visual inspection.
    let dot = cfg_to_dot(&psag.cfg, &psag.release_pcs);
    if let Err(err) = std::fs::write("fig1_sag.dot", &dot) {
        eprintln!("could not write fig1_sag.dot: {err}");
    } else {
        println!(
            "wrote fig1_sag.dot ({} bytes) — render with `dot -Tsvg`\n",
            dot.len()
        );
    }

    // Dynamic refinement: C-SAGs under two different snapshots.
    let contract = Address::from_u64(77);
    let registry = CodeRegistry::builder()
        .deploy(contract, contracts::fig1_example())
        .build();
    let analyzer = Analyzer::new(registry);
    let x = Address::from_u64(42).to_u256();
    let tx = Transaction::call(TxEnv::call(
        Address::from_u64(1),
        contract,
        calldata(contracts::fig1_fn::UPDATE_B, &[x, U256::from(4u64)]),
    ));
    let env = BlockEnv::default();

    // Branch 2: A[x] = 0 in the snapshot.
    let sag = analyzer.csag(&tx, &Snapshot::empty(), &env);
    println!("=== C-SAG with A[x] = 0 (branch 2: B[0] = 0; assert; B[1] += y) ===");
    println!(
        "reads : {} keys, writes: {} keys",
        sag.reads.len(),
        sag.writes.len()
    );
    for rp in &sag.release_points {
        println!(
            "release point @pc {} needs ≤ {} gas to finish",
            rp.pc, rp.gas_bound
        );
    }

    // Branch 1: A[x] = 3 → the loop unrolls twice.
    let a_slot = contracts::map_slot(x, 0);
    let snapshot =
        Snapshot::from_entries([(StateKey::storage(contract, a_slot), U256::from(3u64))]);
    let sag = analyzer.csag(&tx, &snapshot, &env);
    println!("\n=== C-SAG with A[x] = 3 (branch 1: loop unrolled, B[3], B[2] written) ===");
    println!(
        "reads : {} keys, writes: {} keys",
        sag.reads.len(),
        sag.writes.len()
    );
    println!(
        "snapshot dependencies (paper's D_I(V, E) set): {} keys — if another\n\
         transaction overwrites one of them, this C-SAG is stale and the abort\n\
         machinery recovers",
        sag.snapshot_deps.len()
    );
}
