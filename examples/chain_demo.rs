//! Micro-testnet demo: mines a short chain with DMVCC validators, prints
//! each sealed header, verifies the hash chain end to end and compares
//! throughput across schedulers — the RQ3 pipeline at example scale.
//!
//! Run with: `cargo run --release -p dmvcc-examples --bin chain_demo`

use dmvcc_chain::{run_testnet, verify_chain, BlockHeader, ChainConfig, SchedulerKind};
use dmvcc_workload::WorkloadConfig;

fn config(scheduler: SchedulerKind) -> ChainConfig {
    ChainConfig {
        validators: 4,
        block_size: 250,
        mining_interval_secs: 1.0,
        threads: 8,
        scheduler,
        blocks: 5,
        gas_per_second: 4_000_000,
        workload: WorkloadConfig::high_contention(2024),
        crosscheck_every: 0,
        pool_miss_rate: 0.1,
        rebuild_missing_sags: true,
        policy: dmvcc_core::SchedulerPolicy::CriticalPath,
        pipeline: false,
        executor: dmvcc_chain::ExecutorKind::Sharded,
        backend: dmvcc_chain::BackendKind::Mem,
    }
}

fn main() {
    let report = run_testnet(&config(SchedulerKind::Dmvcc));
    println!("== mined chain (DMVCC, 8 threads, 10% pool desync) ==");
    for block in &report.chain {
        let header = &block.header;
        println!(
            "#{:<3} hash {}…  parent {}…  {} txs, {} gas",
            header.number,
            &header.hash().to_string()[..14],
            &header.parent_hash.to_string()[..14],
            block.txs.len(),
            header.gas_used,
        );
    }
    let headers: Vec<BlockHeader> = report.chain.iter().map(|b| b.header.clone()).collect();
    let bodies: Vec<_> = report
        .chain
        .iter()
        .map(|b| (b.txs.clone(), b.receipts.clone()))
        .collect();
    let genesis = BlockHeader {
        number: 0,
        ..BlockHeader::genesis(report.chain[0].header.parent_hash)
    };
    // (The genesis parent binding is checked inside run_testnet; here we
    // re-verify the published chain independently.)
    let _ = verify_chain(&genesis, &headers, &bodies);
    println!(
        "\npool SAG cache: {} hits / {} misses (missing SAGs rebuilt on the fly)",
        report.pool_stats.sag_hits, report.pool_stats.sag_misses
    );
    println!(
        "roots consistent across validators: {}",
        report.roots_consistent
    );

    println!("\n== throughput by scheduler (same chain, same workload) ==");
    for scheduler in SchedulerKind::ALL {
        let r = run_testnet(&config(scheduler));
        println!(
            "{:>8}: {:>7.0} TPS ({:.2}s execution, {} aborts)",
            scheduler.label(),
            r.tps,
            r.execution_seconds,
            r.aborts
        );
        assert_eq!(r.final_root, report.final_root, "chains must agree");
    }
}
