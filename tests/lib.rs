//! Shared fixtures for the integration tests: a deterministic contract
//! universe and transaction builders spanning every contract kind.

use dmvcc_analysis::Analyzer;
use dmvcc_primitives::{Address, U256};
use dmvcc_vm::{calldata, contracts, CodeRegistry, Transaction, TxEnv};

/// Addresses of the fixture deployments.
pub const TOKEN: u64 = 10_001;
/// AMM pool address id.
pub const AMM: u64 = 10_002;
/// NFT collection address id.
pub const NFT: u64 = 10_003;
/// Counter address id.
pub const COUNTER: u64 = 10_004;
/// Ballot address id.
pub const BALLOT: u64 = 10_005;
/// Fig. 1 example address id.
pub const FIG1: u64 = 10_006;
/// DEX router address id (bound to [`AMM`]).
pub const ROUTER: u64 = 10_007;
/// Calldata-bounded airdrop loop address id.
pub const AIRDROP: u64 = 10_008;
/// Snapshot-bounded batch-transfer loop address id.
pub const BATCH_TRANSFER: u64 = 10_009;
/// Input token of the aggregator router.
pub const TOKEN_A: u64 = 10_010;
/// Output token of the aggregator router.
pub const TOKEN_B: u64 = 10_011;
/// Aggregator router address id (binds [`AMM`], [`TOKEN_A`], [`TOKEN_B`]).
pub const ROUTER2: u64 = 10_012;
/// Flash-mint facility address id (binds [`TOKEN_A`]).
pub const FLASH: u64 = 10_013;
/// Price oracle address id (fans out to the consumers).
pub const ORACLE: u64 = 10_014;
/// First price-consumer address id.
pub const CONSUMER1: u64 = 10_015;
/// Second price-consumer address id.
pub const CONSUMER2: u64 = 10_016;
/// NFT drop address id (DELEGATECALLs [`SPLITTER`], STATICCALLs [`FLOOR`]).
pub const DROP: u64 = 10_017;
/// Royalty-splitter library address id (runs in the drop's storage).
pub const SPLITTER: u64 = 10_018;
/// Write-free floor-price oracle address id.
pub const FLOOR: u64 = 10_019;
/// Creator account paid by the drop's royalty value-CALL.
pub const CREATOR: u64 = 7;

/// Deploys one contract of every kind.
pub fn registry() -> CodeRegistry {
    let consumers = [Address::from_u64(CONSUMER1), Address::from_u64(CONSUMER2)];
    CodeRegistry::builder()
        .deploy(Address::from_u64(TOKEN), contracts::token())
        .deploy(Address::from_u64(AMM), contracts::amm())
        .deploy(Address::from_u64(NFT), contracts::nft())
        .deploy(Address::from_u64(COUNTER), contracts::counter())
        .deploy(Address::from_u64(BALLOT), contracts::ballot())
        .deploy(Address::from_u64(FIG1), contracts::fig1_example())
        .deploy(
            Address::from_u64(ROUTER),
            contracts::dex_router(Address::from_u64(AMM)),
        )
        .deploy(Address::from_u64(AIRDROP), contracts::airdrop())
        .deploy(
            Address::from_u64(BATCH_TRANSFER),
            contracts::batch_transfer(),
        )
        .deploy(Address::from_u64(TOKEN_A), contracts::token())
        .deploy(Address::from_u64(TOKEN_B), contracts::token())
        .deploy(
            Address::from_u64(ROUTER2),
            contracts::dex_router2(
                Address::from_u64(AMM),
                Address::from_u64(TOKEN_A),
                Address::from_u64(TOKEN_B),
            ),
        )
        .deploy(
            Address::from_u64(FLASH),
            contracts::flash_mint(Address::from_u64(TOKEN_A)),
        )
        .deploy(Address::from_u64(ORACLE), contracts::oracle(&consumers))
        .deploy(consumers[0], contracts::price_consumer())
        .deploy(consumers[1], contracts::price_consumer())
        .deploy(
            Address::from_u64(DROP),
            contracts::nft_drop(Address::from_u64(SPLITTER), Address::from_u64(FLOOR)),
        )
        .deploy(Address::from_u64(SPLITTER), contracts::royalty_splitter())
        .deploy(Address::from_u64(FLOOR), contracts::floor_oracle())
        .build()
}

/// An analyzer over [`registry`].
pub fn analyzer() -> Analyzer {
    Analyzer::new(registry())
}

/// A compact encoding of a transaction for property-test generation:
/// `(contract_choice, selector_choice, caller, a, b)` — every value of the
/// tuple space maps to a *valid* transaction, so proptest shrinking stays
/// in-domain.
pub fn decode_tx(choice: u8, selector: u8, caller: u8, a: u8, b: u8) -> Transaction {
    let caller_addr = Address::from_u64(1 + caller as u64 % 12);
    let peer = Address::from_u64(1 + a as u64 % 12).to_u256();
    let small = U256::from(1 + b as u64 % 40);
    match choice % 7 {
        0 => Transaction::transfer(caller_addr, Address::from_u64(1 + a as u64 % 12), small),
        1 => {
            let sel = match selector % 4 {
                0 => contracts::token_fn::TRANSFER,
                1 => contracts::token_fn::MINT,
                2 => contracts::token_fn::APPROVE,
                _ => contracts::token_fn::BALANCE_OF,
            };
            Transaction::call(TxEnv::call(
                caller_addr,
                Address::from_u64(TOKEN),
                calldata(sel, &[peer, small]),
            ))
        }
        2 => {
            let sel = match selector % 3 {
                0 => contracts::amm_fn::SWAP_A_FOR_B,
                1 => contracts::amm_fn::SWAP_B_FOR_A,
                _ => contracts::amm_fn::ADD_LIQUIDITY,
            };
            Transaction::call(TxEnv::call(
                caller_addr,
                Address::from_u64(AMM),
                calldata(sel, &[small, small]),
            ))
        }
        3 => {
            let sel = match selector % 3 {
                0 => contracts::nft_fn::MINT,
                1 => contracts::nft_fn::TRANSFER,
                _ => contracts::nft_fn::OWNER_OF,
            };
            Transaction::call(TxEnv::call(
                caller_addr,
                Address::from_u64(NFT),
                calldata(sel, &[U256::from(a as u64 % 5), peer]),
            ))
        }
        4 => {
            let sel = match selector % 3 {
                0 => contracts::counter_fn::INCREMENT,
                1 => contracts::counter_fn::INCREMENT_CHECKED,
                _ => contracts::counter_fn::ADD,
            };
            Transaction::call(TxEnv::call(
                caller_addr,
                Address::from_u64(COUNTER),
                calldata(sel, &[small]),
            ))
        }
        5 => {
            let sel = match selector % 3 {
                0 => contracts::fig1_fn::UPDATE_B,
                1 => contracts::fig1_fn::SET_A,
                _ => contracts::ballot_fn::VOTE,
            };
            let target = if selector % 3 == 2 { BALLOT } else { FIG1 };
            Transaction::call(TxEnv::call(
                caller_addr,
                Address::from_u64(target),
                calldata(sel, &[peer, U256::from(b as u64 % 14)]),
            ))
        }
        _ => {
            // Cross-contract composition: quotes and swaps through the
            // router (nested CALL frames; slippage reverts included).
            let input = match selector % 3 {
                0 => calldata(contracts::router_fn::QUOTE, &[small]),
                1 => calldata(contracts::router_fn::SWAP_EXACT, &[small, U256::ZERO]),
                _ => calldata(
                    contracts::router_fn::SWAP_EXACT,
                    &[small, U256::MAX], // impossible slippage bound
                ),
            };
            Transaction::call(TxEnv::call(caller_addr, Address::from_u64(ROUTER), input))
        }
    }
}

/// [`decode_tx`] with a sixth generated byte controlling *analyzability*:
/// roughly a quarter of the tuple space marks the transaction
/// unanalyzable, so property tests exercise blocks where the analyzer must
/// withhold predictions entirely (the hybrid executor's optimistic
/// population) while the rest stay predictive.
pub fn decode_tx_opaque(
    choice: u8,
    selector: u8,
    caller: u8,
    a: u8,
    b: u8,
    opaque: u8,
) -> Transaction {
    let tx = decode_tx(choice, selector, caller, a, b);
    if opaque.is_multiple_of(4) {
        tx.unanalyzable()
    } else {
        tx
    }
}

/// Genesis entries funding the fixture accounts and pools.
pub fn genesis() -> Vec<(dmvcc_state::StateKey, U256)> {
    use dmvcc_state::StateKey;
    let mut entries = Vec::new();
    for i in 1..=12u64 {
        entries.push((
            StateKey::balance(Address::from_u64(i)),
            U256::from(10_000u64),
        ));
        entries.push((
            StateKey::storage(
                Address::from_u64(TOKEN),
                contracts::map_slot(Address::from_u64(i).to_u256(), 1),
            ),
            U256::from(5_000u64),
        ));
    }
    entries.push((
        StateKey::storage(Address::from_u64(AMM), U256::ZERO),
        U256::from(100_000u64),
    ));
    entries.push((
        StateKey::storage(Address::from_u64(AMM), U256::ONE),
        U256::from(100_000u64),
    ));
    // Batch-transfer fixture: recipient count in slot 0 plus a balance for
    // every caller (the batch loop debits `amount × count` up front).
    entries.push((
        StateKey::storage(Address::from_u64(BATCH_TRANSFER), U256::ZERO),
        U256::from(5u64),
    ));
    for i in 1..=12u64 {
        entries.push((
            StateKey::storage(
                Address::from_u64(BATCH_TRANSFER),
                contracts::map_slot(Address::from_u64(i).to_u256(), 1),
            ),
            U256::from(100_000u64),
        ));
    }
    // Aggregator/flash universe: every caller holds the input token and
    // pre-approves both the router (swap pull) and the flash facility
    // (repay pull); the router holds output-token inventory.
    for i in 1..=12u64 {
        let who = Address::from_u64(i).to_u256();
        entries.push((
            StateKey::storage(Address::from_u64(TOKEN_A), contracts::map_slot(who, 1)),
            U256::from(5_000u64),
        ));
        entries.push((
            StateKey::storage(
                Address::from_u64(TOKEN_A),
                contracts::map_slot2(who, Address::from_u64(ROUTER2).to_u256(), 2),
            ),
            U256::from(1_000_000u64),
        ));
        entries.push((
            StateKey::storage(
                Address::from_u64(TOKEN_A),
                contracts::map_slot2(who, Address::from_u64(FLASH).to_u256(), 2),
            ),
            U256::from(1_000_000u64),
        ));
    }
    entries.push((
        StateKey::storage(
            Address::from_u64(TOKEN_B),
            contracts::map_slot(Address::from_u64(ROUTER2).to_u256(), 1),
        ),
        U256::from(1_000_000u64),
    ));
    // Mint-rush universe: mint price, creator registry slot, a treasury
    // able to cover many royalty payouts, and a published floor price.
    entries.push((
        StateKey::storage(Address::from_u64(DROP), U256::ONE),
        U256::from(100u64),
    ));
    entries.push((
        StateKey::storage(Address::from_u64(DROP), U256::from(2u64)),
        Address::from_u64(CREATOR).to_u256(),
    ));
    entries.push((
        StateKey::balance(Address::from_u64(DROP)),
        U256::from(1_000_000u64),
    ));
    entries.push((
        StateKey::storage(Address::from_u64(FLOOR), U256::ZERO),
        U256::from(55u64),
    ));
    entries
}

/// A compact encoding of a *call-heavy* transaction: every tuple value
/// maps to a valid cross-contract call — aggregator swaps through four
/// frames (happy path and slippage revert), flash mints with in-tx
/// repayment, oracle fanout updates, and the single-hop router quotes —
/// so property tests drive the interprocedural bind path end to end.
pub fn decode_router_tx(selector: u8, caller: u8, a: u8, b: u8) -> Transaction {
    let caller_addr = Address::from_u64(1 + caller as u64 % 12);
    let amount = U256::from(1 + a as u64 % 40);
    match selector % 8 {
        // Aggregator swap, generous slippage bound: four frames deep.
        0..=2 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(ROUTER2),
            calldata(contracts::router2_fn::SWAP, &[amount, U256::ZERO]),
        )),
        // Impossible slippage bound: the caller-side check reverts
        // between the reserve read and the state-moving calls.
        3 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(ROUTER2),
            calldata(contracts::router2_fn::SWAP, &[amount, U256::MAX]),
        )),
        // Flash mint: the repay pull must observe the minted balance.
        4..=5 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(FLASH),
            calldata(contracts::flash_fn::FLASH, &[amount]),
        )),
        // Oracle update: one call frame per subscribed consumer.
        6 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(ORACLE),
            calldata(contracts::oracle_fn::UPDATE, &[U256::from(b as u64)]),
        )),
        // Single-hop quote through the original router.
        _ => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(ROUTER),
            calldata(contracts::router_fn::QUOTE, &[amount]),
        )),
    }
}

/// A compact encoding of a *call-family* transaction against the
/// mint-rush fixtures: every tuple value maps to a valid call that
/// exercises DELEGATECALL context rebinding (mint royalties run the
/// splitter in the drop's storage), value-transferring CALLs with their
/// implicit balance accesses (the creator payout), bounded dynamic
/// dispatch (the payout target is loaded from registry slot 2),
/// STATICCALL write-freedom (floor preview), or the plain storage read of
/// `owner_of` — so property tests drive the whole call family end to end.
pub fn decode_drop_tx(selector: u8, caller: u8, a: u8) -> Transaction {
    let caller_addr = Address::from_u64(1 + caller as u64 % 12);
    let input = match selector % 8 {
        // The mint rush itself: sequence-counter RMW, owner write,
        // DELEGATECALL royalty split, bounded-dynamic value payout.
        0..=4 => calldata(contracts::drop_fn::MINT, &[]),
        // Floor preview: STATICCALL into the write-free oracle.
        5..=6 => calldata(contracts::drop_fn::PREVIEW, &[]),
        // Plain read of a (usually unminted) token's owner slot.
        _ => calldata(contracts::drop_fn::OWNER_OF, &[U256::from(a as u64 % 50)]),
    };
    Transaction::call(TxEnv::call(caller_addr, Address::from_u64(DROP), input))
}

/// A compact encoding of a *loop-heavy* transaction: every tuple value maps
/// to a valid call against the airdrop or batch-transfer fixture, spanning
/// taken loops (1..=32 iterations), zero-trip loops, the over-cap revert
/// path and the loop-free selectors.
pub fn decode_loop_tx(selector: u8, caller: u8, a: u8, b: u8) -> Transaction {
    let caller_addr = Address::from_u64(1 + caller as u64 % 12);
    let start = Address::from_u64(500 + a as u64 % 48).to_u256();
    let amount = U256::from(1 + b as u64 % 20);
    match selector % 8 {
        // Taken airdrop loop: 0..=32 recipients (n = 0 is a zero-trip loop).
        0..=2 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(AIRDROP),
            calldata(
                contracts::airdrop_fn::AIRDROP,
                &[start, amount, U256::from(a as u64 % 33)],
            ),
        )),
        // Over-cap revert: the guard clamp (`require(n <= 32)`) aborts.
        3 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(AIRDROP),
            calldata(
                contracts::airdrop_fn::AIRDROP,
                &[start, amount, U256::from(33 + b as u64 % 8)],
            ),
        )),
        4 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(AIRDROP),
            calldata(contracts::airdrop_fn::BALANCE_OF, &[start]),
        )),
        // Snapshot-bounded batch loop (count read from slot 0 at bind time).
        5..=6 => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(BATCH_TRANSFER),
            calldata(contracts::batch_transfer_fn::BATCH, &[start, amount]),
        )),
        _ => Transaction::call(TxEnv::call(
            caller_addr,
            Address::from_u64(BATCH_TRANSFER),
            calldata(contracts::batch_transfer_fn::DEPOSIT, &[amount]),
        )),
    }
}
