//! Chain-level integration: every scheduler drives the micro testnet to
//! the same chain of state roots; throughput ordering is sane; the
//! threaded executor cross-check holds across consecutive blocks.

use dmvcc_chain::{run_testnet, ChainConfig, SchedulerKind};
use dmvcc_workload::WorkloadConfig;

fn config(scheduler: SchedulerKind, seed: u64) -> ChainConfig {
    ChainConfig {
        validators: 4,
        block_size: 60,
        mining_interval_secs: 0.2,
        threads: 4,
        scheduler,
        blocks: 4,
        gas_per_second: 4_000_000,
        workload: WorkloadConfig {
            accounts: 80,
            token_contracts: 5,
            amm_contracts: 3,
            nft_contracts: 2,
            counter_contracts: 1,
            ballot_contracts: 1,
            fig1_contracts: 1,
            ..WorkloadConfig::high_contention(seed)
        },
        crosscheck_every: 2,
        pool_miss_rate: 0.0,
        rebuild_missing_sags: true,
        policy: dmvcc_core::SchedulerPolicy::CriticalPath,
        pipeline: false,
        executor: dmvcc_chain::ExecutorKind::Sharded,
        backend: dmvcc_chain::BackendKind::Mem,
    }
}

#[test]
fn all_schedulers_agree_on_every_block_root() {
    let reports: Vec<_> = SchedulerKind::ALL
        .iter()
        .map(|&s| run_testnet(&config(s, 3)))
        .collect();
    for report in &reports {
        assert!(report.roots_consistent, "roots diverged for a scheduler");
        assert_eq!(report.blocks, 4);
    }
    for pair in reports.windows(2) {
        for (a, b) in pair[0].chain.iter().zip(pair[1].chain.iter()) {
            assert_eq!(
                a.header.state_root, b.header.state_root,
                "chain diverged at {}",
                a.header.number
            );
        }
    }
}

#[test]
fn dmvcc_throughput_at_least_serial() {
    let serial = run_testnet(&config(SchedulerKind::Serial, 5));
    let dmvcc = run_testnet(&config(SchedulerKind::Dmvcc, 5));
    assert!(dmvcc.tps >= serial.tps - 1e-9);
    assert!(dmvcc.execution_seconds <= serial.execution_seconds + 1e-9);
}

#[test]
fn chain_state_evolves_across_blocks() {
    let report = run_testnet(&config(SchedulerKind::Dmvcc, 9));
    // Roots must change block to block (the workload always writes).
    for pair in report.chain.windows(2) {
        assert_ne!(pair[0].header.state_root, pair[1].header.state_root);
    }
    assert_eq!(
        report.final_root,
        report.chain.last().unwrap().header.state_root
    );
}

#[test]
fn different_seeds_different_chains() {
    let a = run_testnet(&config(SchedulerKind::Serial, 1));
    let b = run_testnet(&config(SchedulerKind::Serial, 2));
    assert_ne!(a.final_root, b.final_root);
}
