//! Model-based property test for access sequences: a random stream of
//! predict / write / add / read / drop operations is mirrored against a
//! simple sequential model; final values and read resolutions must agree.

use proptest::prelude::*;

use dmvcc_core::{AccessOp, AccessSequence, ReadResolution};
use dmvcc_primitives::{Address, U256};
use dmvcc_state::{Snapshot, StateKey};

fn key() -> StateKey {
    StateKey::storage(Address::from_u64(1), U256::ZERO)
}

#[derive(Debug, Clone)]
enum Op {
    /// Write by tx `t` of value `v` (predicted or not — version_write
    /// handles both).
    Write(usize, u64),
    /// Commutative add by tx `t` of delta `d`.
    Add(usize, u64),
    /// Drop tx `t`'s version.
    Drop(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..20, 1u64..100).prop_map(|(t, v)| Op::Write(t, v)),
        (0usize..20, 1u64..10).prop_map(|(t, d)| Op::Add(t, d)),
        (0usize..20).prop_map(Op::Drop),
    ]
}

/// Sequential model: per tx index, the effective operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ModelEntry {
    Write(u64),
    Add(u64),
}

fn model_value_before(
    model: &std::collections::BTreeMap<usize, ModelEntry>,
    tx: usize,
    snapshot: u64,
) -> u64 {
    let mut base = snapshot;
    let mut delta: u64 = 0;
    for (&t, &entry) in model.iter() {
        if t >= tx {
            break;
        }
        match entry {
            ModelEntry::Write(v) => {
                base = v;
                delta = 0;
            }
            ModelEntry::Add(d) => delta = delta.wrapping_add(d),
        }
    }
    base.wrapping_add(delta)
}

proptest! {
    #[test]
    fn sequence_matches_sequential_model(
        ops in prop::collection::vec(op_strategy(), 1..60),
        snapshot_value in 0u64..1000,
        probe in 0usize..21,
    ) {
        let snapshot = Snapshot::from_entries([(key(), U256::from(snapshot_value))]);
        let mut seq = AccessSequence::new();
        let mut model: std::collections::BTreeMap<usize, ModelEntry> =
            std::collections::BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Write(t, v) => {
                    seq.version_write(t, U256::from(v), false);
                    model.insert(t, ModelEntry::Write(v));
                }
                Op::Add(t, d) => {
                    // version_write(delta) accumulates when the tx already
                    // holds an Add entry; a full write absorbs the delta.
                    seq.version_write(t, U256::from(d), true);
                    match model.get(&t).copied() {
                        Some(ModelEntry::Write(v)) => {
                            model.insert(t, ModelEntry::Write(v.wrapping_add(d)));
                        }
                        Some(ModelEntry::Add(prev)) => {
                            model.insert(t, ModelEntry::Add(prev.wrapping_add(d)));
                        }
                        None => {
                            model.insert(t, ModelEntry::Add(d));
                        }
                    }
                }
                Op::Drop(t) => {
                    seq.drop_version(t);
                    model.remove(&t);
                }
            }
        }

        // Read resolution at an arbitrary probe index matches the model.
        match seq.resolve_read(probe, &key(), &snapshot) {
            ReadResolution::Ready { value, .. } => {
                let expected = model_value_before(&model, probe, snapshot_value);
                prop_assert_eq!(value, U256::from(expected));
            }
            ReadResolution::Blocked { .. } => {
                prop_assert!(false, "all versions are Done; no read can block");
            }
        }
    }

    #[test]
    fn pending_predictions_block_and_publishing_unblocks(
        writers in prop::collection::btree_set(0usize..10, 1..5),
        reader in 10usize..12,
    ) {
        let snapshot = Snapshot::empty();
        let mut seq = AccessSequence::new();
        for &w in &writers {
            seq.predict(w, AccessOp::Write);
        }
        // Blocked on the latest pending writer below the reader.
        match seq.resolve_read(reader, &key(), &snapshot) {
            ReadResolution::Blocked { writer } => {
                prop_assert_eq!(writer, *writers.iter().max().unwrap());
            }
            other => prop_assert!(false, "expected blocked, got {:?}", other),
        }
        // Publish all but the earliest: still blocked if the closest
        // preceding write is pending? No — the closest preceding version
        // wins; publishing the *latest* unblocks.
        let latest = *writers.iter().max().unwrap();
        seq.version_write(latest, U256::from(7u64), false);
        match seq.resolve_read(reader, &key(), &snapshot) {
            ReadResolution::Ready { value, sources } => {
                prop_assert_eq!(value, U256::from(7u64));
                prop_assert_eq!(sources, vec![latest]);
            }
            other => prop_assert!(false, "expected ready, got {:?}", other),
        }
    }
}
