//! The RQ1 oracle as a property: for ANY batch of transactions, the real
//! multi-threaded DMVCC executor commits exactly the serial write set, and
//! the Merkle roots agree — across thread counts, analysis accuracy, and
//! all three threaded engines (predictive, optimistic STM, hybrid).

use proptest::prelude::*;

use dmvcc_analysis::{AnalysisConfig, Analyzer};
use dmvcc_core::{
    execute_block_serial, HybridExecutor, ParallelConfig, ParallelExecutor, SchedulerPolicy,
    StmExecutor,
};
use dmvcc_integration_tests::{analyzer, decode_tx, decode_tx_opaque, genesis, registry};
use dmvcc_state::{Snapshot, StateDb};
use dmvcc_vm::{BlockEnv, Transaction};

fn check_block(txs: &[Transaction], threads: usize, hide: f64) {
    let snapshot = Snapshot::from_entries(genesis());
    let env = BlockEnv::new(1, 1_700_000_000);
    let reference = analyzer();
    let trace = execute_block_serial(txs, &snapshot, &reference, &env);

    // Both ready-queue policies must be serially equivalent: the FIFO
    // baseline and the critical-path scheduler only reorder *ready*
    // transactions, never the commit order.
    for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::CriticalPath] {
        let lossy = Analyzer::with_config(
            registry(),
            AnalysisConfig {
                hide_fraction: hide,
                seed: 5,
                ..Default::default()
            },
        );
        let executor = ParallelExecutor::new(
            lossy,
            ParallelConfig {
                threads,
                max_attempts: 64,
                scheduler: policy,
                pin_cores: false,
            },
        );
        let outcome = executor.execute_block(txs, &snapshot, &env);
        assert_eq!(
            outcome.final_writes,
            trace.final_writes,
            "write sets diverged (threads={threads}, hide={hide}, policy={})",
            policy.label()
        );

        // And the root-level check, exactly as the paper validates RQ1.
        let mut serial_db = StateDb::with_genesis(genesis());
        let mut parallel_db = serial_db.clone();
        let serial_root = serial_db.commit(&trace.final_writes);
        let parallel_root = parallel_db.commit(&outcome.final_writes);
        assert_eq!(serial_root, parallel_root, "Merkle roots diverged");
    }
}

/// The same property for the optimistic engines: the Block-STM executor
/// (which sees no predictions at all) and the hybrid dispatcher (which
/// strips the predictions of speculative/unanalyzable transactions) must
/// commit the serial write set, statuses and root — and their
/// [`dmvcc_core::ExecutorStats`] must satisfy the engines' accounting
/// invariants.
fn check_block_optimistic(txs: &[Transaction], threads: usize, hide: f64) {
    let snapshot = Snapshot::from_entries(genesis());
    let env = BlockEnv::new(1, 1_700_000_000);
    let reference = analyzer();
    let trace = execute_block_serial(txs, &snapshot, &reference, &env);
    let serial_statuses: Vec<_> = trace.txs.iter().map(|t| t.status.clone()).collect();
    let n = txs.len() as u64;

    let serial_root = {
        let mut db = StateDb::with_genesis(genesis());
        db.commit(&trace.final_writes)
    };
    let check = |outcome: &dmvcc_core::ParallelOutcome, label: &str| {
        assert_eq!(
            outcome.final_writes, trace.final_writes,
            "{label} write set diverged (threads={threads}, hide={hide})"
        );
        assert_eq!(
            outcome.statuses, serial_statuses,
            "{label} statuses diverged (threads={threads}, hide={hide})"
        );
        let mut db = StateDb::with_genesis(genesis());
        assert_eq!(
            db.commit(&outcome.final_writes),
            serial_root,
            "{label} root diverged"
        );
    };

    // STM ignores the ready-queue policy (its schedule is the atomic
    // execution cursor), so one run per thread count suffices.
    let stm = StmExecutor::new(
        reference.clone(),
        ParallelConfig {
            threads,
            max_attempts: 64,
            scheduler: SchedulerPolicy::CriticalPath,
            pin_cores: false,
        },
    );
    let outcome = stm.execute_block(txs, &snapshot, &env);
    check(&outcome, "stm");
    // Accounting invariants: every transaction validates exactly once at
    // its commit turn, re-executes at most once, and counts as optimistic.
    assert_eq!(outcome.stats.validations, n, "stm validations");
    assert_eq!(outcome.stats.optimistic_txs, n, "stm optimistic accounting");
    assert_eq!(
        outcome.stats.attempts,
        n + outcome.stats.validation_failures,
        "stm attempts = txs + re-executions"
    );
    assert!(
        outcome.stats.validation_failures <= n,
        "stm bounded re-execution"
    );

    // The hybrid dispatcher rides the sharded executor: both ready-queue
    // policies must stay serially equivalent, with and without lossy
    // analysis (hidden keys push transactions onto the speculative tier,
    // which the router strips to optimistic).
    for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::CriticalPath] {
        let lossy = Analyzer::with_config(
            registry(),
            AnalysisConfig {
                hide_fraction: hide,
                seed: 5,
                ..Default::default()
            },
        );
        let hybrid = HybridExecutor::new(
            lossy,
            ParallelConfig {
                threads,
                max_attempts: 64,
                scheduler: policy,
                pin_cores: false,
            },
        );
        let outcome = hybrid.execute_block(txs, &snapshot, &env);
        check(&outcome, policy.label());
        assert!(
            outcome.stats.optimistic_txs <= n,
            "hybrid routes at most the whole block"
        );
        let unanalyzable = txs.iter().filter(|tx| !tx.analyzable).count() as u64;
        assert!(
            outcome.stats.optimistic_txs >= unanalyzable,
            "every unanalyzable transaction must route optimistic"
        );
        assert!(
            outcome.stats.attempts >= n,
            "hybrid executes every transaction"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn parallel_equals_serial_precise_analysis(
        raw in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..24),
        threads in 1usize..5,
    ) {
        let txs: Vec<Transaction> = raw
            .into_iter()
            .map(|(c, s, k, a, b)| decode_tx(c, s, k, a, b))
            .collect();
        check_block(&txs, threads, 0.0);
    }

    #[test]
    fn parallel_equals_serial_lossy_analysis(
        raw in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..16),
        hide in prop::sample::select(vec![0.25f64, 0.5, 1.0]),
    ) {
        let txs: Vec<Transaction> = raw
            .into_iter()
            .map(|(c, s, k, a, b)| decode_tx(c, s, k, a, b))
            .collect();
        check_block(&txs, 4, hide);
    }

    #[test]
    fn stm_and_hybrid_equal_serial(
        raw in prop::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
            1..24,
        ),
        threads in 1usize..5,
    ) {
        // The sixth byte poisons ~a quarter of the block as unanalyzable,
        // so the hybrid run always carries a mixed population.
        let txs: Vec<Transaction> = raw
            .into_iter()
            .map(|(c, s, k, a, b, o)| decode_tx_opaque(c, s, k, a, b, o))
            .collect();
        check_block_optimistic(&txs, threads, 0.0);
    }

    #[test]
    fn stm_and_hybrid_equal_serial_lossy(
        raw in prop::collection::vec(
            (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
            1..16,
        ),
        hide in prop::sample::select(vec![0.25f64, 0.5, 1.0]),
    ) {
        let txs: Vec<Transaction> = raw
            .into_iter()
            .map(|(c, s, k, a, b, o)| decode_tx_opaque(c, s, k, a, b, o))
            .collect();
        check_block_optimistic(&txs, 4, hide);
    }
}

#[test]
fn long_dependent_chain_all_threads() {
    // A pathological chain: every tx reads the previous one's write.
    use dmvcc_integration_tests::COUNTER;
    use dmvcc_primitives::Address;
    use dmvcc_vm::{calldata, contracts, TxEnv};
    let txs: Vec<Transaction> = (0..30)
        .map(|i| {
            Transaction::call(TxEnv::call(
                Address::from_u64(100 + i),
                Address::from_u64(COUNTER),
                calldata(contracts::counter_fn::INCREMENT_CHECKED, &[]),
            ))
        })
        .collect();
    for threads in [1, 2, 4, 8] {
        check_block(&txs, threads, 0.0);
        // The chain is the STM worst case: every optimistic execution
        // except the frontier's reads stale state and re-executes at its
        // commit turn — convergence and equivalence must still hold.
        check_block_optimistic(&txs, threads, 0.0);
    }
}

#[test]
fn repeated_nft_mints_resolve_sequence_numbers() {
    // NFT mints mispredict the id under stale snapshots: the abort /
    // versioning machinery must still converge to the serial ids.
    use dmvcc_integration_tests::NFT;
    use dmvcc_primitives::Address;
    use dmvcc_vm::{calldata, contracts, TxEnv};
    let txs: Vec<Transaction> = (0..12)
        .map(|i| {
            Transaction::call(TxEnv::call(
                Address::from_u64(100 + i),
                Address::from_u64(NFT),
                calldata(contracts::nft_fn::MINT, &[]),
            ))
        })
        .collect();
    check_block(&txs, 4, 0.0);
    check_block_optimistic(&txs, 4, 0.0);
}
