//! Soundness of the C-SAG prediction: with precise analysis, a transaction
//! executed *first in a block* against the same snapshot the prediction
//! used must touch exactly the predicted key sets — the speculative
//! pre-execution and the real execution run the same interpreter over the
//! same state, so any divergence is an analysis bug.

use proptest::prelude::*;

use dmvcc_analysis::{AnalysisConfig, Analyzer, RefinementMode, RefinementTier};
use dmvcc_core::execute_block_serial;
use dmvcc_integration_tests::{
    analyzer, decode_drop_tx, decode_loop_tx, decode_router_tx, decode_tx, genesis, registry,
};
use dmvcc_state::Snapshot;
use dmvcc_vm::{BlockEnv, ExecStatus, Transaction, TxKind};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn csag_predicts_first_position_execution_exactly(
        (c, s, k, a, b) in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_tx(c, s, k, a, b);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let reference = analyzer();
        let sag = reference.csag(&tx, &snapshot, &env);
        let trace = execute_block_serial(
            std::slice::from_ref(&tx),
            &snapshot,
            &reference,
            &env,
        );
        let actual = &trace.txs[0];

        // The prediction's success verdict matches reality at position 0.
        prop_assert_eq!(
            sag.predicted_success,
            actual.status.is_success(),
            "status mismatch: predicted {:?}, actual {:?}",
            sag.predicted_success,
            actual.status
        );
        prop_assert_eq!(sag.predicted_gas, actual.gas_used);

        if actual.status.is_success() {
            // Writes/adds sets match exactly.
            let actual_writes: std::collections::BTreeSet<_> =
                actual.writes.keys().copied().collect();
            let actual_adds: std::collections::BTreeSet<_> =
                actual.adds.keys().copied().collect();
            prop_assert_eq!(&sag.writes, &actual_writes);
            prop_assert_eq!(&sag.adds, &actual_adds);
            // Every actual read was predicted (the prediction may contain
            // extra reads only for transfers' fused read/write slots).
            for read in &actual.reads {
                prop_assert!(
                    sag.reads.contains(&read.key),
                    "unpredicted read of {:?}",
                    read.key
                );
            }
        }
    }

    /// The two-tier refinement (symbolic binding with speculative
    /// fallback) must be an optimization, never a semantic change: for any
    /// generated transaction its C-SAG is bit-identical to the one a
    /// speculative-only analyzer produces — every key set, the access
    /// trace, release gas bounds, snapshot dependencies, the success
    /// verdict, and the gas estimate. Only the `tier` tag may differ.
    #[test]
    fn two_tier_and_speculative_only_predictions_agree(
        (c, s, k, a, b) in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_tx(c, s, k, a, b);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let two_tier = Analyzer::with_config(registry(), AnalysisConfig::default());
        let spec_only = Analyzer::with_config(
            registry(),
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let fast = two_tier.csag(&tx, &snapshot, &env);
        let slow = spec_only.csag(&tx, &snapshot, &env);

        prop_assert_eq!(&fast.reads, &slow.reads);
        prop_assert_eq!(&fast.writes, &slow.writes);
        prop_assert_eq!(&fast.adds, &slow.adds);
        prop_assert_eq!(&fast.trace, &slow.trace);
        prop_assert_eq!(&fast.release_points, &slow.release_points);
        prop_assert_eq!(&fast.last_write_pc, &slow.last_write_pc);
        prop_assert_eq!(&fast.snapshot_deps, &slow.snapshot_deps);
        prop_assert_eq!(fast.predicted_success, slow.predicted_success);
        prop_assert_eq!(fast.predicted_gas, slow.predicted_gas);
        if tx.kind == TxKind::Call {
            prop_assert_eq!(slow.tier, RefinementTier::Speculative);
        }
    }

    /// The loop-summarization tier is held to the same standard: for
    /// loop-heavy transactions (taken loops, zero-trip loops, the over-cap
    /// revert path, snapshot-bounded counts) the two-tier C-SAG must be
    /// bit-identical to the speculative-only one on every field except the
    /// `tier` tag — and these contracts must never need the speculative
    /// fallback at all.
    #[test]
    fn loopy_two_tier_and_speculative_only_predictions_agree(
        (s, k, a, b) in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_loop_tx(s, k, a, b);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let two_tier = Analyzer::with_config(registry(), AnalysisConfig::default());
        let spec_only = Analyzer::with_config(
            registry(),
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let fast = two_tier.csag(&tx, &snapshot, &env);
        let slow = spec_only.csag(&tx, &snapshot, &env);

        prop_assert_eq!(&fast.reads, &slow.reads);
        prop_assert_eq!(&fast.writes, &slow.writes);
        prop_assert_eq!(&fast.adds, &slow.adds);
        prop_assert_eq!(&fast.trace, &slow.trace);
        prop_assert_eq!(&fast.release_points, &slow.release_points);
        prop_assert_eq!(&fast.last_write_pc, &slow.last_write_pc);
        prop_assert_eq!(&fast.snapshot_deps, &slow.snapshot_deps);
        prop_assert_eq!(fast.predicted_success, slow.predicted_success);
        prop_assert_eq!(fast.predicted_gas, slow.predicted_gas);
        prop_assert_ne!(fast.tier, RefinementTier::Speculative);
        prop_assert_eq!(slow.tier, RefinementTier::Speculative);
    }

    /// The interprocedural tier is held to the same standard as the loop
    /// tier: for call-heavy transactions (four-frame aggregator swaps,
    /// caller-side slippage reverts, flash mints whose repay reads the
    /// in-transaction mint, oracle fanout) the composed bind must be
    /// bit-identical to speculation on every field except the `tier`
    /// tag — and these contracts must never need the speculative
    /// fallback at all.
    #[test]
    fn interprocedural_two_tier_and_speculative_only_predictions_agree(
        (s, k, a, b) in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_router_tx(s, k, a, b);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let two_tier = Analyzer::with_config(registry(), AnalysisConfig::default());
        let spec_only = Analyzer::with_config(
            registry(),
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let fast = two_tier.csag(&tx, &snapshot, &env);
        let slow = spec_only.csag(&tx, &snapshot, &env);

        prop_assert_eq!(&fast.reads, &slow.reads);
        prop_assert_eq!(&fast.writes, &slow.writes);
        prop_assert_eq!(&fast.adds, &slow.adds);
        prop_assert_eq!(&fast.trace, &slow.trace);
        prop_assert_eq!(&fast.release_points, &slow.release_points);
        prop_assert_eq!(&fast.last_write_pc, &slow.last_write_pc);
        prop_assert_eq!(&fast.snapshot_deps, &slow.snapshot_deps);
        prop_assert_eq!(fast.predicted_success, slow.predicted_success);
        prop_assert_eq!(fast.predicted_gas, slow.predicted_gas);
        prop_assert_ne!(fast.tier, RefinementTier::Speculative);
        prop_assert_eq!(slow.tier, RefinementTier::Speculative);
    }

    /// Composed call binding is concrete, so the position-0 exactness
    /// contract extends to call-heavy transactions unchanged.
    #[test]
    fn interprocedural_csag_predicts_first_position_execution_exactly(
        (s, k, a, b) in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_router_tx(s, k, a, b);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let reference = analyzer();
        let sag = reference.csag(&tx, &snapshot, &env);
        let trace = execute_block_serial(
            std::slice::from_ref(&tx),
            &snapshot,
            &reference,
            &env,
        );
        let actual = &trace.txs[0];
        prop_assert_eq!(sag.predicted_success, actual.status.is_success());
        prop_assert_eq!(sag.predicted_gas, actual.gas_used);
        if actual.status.is_success() {
            let actual_writes: std::collections::BTreeSet<_> =
                actual.writes.keys().copied().collect();
            let actual_adds: std::collections::BTreeSet<_> =
                actual.adds.keys().copied().collect();
            prop_assert_eq!(&sag.writes, &actual_writes);
            prop_assert_eq!(&sag.adds, &actual_adds);
            for read in &actual.reads {
                prop_assert!(
                    sag.reads.contains(&read.key),
                    "unpredicted read of {:?}",
                    read.key
                );
            }
        }
    }

    /// The full call family — DELEGATECALL context rebinding, STATICCALL
    /// write-freedom, value-transferring CALLs with their implicit
    /// balance accesses, and bounded dynamic dispatch through a registry
    /// slot — is held to the same standard: bit-identical to speculation
    /// on every field except the `tier` tag, never needing the
    /// speculative fallback, and mints land on the bounded-dynamic tier
    /// (the payout target is loaded from storage, not hard-coded).
    #[test]
    fn call_family_two_tier_and_speculative_only_predictions_agree(
        (s, k, a) in (0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_drop_tx(s, k, a);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let two_tier = Analyzer::with_config(registry(), AnalysisConfig::default());
        let spec_only = Analyzer::with_config(
            registry(),
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let fast = two_tier.csag(&tx, &snapshot, &env);
        let slow = spec_only.csag(&tx, &snapshot, &env);

        prop_assert_eq!(&fast.reads, &slow.reads);
        prop_assert_eq!(&fast.writes, &slow.writes);
        prop_assert_eq!(&fast.adds, &slow.adds);
        prop_assert_eq!(&fast.trace, &slow.trace);
        prop_assert_eq!(&fast.release_points, &slow.release_points);
        prop_assert_eq!(&fast.last_write_pc, &slow.last_write_pc);
        prop_assert_eq!(&fast.snapshot_deps, &slow.snapshot_deps);
        prop_assert_eq!(fast.predicted_success, slow.predicted_success);
        prop_assert_eq!(fast.predicted_gas, slow.predicted_gas);
        prop_assert_ne!(fast.tier, RefinementTier::Speculative);
        prop_assert_eq!(slow.tier, RefinementTier::Speculative);
        if s % 8 <= 4 {
            // Mints route the royalty payout through the registry-slot
            // recipient: the bind is bounded-dynamic, not plain
            // interprocedural.
            prop_assert_eq!(fast.tier, RefinementTier::BoundedDynamic);
        }
    }

    /// Bounded-dynamic and call-family binds are concrete, so the
    /// position-0 exactness contract extends to mint-rush transactions
    /// unchanged.
    #[test]
    fn call_family_csag_predicts_first_position_execution_exactly(
        (s, k, a) in (0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_drop_tx(s, k, a);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let reference = analyzer();
        let sag = reference.csag(&tx, &snapshot, &env);
        let trace = execute_block_serial(
            std::slice::from_ref(&tx),
            &snapshot,
            &reference,
            &env,
        );
        let actual = &trace.txs[0];
        prop_assert_eq!(sag.predicted_success, actual.status.is_success());
        prop_assert_eq!(sag.predicted_gas, actual.gas_used);
        if actual.status.is_success() {
            let actual_writes: std::collections::BTreeSet<_> =
                actual.writes.keys().copied().collect();
            let actual_adds: std::collections::BTreeSet<_> =
                actual.adds.keys().copied().collect();
            prop_assert_eq!(&sag.writes, &actual_writes);
            prop_assert_eq!(&sag.adds, &actual_adds);
            for read in &actual.reads {
                prop_assert!(
                    sag.reads.contains(&read.key),
                    "unpredicted read of {:?}",
                    read.key
                );
            }
        }
    }

    /// Bind-time loop unrolling is concrete, so the position-0 exactness
    /// contract extends to loopy transactions unchanged: key sets, gas and
    /// the success verdict must match a real first-position execution.
    #[test]
    fn loopy_csag_predicts_first_position_execution_exactly(
        (s, k, a, b) in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_loop_tx(s, k, a, b);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let reference = analyzer();
        let sag = reference.csag(&tx, &snapshot, &env);
        let trace = execute_block_serial(
            std::slice::from_ref(&tx),
            &snapshot,
            &reference,
            &env,
        );
        let actual = &trace.txs[0];
        prop_assert_eq!(sag.predicted_success, actual.status.is_success());
        prop_assert_eq!(sag.predicted_gas, actual.gas_used);
        if actual.status.is_success() {
            let actual_writes: std::collections::BTreeSet<_> =
                actual.writes.keys().copied().collect();
            let actual_adds: std::collections::BTreeSet<_> =
                actual.adds.keys().copied().collect();
            prop_assert_eq!(&sag.writes, &actual_writes);
            prop_assert_eq!(&sag.adds, &actual_adds);
            for read in &actual.reads {
                prop_assert!(
                    sag.reads.contains(&read.key),
                    "unpredicted read of {:?}",
                    read.key
                );
            }
        }
    }

    #[test]
    fn release_offsets_exist_for_successful_known_contracts(
        (c, s, k, a, b) in (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255),
    ) {
        let tx = decode_tx(c, s, k, a, b);
        let snapshot = Snapshot::from_entries(genesis());
        let env = BlockEnv::new(1, 1_700_000_000);
        let reference = analyzer();
        let trace = execute_block_serial(
            std::slice::from_ref(&tx),
            &snapshot,
            &reference,
            &env,
        );
        let actual = &trace.txs[0];
        match (&actual.status, tx.kind) {
            (ExecStatus::Success, TxKind::Transfer) => {
                prop_assert!(actual.release_offset.is_some());
            }
            (ExecStatus::Success, TxKind::Call) => {
                // Every successful path of the library contracts passes a
                // release point (verified statically in the analysis
                // crate); the trace must have recorded it.
                prop_assert!(
                    actual.release_offset.is_some(),
                    "no release offset for {:?}",
                    tx
                );
                let offset = actual.release_offset.unwrap();
                prop_assert!(offset <= actual.gas_used);
            }
            _ => {
                prop_assert!(actual.release_offset.is_none());
            }
        }
    }
}

/// The symbolic binding tier has to carry its weight: on the realistic
/// workload mix, well over half of the contract calls must refine through
/// the fast path, with speculative pre-execution reserved for the genuinely
/// data-dependent tail (loops, opaque jumps). A regression here means the
/// abstract interpreter lost precision somewhere.
#[test]
fn symbolic_tier_binds_most_realistic_transactions() {
    use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

    let mut generator = WorkloadGenerator::new(WorkloadConfig::ethereum_mix(7));
    let analyzer = Analyzer::new(generator.registry().clone());
    let snapshot = Snapshot::from_entries(generator.genesis_entries());
    let env = BlockEnv::new(1, 1_700_000_000);
    let txs = generator.block(400);

    let mut symbolic = 0u64;
    let mut loop_summarized = 0u64;
    let mut interprocedural = 0u64;
    let mut speculative = 0u64;
    for tx in &txs {
        match analyzer.csag(tx, &snapshot, &env).tier {
            RefinementTier::Symbolic => symbolic += 1,
            RefinementTier::LoopSummarized => loop_summarized += 1,
            RefinementTier::Interprocedural | RefinementTier::BoundedDynamic => {
                interprocedural += 1
            }
            RefinementTier::Speculative => speculative += 1,
            // Analyzable transactions never land on the withheld tier.
            RefinementTier::Exact | RefinementTier::Optimistic => {}
        }
    }
    let bound = symbolic + loop_summarized + interprocedural;
    let refined = bound + speculative;
    assert!(refined > 0, "workload produced no contract calls");
    let hit_rate = bound as f64 / refined as f64;
    assert!(
        hit_rate >= 0.60,
        "symbolic binding hit rate {hit_rate:.2} ({bound}/{refined}) below 60%"
    );
}

/// The prediction is *allowed* to diverge at later block positions — that
/// is the whole point of the abort machinery — but never at position 0
/// against the same snapshot. This deterministic companion pins one known
/// tricky case: the Fig. 1 contract's data-dependent loop.
#[test]
fn fig1_prediction_tracks_snapshot_exactly() {
    use dmvcc_integration_tests::FIG1;
    use dmvcc_primitives::{Address, U256};
    use dmvcc_state::StateKey;
    use dmvcc_vm::{calldata, contracts, TxEnv};

    let reference = analyzer();
    let x = Address::from_u64(4).to_u256();
    let tx = Transaction::call(TxEnv::call(
        Address::from_u64(1),
        Address::from_u64(FIG1),
        calldata(contracts::fig1_fn::UPDATE_B, &[x, U256::from(2u64)]),
    ));
    let env = BlockEnv::new(1, 1_700_000_000);
    for idx in [0u64, 2, 5] {
        let mut entries = genesis();
        entries.push((
            StateKey::storage(Address::from_u64(FIG1), contracts::map_slot(x, 0)),
            U256::from(idx),
        ));
        let snapshot = Snapshot::from_entries(entries);
        let sag = reference.csag(&tx, &snapshot, &env);
        let trace = execute_block_serial(std::slice::from_ref(&tx), &snapshot, &reference, &env);
        let actual_writes: std::collections::BTreeSet<_> =
            trace.txs[0].writes.keys().copied().collect();
        assert_eq!(sag.writes, actual_writes, "A[x] = {idx}");
        assert_eq!(sag.predicted_gas, trace.txs[0].gas_used, "A[x] = {idx}");
    }
}
