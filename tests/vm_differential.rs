//! Differential tests for the EVM interpreter: randomly generated
//! straight-line arithmetic programs are executed both by the VM and by a
//! direct Rust evaluator over the same U256 semantics — results must agree.
//! Also checks assembler/disassembler and gas determinism properties.

use proptest::prelude::*;

use dmvcc_primitives::{Address, U256};
use dmvcc_vm::{assemble, execute, BlockEnv, ExecParams, MapHost, Opcode, TxEnv};

/// A binary arithmetic operation with a reference implementation.
#[derive(Debug, Clone, Copy)]
enum BinOp {
    Add,
    Mul,
    Sub,
    Div,
    Mod,
    And,
    Or,
    Xor,
    Lt,
    Gt,
    Eq,
}

impl BinOp {
    fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "ADD",
            BinOp::Mul => "MUL",
            BinOp::Sub => "SUB",
            BinOp::Div => "DIV",
            BinOp::Mod => "MOD",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Xor => "XOR",
            BinOp::Lt => "LT",
            BinOp::Gt => "GT",
            BinOp::Eq => "EQ",
        }
    }

    /// Reference semantics: `a` is the top of stack.
    fn apply(self, a: U256, b: U256) -> U256 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Div => a / b,
            BinOp::Mod => a % b,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Lt => U256::from(a < b),
            BinOp::Gt => U256::from(a > b),
            BinOp::Eq => U256::from(a == b),
        }
    }
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Mul,
        BinOp::Sub,
        BinOp::Div,
        BinOp::Mod,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Lt,
        BinOp::Gt,
        BinOp::Eq,
    ])
}

fn run_vm(source: &str) -> dmvcc_vm::ExecOutcome {
    let code = assemble(source).expect("generated program must assemble");
    let tx = TxEnv::call(Address::from_u64(1), Address::from_u64(2), vec![]);
    execute(
        &ExecParams::new(&code, &tx, &BlockEnv::default()),
        &mut MapHost::new(),
    )
}

proptest! {
    #[test]
    fn straight_line_arithmetic_matches_model(
        seed in any::<u64>(),
        ops in prop::collection::vec(binop_strategy(), 1..24),
    ) {
        // Evaluate a stack program: push two seeds, then fold random binary
        // operations, pushing a fresh literal before each so the stack
        // never underflows.
        let mut program = String::new();
        let mut stack: Vec<U256> = Vec::new();
        let mut state = seed;
        let mut push_value = |program: &mut String, stack: &mut Vec<U256>| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99991);
            let value = U256::from(state >> 16);
            program.push_str(&format!("PUSH 0x{value:x} "));
            stack.push(value);
        };
        push_value(&mut program, &mut stack);
        for op in &ops {
            push_value(&mut program, &mut stack);
            program.push_str(op.mnemonic());
            program.push(' ');
            let a = stack.pop().unwrap();
            let b = stack.pop().unwrap();
            stack.push(op.apply(a, b));
        }
        program.push_str("PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN");

        let outcome = run_vm(&program);
        prop_assert!(outcome.status.is_success(), "status {:?}", outcome.status);
        prop_assert_eq!(outcome.output_word(), stack.pop().unwrap());
    }

    #[test]
    fn gas_is_deterministic(seed in any::<u64>()) {
        let value = U256::from(seed);
        let program = format!(
            "PUSH 0x{value:x} PUSH1 3 MUL PUSH1 7 ADD PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN"
        );
        let first = run_vm(&program);
        let second = run_vm(&program);
        prop_assert_eq!(first.gas_used, second.gas_used);
        prop_assert_eq!(first.output, second.output);
    }

    #[test]
    fn assembled_bytes_decode_back(n in 1u8..=32) {
        // PUSHn round-trips through the decoder.
        let source = format!("PUSH{n} 1 POP STOP");
        let code = assemble(&source).unwrap();
        prop_assert_eq!(Opcode::from_byte(code[0]), Some(Opcode::Push(n)));
        prop_assert_eq!(code.len(), n as usize + 3);
    }
}

#[test]
fn deep_stack_limits_enforced() {
    // 1025 pushes must overflow the stack.
    let mut source = String::new();
    for _ in 0..1025 {
        source.push_str("PUSH1 1 ");
    }
    let code = assemble(&source).unwrap();
    let tx =
        TxEnv::call(Address::from_u64(1), Address::from_u64(2), vec![]).with_gas_limit(10_000_000);
    let outcome = execute(
        &ExecParams::new(&code, &tx, &BlockEnv::default()),
        &mut MapHost::new(),
    );
    assert!(matches!(
        outcome.status,
        dmvcc_vm::ExecStatus::Failed(dmvcc_vm::VmError::StackOverflow)
    ));
}
