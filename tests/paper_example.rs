//! The paper's worked example (§III, Fig. 4–6), reconstructed exactly.
//!
//! Six transactions over three state items on three threads:
//!
//! - `T1: ω(I1)`, `T3: ρ(I1)`, `T5: ω(I1)` — write versioning lets T1 and
//!   T5 run in parallel while T3 reads T1's version specifically;
//! - `T2: ω̄(I2)`, `T4: ω̄(I2)` — commutative increments that the baseline
//!   treats as a conflict but DMVCC runs concurrently (Fig. 6);
//! - `T6: ρ(I2)` — reads the merged value, so it waits for both deltas;
//! - early-write visibility publishes T1's version at its release point,
//!   letting T3 start before T1 finishes.
//!
//! The test builds the traces synthetically (uniform cost `G`, release
//! points at 30 % of the body, writes at 80 %) and checks the schedule
//! shapes the paper's Fig. 4(b) vs Fig. 6 comparison describes.

use std::collections::HashMap;

use dmvcc_analysis::{AccessEvent, AccessKind, CSag, ReleasePoint};
use dmvcc_core::{simulate_dmvcc, BlockTrace, DmvccConfig, ReadRecord, TxTrace};
use dmvcc_primitives::{Address, U256};
use dmvcc_state::StateKey;
use dmvcc_vm::ExecStatus;

const G: u64 = 10_000; // uniform virtual cost per transaction
const RELEASE_AT: u64 = 3_000;
const WRITE_AT: u64 = 8_000;
const READ_AT: u64 = 2_000;

fn item(i: u64) -> StateKey {
    StateKey::storage(Address::from_u64(500), U256::from(i))
}

struct Spec {
    reads: Vec<(StateKey, Vec<usize>)>,
    writes: Vec<StateKey>,
    adds: Vec<StateKey>,
}

fn build(specs: Vec<Spec>) -> (BlockTrace, Vec<CSag>) {
    let mut txs = Vec::new();
    let mut csags = Vec::new();
    for (index, spec) in specs.into_iter().enumerate() {
        let mut write_offsets = HashMap::new();
        let mut trace_writes = std::collections::BTreeMap::new();
        let mut trace_adds = std::collections::BTreeMap::new();
        let mut csag = CSag {
            predicted_success: true,
            predicted_gas: G,
            ..CSag::default()
        };
        csag.release_points.push(ReleasePoint {
            pc: 100,
            gas_bound: G - RELEASE_AT,
        });
        for key in &spec.writes {
            write_offsets.insert(*key, WRITE_AT);
            trace_writes.insert(*key, U256::from(index as u64 + 1));
            csag.writes.insert(*key);
            csag.last_write_pc.insert(*key, 50);
            csag.trace.push(AccessEvent {
                pc: 50,
                kind: AccessKind::Write,
                key: *key,
            });
        }
        for key in &spec.adds {
            write_offsets.insert(*key, WRITE_AT);
            trace_adds.insert(*key, U256::ONE);
            csag.adds.insert(*key);
            csag.last_write_pc.insert(*key, 50);
            csag.trace.push(AccessEvent {
                pc: 50,
                kind: AccessKind::Add,
                key: *key,
            });
        }
        let mut reads = Vec::new();
        for (key, sources) in &spec.reads {
            reads.push(ReadRecord {
                key: *key,
                sources: sources.clone(),
                gas_offset: READ_AT,
            });
            csag.reads.insert(*key);
            csag.trace.push(AccessEvent {
                pc: 20,
                kind: AccessKind::Read,
                key: *key,
            });
        }
        txs.push(TxTrace {
            index,
            status: ExecStatus::Success,
            gas_used: G,
            reads,
            writes: trace_writes,
            adds: trace_adds,
            write_offsets,
            release_offset: Some(RELEASE_AT),
        });
        csags.push(csag);
    }
    let total = txs.iter().map(|t| t.gas_used).sum();
    (
        BlockTrace {
            txs,
            final_writes: Default::default(),
            total_gas: total,
        },
        csags,
    )
}

/// The six transactions of Fig. 4.
fn figure4() -> (BlockTrace, Vec<CSag>) {
    build(vec![
        // T1: ω(I1)
        Spec {
            reads: vec![],
            writes: vec![item(1)],
            adds: vec![],
        },
        // T2: ω̄(I2)
        Spec {
            reads: vec![],
            writes: vec![],
            adds: vec![item(2)],
        },
        // T3: ρ(I1) — reads T1's version
        Spec {
            reads: vec![(item(1), vec![0])],
            writes: vec![],
            adds: vec![],
        },
        // T4: ω̄(I2)
        Spec {
            reads: vec![],
            writes: vec![],
            adds: vec![item(2)],
        },
        // T5: ω(I1) — second writer of I1
        Spec {
            reads: vec![],
            writes: vec![item(1)],
            adds: vec![],
        },
        // T6: ρ(I2) — reads the merged increments of T2 and T4
        Spec {
            reads: vec![(item(2), vec![1, 3])],
            writes: vec![],
            adds: vec![],
        },
    ])
}

fn config(threads: usize) -> DmvccConfig {
    DmvccConfig::new(threads)
}

#[test]
fn full_dmvcc_schedules_like_figure_6() {
    let (trace, csags) = figure4();
    let report = simulate_dmvcc(&trace, &csags, &config(3));
    assert_eq!(report.aborts, 0);
    // Wave 1: T1, T2, T4 or T5 — everything except T3, T6 is dependency-
    // free thanks to versioning + commutativity. Six uniform transactions
    // with two dependants on three threads finish in at most three waves,
    // and early visibility lets T3 start at T1's publish (8 000 < 10 000).
    assert!(
        report.makespan <= 3 * G,
        "makespan {} exceeds three waves",
        report.makespan
    );
    // Strictly better than the transaction-level schedule of Fig. 4(b).
    let mut baseline = config(3);
    baseline.early_write = false;
    baseline.commutative = false;
    let base = simulate_dmvcc(&trace, &csags, &baseline);
    assert!(
        report.makespan < base.makespan,
        "features must improve over Fig. 4(b): {} vs {}",
        report.makespan,
        base.makespan
    );
}

#[test]
fn write_versioning_lets_both_writers_of_i1_run_concurrently() {
    let (trace, csags) = figure4();
    let with = simulate_dmvcc(&trace, &csags, &config(3));
    let mut no_versioning = config(3);
    no_versioning.write_versioning = false;
    let without = simulate_dmvcc(&trace, &csags, &no_versioning);
    // Without versioning T5 chains behind T1 (and T3's anti-dependency
    // ordering is moot since reads don't block writes even then — the ww
    // edge alone must show up).
    assert!(without.makespan >= with.makespan);
}

#[test]
fn commutative_writes_merge_for_the_reader() {
    let (trace, csags) = figure4();
    // T6 depends on both T2 and T4. With commutativity the two adds run in
    // wave 1; without, T4 chains behind T2 and T6 behind T4. Six threads
    // isolate the dependency effect from thread-contention anomalies.
    let mut no_commut = config(6);
    no_commut.commutative = false;
    let with = simulate_dmvcc(&trace, &csags, &config(6));
    let without = simulate_dmvcc(&trace, &csags, &no_commut);
    // With: T4 publishes at WRITE_AT (8 000), T6 finishes at 18 000.
    assert_eq!(with.makespan, WRITE_AT + G);
    // Without: T4 waits for T2's publish, T6 for T4's — two extra hops.
    assert_eq!(without.makespan, 2 * WRITE_AT + G);
}

#[test]
fn early_visibility_starts_t3_before_t1_finishes() {
    let (trace, csags) = figure4();
    // Six threads: every dependency-free transaction starts at 0, so the
    // makespan is exactly the T1→T3 (or T2/T4→T6) chain length.
    let mut no_early = config(6);
    no_early.early_write = false;
    let with = simulate_dmvcc(&trace, &csags, &config(6));
    let without = simulate_dmvcc(&trace, &csags, &no_early);
    // T3 starts at T1's publish (8 000) instead of its finish (10 000).
    assert_eq!(with.makespan, WRITE_AT + G);
    assert_eq!(without.makespan, 2 * G);
    assert!(with.makespan < without.makespan);
    // And on one thread everything is serial regardless.
    let serial = simulate_dmvcc(&trace, &csags, &config(1));
    assert_eq!(serial.makespan, trace.total_gas);
}

#[test]
fn figure5_unpredicted_writer_aborts_stale_reader() {
    // Fig. 5: T3 read T1's version of I; T2's write was not predicted and
    // arrives later — T3 must re-execute.
    let (mut trace, mut csags) = build(vec![
        // T1: ω(I1), known.
        Spec {
            reads: vec![],
            writes: vec![item(1)],
            adds: vec![],
        },
        // T2: ω(I1), *hidden* from analysis (patched below).
        Spec {
            reads: vec![],
            writes: vec![item(1)],
            adds: vec![],
        },
        // T3: ρ(I1) — truly sourced from T2 per serial order.
        Spec {
            reads: vec![(item(1), vec![1])],
            writes: vec![],
            adds: vec![],
        },
    ]);
    // Hide T2's write from its C-SAG (analysis imprecision).
    csags[1] = CSag {
        predicted_success: true,
        predicted_gas: G,
        ..CSag::default()
    };
    // Make T2 slower so its version lands after T3's optimistic read.
    trace.txs[1].gas_used = 3 * G;
    trace.txs[1].write_offsets.insert(item(1), 3 * G - 1_000);
    trace.txs[1].release_offset = Some(RELEASE_AT);
    trace.total_gas = trace.txs.iter().map(|t| t.gas_used).sum();

    let report = simulate_dmvcc(&trace, &csags, &config(3));
    assert!(report.aborts >= 1, "the stale read must abort T3");
    assert_eq!(report.attempts, 3 + report.aborts);
    // T3's re-execution completes after T2 publishes.
    assert!(report.makespan > 3 * G);
}
