//! Property tests for the Merkle Patricia Trie: model equivalence against
//! a BTreeMap, canonical-form convergence (incremental ≡ rebuilt), and
//! history independence of the root.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dmvcc_state::{empty_root, Mpt};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = prop::collection::vec(0u8..=3, 0..6); // narrow alphabet → collisions
    let value = prop::collection::vec(any::<u8>(), 1..20);
    prop_oneof![
        3 => (key.clone(), value).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => key.prop_map(Op::Remove),
    ]
}

proptest! {
    #[test]
    fn matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut trie = Mpt::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    trie.insert(k, v.clone());
                    model.insert(k.clone(), v.clone());
                }
                Op::Remove(k) => {
                    let trie_removed = trie.remove(k);
                    let model_removed = model.remove(k).is_some();
                    prop_assert_eq!(trie_removed, model_removed);
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(trie.get(k), Some(v.clone()));
        }
        // Canonical form: incremental updates reach the same root as a
        // fresh build from the final contents.
        let mut rebuilt = Mpt::new();
        for (k, v) in &model {
            rebuilt.insert(k, v.clone());
        }
        prop_assert_eq!(trie.root(), rebuilt.root());
        if model.is_empty() {
            prop_assert_eq!(trie.root(), empty_root());
        }
    }

    #[test]
    fn root_is_history_independent(
        pairs in prop::collection::btree_map(
            prop::collection::vec(any::<u8>(), 1..8),
            prop::collection::vec(any::<u8>(), 1..8),
            1..40,
        ),
        seed in any::<u64>(),
    ) {
        let ordered: Vec<_> = pairs.iter().collect();
        let mut forward = Mpt::new();
        for (k, v) in &ordered {
            forward.insert(k, (*v).clone());
        }
        // A deterministic pseudo-shuffle of the insertion order.
        let mut shuffled = ordered.clone();
        let mut state = seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut backward = Mpt::new();
        for (k, v) in shuffled {
            backward.insert(k, v.clone());
        }
        prop_assert_eq!(forward.root(), backward.root());
    }

    #[test]
    fn insert_then_remove_is_identity(
        base in prop::collection::btree_map(
            prop::collection::vec(any::<u8>(), 1..6),
            prop::collection::vec(any::<u8>(), 1..6),
            0..20,
        ),
        extra_key in prop::collection::vec(any::<u8>(), 1..6),
        extra_value in prop::collection::vec(any::<u8>(), 1..6),
    ) {
        prop_assume!(!base.contains_key(&extra_key));
        let mut trie = Mpt::new();
        for (k, v) in &base {
            trie.insert(k, v.clone());
        }
        let before = trie.root();
        trie.insert(&extra_key, extra_value);
        prop_assert_ne!(trie.root(), before);
        prop_assert!(trie.remove(&extra_key));
        prop_assert_eq!(trie.root(), before);
    }
}
