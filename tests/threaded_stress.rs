//! Stress tests for the multi-threaded executor: consecutive workload
//! blocks, both contention profiles, pool-style stale C-SAGs, and a
//! DST-driven injected-misprediction variant — the root chain must match
//! serial execution block for block.

use std::sync::Arc;

use dmvcc_analysis::{AnalysisConfig, Analyzer};
use dmvcc_core::{
    build_csags, execute_block_serial, GlobalLockParallelExecutor, HybridExecutor, ParallelConfig,
    ParallelExecutor, SchedulerPolicy, StmExecutor,
};
use dmvcc_dst::{FaultPlan, SchedConfig, VirtualScheduler};
use dmvcc_state::{Snapshot, StateDb};
use dmvcc_vm::BlockEnv;
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

fn small(base: WorkloadConfig) -> WorkloadConfig {
    WorkloadConfig {
        accounts: 120,
        token_contracts: 6,
        amm_contracts: 3,
        nft_contracts: 2,
        counter_contracts: 1,
        ballot_contracts: 1,
        fig1_contracts: 1,
        auction_contracts: 1,
        crowdsale_contracts: 1,
        batch_pay_contracts: 1,
        router_contracts: 2,
        ..base
    }
}

fn run_chain(
    workload: WorkloadConfig,
    blocks: usize,
    block_size: usize,
    hide: f64,
    threads: usize,
) {
    let mut generator = WorkloadGenerator::new(workload);
    let analyzer = Analyzer::with_config(
        generator.registry().clone(),
        AnalysisConfig {
            hide_fraction: hide,
            seed: 3,
            ..Default::default()
        },
    );
    let executor = ParallelExecutor::new(
        analyzer.clone(),
        ParallelConfig {
            threads,
            max_attempts: 64,
            scheduler: SchedulerPolicy::CriticalPath,
            pin_cores: false,
        },
    );
    let mut serial_db = StateDb::with_genesis(generator.genesis_entries());
    let mut parallel_db = serial_db.clone();
    for height in 1..=blocks as u64 {
        let txs = generator.block(block_size);
        let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
        let snapshot = serial_db.latest().clone();
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let outcome = executor.execute_block(&txs, &snapshot, &env);
        let serial_root = serial_db.commit(&trace.final_writes);
        let parallel_root = parallel_db.commit(&outcome.final_writes);
        assert_eq!(
            serial_root, parallel_root,
            "root mismatch at block {height} (hide={hide})"
        );
    }
}

#[test]
fn realistic_chain_three_blocks() {
    run_chain(small(WorkloadConfig::ethereum_mix(21)), 3, 120, 0.0, 4);
}

#[test]
fn hot_chain_three_blocks() {
    run_chain(small(WorkloadConfig::high_contention(22)), 3, 120, 0.0, 4);
}

#[test]
fn hot_chain_with_lossy_analysis() {
    // A quarter of the state keys invisible to the analyzer: the abort
    // machinery must still converge to serial roots on every block.
    run_chain(small(WorkloadConfig::high_contention(23)), 3, 100, 0.25, 4);
}

#[test]
fn hot_chain_eight_threads_matches_serial_roots() {
    // Oversubscribed high-contention stress: eight workers hammer the
    // sharded sequences, the waiter index and the abort cascades far past
    // the physical core count; the MPT root chain must still match serial
    // block for block.
    run_chain(small(WorkloadConfig::high_contention(25)), 3, 150, 0.0, 8);
}

#[test]
fn hot_chain_eight_threads_lossy_analysis() {
    // Same, with a fifth of the keys hidden from the analyzer so dynamic
    // insertions and cascading aborts are exercised under oversubscription.
    run_chain(small(WorkloadConfig::high_contention(26)), 2, 120, 0.2, 8);
}

#[test]
fn stm_hot_chain_eight_threads_matches_serial_roots() {
    // The optimistic executor on oversubscribed high-contention blocks:
    // no predictions, pure optimism, validation-ordered commit — the MPT
    // root chain must match serial block for block.
    let mut generator = WorkloadGenerator::new(small(WorkloadConfig::high_contention(28)));
    let analyzer = Analyzer::new(generator.registry().clone());
    let executor = StmExecutor::new(
        analyzer.clone(),
        ParallelConfig {
            threads: 8,
            max_attempts: 64,
            scheduler: SchedulerPolicy::CriticalPath,
            pin_cores: false,
        },
    );
    let mut serial_db = StateDb::with_genesis(generator.genesis_entries());
    let mut parallel_db = serial_db.clone();
    for height in 1..=3u64 {
        let txs = generator.block(150);
        let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
        let snapshot = serial_db.latest().clone();
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let outcome = executor.execute_block(&txs, &snapshot, &env);
        let serial_root = serial_db.commit(&trace.final_writes);
        let parallel_root = parallel_db.commit(&outcome.final_writes);
        assert_eq!(
            serial_root, parallel_root,
            "stm root mismatch at block {height}"
        );
        // Convergence bound: each transaction runs at most twice.
        assert!(
            outcome.stats.attempts <= 2 * txs.len() as u64,
            "stm executed more than twice per transaction"
        );
    }
}

#[test]
fn hybrid_all_unanalyzable_eight_threads_under_storm() {
    // Every transaction lint-flagged as unanalyzable: the hybrid executor
    // degenerates to a fully optimistic run (all predictions stripped),
    // on eight oversubscribed workers, under the stormy virtual scheduler
    // AND a fault plan grafting phantom/dropped keys onto the (already
    // withheld) predictions — the serial oracle must still be matched key
    // for key and status for status.
    let mut generator = WorkloadGenerator::new(small(WorkloadConfig::high_contention(29)));
    let analyzer = Analyzer::with_config(
        generator.registry().clone(),
        AnalysisConfig {
            hide_fraction: 0.15,
            seed: 29,
            ..Default::default()
        },
    );
    let genesis = Snapshot::from_entries(generator.genesis_entries());
    let env = BlockEnv::new(1, 1_700_000_000);
    let txs: Vec<_> = generator
        .block(120)
        .into_iter()
        .map(|tx| tx.unanalyzable())
        .collect();
    let trace = execute_block_serial(&txs, &genesis, &analyzer, &env);
    let serial_statuses: Vec<_> = trace.txs.iter().map(|t| t.status.clone()).collect();
    let mut csags = build_csags(&txs, &genesis, &analyzer, &env);
    FaultPlan::standard(0xD58).perturb_csags(&mut csags);

    for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::CriticalPath] {
        let hybrid = HybridExecutor::new(
            analyzer.clone(),
            ParallelConfig {
                threads: 8,
                max_attempts: 64,
                scheduler: policy,
                pin_cores: false,
            },
        )
        .with_hook(Arc::new(VirtualScheduler::new(SchedConfig::stormy(29))));
        let outcome = hybrid.execute_block_with_csags(&txs, &genesis, &env, &csags);
        assert_eq!(
            outcome.final_writes,
            trace.final_writes,
            "all-unanalyzable hybrid diverged from serial ({})",
            policy.label()
        );
        assert_eq!(
            outcome.statuses,
            serial_statuses,
            "all-unanalyzable hybrid statuses diverged ({})",
            policy.label()
        );
        assert_eq!(
            outcome.stats.optimistic_txs,
            txs.len() as u64,
            "every transaction must have routed optimistic ({})",
            policy.label()
        );
    }

    // The same flagged block through the pure STM engine under the same
    // storm (the perturbed C-SAGs ride along as an interning hint only).
    let stm = StmExecutor::new(
        analyzer,
        ParallelConfig {
            threads: 8,
            max_attempts: 64,
            scheduler: SchedulerPolicy::CriticalPath,
            pin_cores: false,
        },
    )
    .with_hook(Arc::new(VirtualScheduler::new(SchedConfig::stormy(29))));
    let outcome = stm.execute_block_with_csags(&txs, &genesis, &env, &csags);
    assert_eq!(
        outcome.final_writes, trace.final_writes,
        "stm diverged under storm"
    );
    assert_eq!(
        outcome.statuses, serial_statuses,
        "stm statuses diverged under storm"
    );
}

#[test]
fn stale_csags_from_previous_snapshot() {
    // The pool scenario: C-SAGs built against the PREVIOUS block's
    // snapshot (stale predictions), executed against the current one.
    let mut generator = WorkloadGenerator::new(small(WorkloadConfig::high_contention(24)));
    let analyzer = Analyzer::new(generator.registry().clone());
    let executor = ParallelExecutor::new(
        analyzer.clone(),
        ParallelConfig {
            threads: 4,
            max_attempts: 64,
            scheduler: SchedulerPolicy::CriticalPath,
            pin_cores: false,
        },
    );
    let mut db = StateDb::with_genesis(generator.genesis_entries());
    let stale_snapshot = db.latest().clone();

    // Advance one block so the live snapshot differs from the stale one.
    let env1 = BlockEnv::new(1, 1_700_000_000);
    let warmup = generator.block(100);
    let trace1 = execute_block_serial(&warmup, &stale_snapshot, &analyzer, &env1);
    db.commit(&trace1.final_writes);

    let env2 = BlockEnv::new(2, 1_700_000_012);
    let txs = generator.block(100);
    let live_snapshot = db.latest().clone();
    // Predictions against the stale snapshot…
    let stale_csags = build_csags(&txs, &stale_snapshot, &analyzer, &env2);
    // …executed against the live one.
    let trace = execute_block_serial(&txs, &live_snapshot, &analyzer, &env2);
    let outcome = executor.execute_block_with_csags(&txs, &live_snapshot, &env2, &stale_csags);
    assert_eq!(outcome.final_writes, trace.final_writes);
}

#[test]
fn injected_mispredictions_eight_threads_match_serial() {
    // The DST plane turned on the stress suite: the fault plan drops
    // predicted keys and grafts phantom writes onto the C-SAGs, the
    // virtual scheduler perturbs the interleaving (preemption bursts,
    // delayed publishes, injected abort storms, forced release gates) on
    // eight oversubscribed workers — and both threaded executors must
    // still agree with the serial oracle, key for key and status for
    // status.
    let mut generator = WorkloadGenerator::new(small(WorkloadConfig::high_contention(27)));
    let analyzer = Analyzer::with_config(
        generator.registry().clone(),
        AnalysisConfig {
            hide_fraction: 0.15,
            seed: 27,
            ..Default::default()
        },
    );
    let genesis = Snapshot::from_entries(generator.genesis_entries());
    let env = BlockEnv::new(1, 1_700_000_000);
    let txs = generator.block(120);
    let trace = execute_block_serial(&txs, &genesis, &analyzer, &env);
    let mut csags = build_csags(&txs, &genesis, &analyzer, &env);
    FaultPlan::standard(0xD57).perturb_csags(&mut csags);

    let serial_statuses: Vec<_> = trace.txs.iter().map(|t| t.status.clone()).collect();

    for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::CriticalPath] {
        let config = ParallelConfig {
            threads: 8,
            max_attempts: 64,
            scheduler: policy,
            pin_cores: false,
        };

        let sharded = ParallelExecutor::new(analyzer.clone(), config)
            .with_hook(Arc::new(VirtualScheduler::new(SchedConfig::stormy(27))));
        let outcome = sharded.execute_block_with_csags(&txs, &genesis, &env, &csags);
        assert_eq!(
            outcome.final_writes,
            trace.final_writes,
            "sharded executor diverged from serial under injected mispredictions ({})",
            policy.label()
        );
        assert_eq!(
            outcome.statuses,
            serial_statuses,
            "sharded statuses diverged ({})",
            policy.label()
        );

        let global = GlobalLockParallelExecutor::new(analyzer.clone(), config)
            .with_hook(Arc::new(VirtualScheduler::new(SchedConfig::stormy(27))));
        let outcome = global.execute_block_with_csags(&txs, &genesis, &env, &csags);
        assert_eq!(
            outcome.final_writes,
            trace.final_writes,
            "global-lock executor diverged from serial under injected mispredictions ({})",
            policy.label()
        );
        assert_eq!(
            outcome.statuses,
            serial_statuses,
            "global-lock statuses diverged ({})",
            policy.label()
        );
    }
}
