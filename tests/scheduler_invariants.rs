//! Scheduler-level invariants, property-tested over random blocks:
//!
//! - any schedule's makespan lies between the critical single-transaction
//!   cost and the serial cost,
//! - one thread means serial time for every scheduler,
//! - full DMVCC dominates each of its own ablations,
//! - coarse DAG never beats precise DAG,
//! - attempts bookkeeping is consistent with aborts.

use proptest::prelude::*;

use dmvcc_baselines::{simulate_dag, simulate_dag_coarse, simulate_occ, simulate_occ_rounds};
use dmvcc_core::{build_csags, execute_block_serial, simulate_dmvcc, BlockTrace, DmvccConfig};
use dmvcc_integration_tests::{analyzer, decode_tx, genesis};
use dmvcc_state::Snapshot;
use dmvcc_vm::{BlockEnv, Transaction};

fn prepare(raw: Vec<(u8, u8, u8, u8, u8)>) -> (BlockTrace, Vec<dmvcc_analysis::CSag>) {
    let txs: Vec<Transaction> = raw
        .into_iter()
        .map(|(c, s, k, a, b)| decode_tx(c, s, k, a, b))
        .collect();
    let snapshot = Snapshot::from_entries(genesis());
    let env = BlockEnv::new(1, 1_700_000_000);
    let reference = analyzer();
    let trace = execute_block_serial(&txs, &snapshot, &reference, &env);
    let csags = build_csags(&txs, &snapshot, &reference, &env);
    (trace, csags)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    #[test]
    fn makespan_bounds_hold_for_all_schedulers(
        raw in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..30),
        threads in 1usize..9,
    ) {
        let (trace, csags) = prepare(raw);
        let critical = trace.txs.iter().map(|t| t.gas_used).max().unwrap_or(0);
        let reports = [
            simulate_dag(&trace, threads),
            simulate_dag_coarse(&trace, threads),
            simulate_occ(&trace, threads),
            simulate_occ_rounds(&trace, threads),
            simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads)),
        ];
        for report in &reports {
            prop_assert!(report.makespan >= critical, "{report:?}");
            // OCC may exceed serial cost (retries); the pessimistic bound
            // is attempts * critical.
            prop_assert!(
                report.makespan <= report.attempts * critical.max(1),
                "{report:?}"
            );
            prop_assert_eq!(report.attempts, trace.txs.len() as u64 + report.aborts);
        }
        // Non-optimistic schedulers never exceed serial.
        prop_assert!(reports[0].makespan <= trace.total_gas);
        prop_assert!(reports[1].makespan <= trace.total_gas);
        prop_assert!(reports[4].makespan <= trace.total_gas);
    }

    #[test]
    fn one_thread_is_serial_for_all(
        raw in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..20),
    ) {
        let (trace, csags) = prepare(raw);
        prop_assert_eq!(simulate_dag(&trace, 1).makespan, trace.total_gas);
        prop_assert_eq!(simulate_dag_coarse(&trace, 1).makespan, trace.total_gas);
        prop_assert_eq!(
            simulate_dmvcc(&trace, &csags, &DmvccConfig::new(1)).makespan,
            trace.total_gas
        );
        // Eager OCC on one thread picks up txs in order: serial, no aborts.
        let occ = simulate_occ(&trace, 1);
        prop_assert_eq!(occ.makespan, trace.total_gas);
        prop_assert_eq!(occ.aborts, 0);
    }

    #[test]
    fn full_dmvcc_dominates_its_ablations_modulo_anomalies(
        raw in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..30),
        threads in 2usize..9,
    ) {
        // Greedy list scheduling exhibits Graham anomalies: adding
        // constraints can occasionally *shorten* a schedule. Dominance
        // therefore holds up to a bounded anomaly factor, not pointwise.
        let (trace, csags) = prepare(raw);
        let full = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads));
        for variant in [
            DmvccConfig { early_write: false, ..DmvccConfig::new(threads) },
            DmvccConfig { commutative: false, ..DmvccConfig::new(threads) },
            DmvccConfig { write_versioning: false, ..DmvccConfig::new(threads) },
        ] {
            let report = simulate_dmvcc(&trace, &csags, &variant);
            prop_assert!(
                (report.makespan as f64) >= full.makespan as f64 * 0.8,
                "ablation {variant:?} beat full DMVCC beyond anomaly bounds: {} < {}",
                report.makespan,
                full.makespan
            );
        }
    }

    #[test]
    fn simulators_are_deterministic(
        raw in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..25),
        threads in 1usize..9,
    ) {
        let (trace, csags) = prepare(raw);
        let a = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads));
        let b = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads));
        prop_assert_eq!(a, b);
        prop_assert_eq!(simulate_occ(&trace, threads), simulate_occ(&trace, threads));
        prop_assert_eq!(simulate_dag(&trace, threads), simulate_dag(&trace, threads));
    }

    #[test]
    fn coarse_dag_never_beats_precise_modulo_anomalies(
        raw in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 1..30),
        threads in 1usize..9,
    ) {
        let (trace, _) = prepare(raw);
        let precise = simulate_dag(&trace, threads);
        let coarse = simulate_dag_coarse(&trace, threads);
        // Modulo Graham anomalies of greedy list scheduling (see above).
        prop_assert!((coarse.makespan as f64) >= precise.makespan as f64 * 0.8);
        // On one thread both are exactly serial: no anomaly possible.
        if threads == 1 {
            prop_assert_eq!(coarse.makespan, precise.makespan);
        }
    }
}
