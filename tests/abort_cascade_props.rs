//! Abort-cascade property test (paper Algorithm 4): under increasingly
//! lossy C-SAG predictions the cascading re-executions must still converge
//! to the serial state, and the virtual-time simulator — configured with
//! commutativity off and early writes on, the setting where every ω̄ becomes
//! a chained read-modify-write — must report abort counts that grow with
//! the misprediction rate.
//!
//! The analyzer hides keys by thresholding a per-key hash roll against
//! `hide_fraction`, so the hidden-key sets of an increasing ladder are
//! nested: every misprediction present at a lower rung is present at the
//! higher ones, which is what makes the abort-count comparison meaningful
//! per case rather than only in aggregate.

use proptest::prelude::*;

use dmvcc_analysis::{AnalysisConfig, Analyzer};
use dmvcc_core::{
    build_csags, execute_block_serial, simulate_dmvcc, DmvccConfig, ParallelConfig,
    ParallelExecutor, SchedulerPolicy,
};
use dmvcc_state::Snapshot;
use dmvcc_vm::BlockEnv;
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

fn small(base: WorkloadConfig) -> WorkloadConfig {
    WorkloadConfig {
        accounts: 80,
        token_contracts: 4,
        amm_contracts: 2,
        nft_contracts: 2,
        counter_contracts: 1,
        ballot_contracts: 1,
        fig1_contracts: 1,
        auction_contracts: 1,
        crowdsale_contracts: 1,
        batch_pay_contracts: 1,
        router_contracts: 1,
        ..base
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn cascades_converge_and_aborts_grow_with_misprediction(
        seed in 0u64..10_000,
        size in 20usize..50,
    ) {
        let ladder = [0.0, 0.3, 0.6];
        let mut previous_aborts = 0u64;
        for (rung, &hide) in ladder.iter().enumerate() {
            let mut generator =
                WorkloadGenerator::new(small(WorkloadConfig::high_contention(seed)));
            let analyzer = Analyzer::with_config(
                generator.registry().clone(),
                AnalysisConfig {
                    hide_fraction: hide,
                    seed: 77,
                    ..Default::default()
                },
            );
            let genesis = Snapshot::from_entries(generator.genesis_entries());
            let env = BlockEnv::new(1, 1_700_000_000);
            let txs = generator.block(size);
            let trace = execute_block_serial(&txs, &genesis, &analyzer, &env);
            let csags = build_csags(&txs, &genesis, &analyzer, &env);

            // Cascading re-executions reach the serial state (Theorem 1),
            // no matter how lossy the predictions are.
            let executor = ParallelExecutor::new(
                analyzer.clone(),
                ParallelConfig {
                    threads: 4,
                    max_attempts: 64,
                    scheduler: SchedulerPolicy::CriticalPath,
                    pin_cores: false,
                },
            );
            let outcome = executor.execute_block_with_csags(&txs, &genesis, &env, &csags);
            prop_assert_eq!(
                &outcome.final_writes,
                &trace.final_writes,
                "threaded execution diverged from serial at hide={}",
                hide
            );

            // The virtual-time scheduler with commutativity off: ω̄ chains
            // like ordinary writes, so mispredictions surface as aborts.
            let config = DmvccConfig {
                commutative: false,
                ..DmvccConfig::new(4)
            };
            prop_assert!(config.early_write, "DmvccConfig::new must enable early writes");
            let report = simulate_dmvcc(&trace, &csags, &config);
            prop_assert_eq!(
                report.attempts,
                txs.len() as u64 + report.aborts,
                "attempt accounting broke at hide={}",
                hide
            );
            if rung == 0 {
                prop_assert_eq!(
                    report.aborts, 0,
                    "exact predictions must schedule without any abort"
                );
            }
            prop_assert!(
                report.aborts >= previous_aborts,
                "abort count fell from {} to {} when hide rose to {}",
                previous_aborts,
                report.aborts,
                hide
            );
            previous_aborts = report.aborts;
        }
    }
}
