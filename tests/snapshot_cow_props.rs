//! Model-based property test for [`Snapshot::apply`]'s copy-on-write
//! layering: random chains of block writes — overwrites, zero tombstones
//! (EVM storage clearing), and enough blocks to trigger the internal
//! flatten — must read identically to a flat `HashMap` model, the overlay
//! depth must stay bounded, and historical snapshots must be immutable
//! under later applies.

use std::collections::HashMap;

use proptest::prelude::*;

use dmvcc_primitives::{Address, U256};
use dmvcc_state::{Snapshot, StateKey, WriteSet};

/// Small key pool so writes collide across blocks (overwrites and
/// tombstone-then-rewrite sequences are the interesting cases).
fn pool_key(index: u8) -> StateKey {
    if index.is_multiple_of(3) {
        StateKey::balance(Address::from_u64(u64::from(index / 3)))
    } else {
        StateKey::storage(
            Address::from_u64(u64::from(index % 5)),
            U256::from(u64::from(index / 5)),
        )
    }
}

/// One block: a handful of (key index, value) writes; value 0 is a
/// tombstone.
fn block_strategy() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..24, 0u64..50), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn cow_layers_match_flat_model(
        // Up to 24 blocks: comfortably past the flatten threshold (8
        // overlays), so the chain flattens mid-history at least twice.
        blocks in prop::collection::vec(block_strategy(), 1..24),
        genesis in prop::collection::vec((0u8..24, 1u64..50), 0..8),
    ) {
        let mut snapshot = Snapshot::from_entries(
            genesis.iter().map(|&(k, v)| (pool_key(k), U256::from(v))),
        );
        let mut model: HashMap<StateKey, U256> = genesis
            .iter()
            .map(|&(k, v)| (pool_key(k), U256::from(v)))
            .collect();
        // Every historical snapshot paired with the model state it froze.
        let mut history: Vec<(Snapshot, HashMap<StateKey, U256>)> =
            vec![(snapshot.clone(), model.clone())];

        for block in &blocks {
            let writes: WriteSet = block
                .iter()
                .map(|&(k, v)| (pool_key(k), U256::from(v)))
                .collect();
            snapshot = snapshot.apply(&writes);
            for (key, value) in &writes {
                if value.is_zero() {
                    model.remove(key);
                } else {
                    model.insert(*key, *value);
                }
            }

            // Reads agree with the flat model on the whole key pool
            // (absent keys read as zero on both sides).
            for index in 0..24u8 {
                let key = pool_key(index);
                prop_assert_eq!(
                    snapshot.get(&key),
                    model.get(&key).copied().unwrap_or(U256::ZERO),
                    "read mismatch on {:?} at height {}",
                    key,
                    snapshot.height()
                );
            }
            prop_assert!(
                snapshot.overlay_depth() <= 8,
                "overlay depth {} exceeds the flatten threshold",
                snapshot.overlay_depth()
            );
            prop_assert_eq!(snapshot.len(), model.len());
            history.push((snapshot.clone(), model.clone()));
        }

        // Historical snapshots are immutable: later applies (including the
        // flattens they triggered) must not have disturbed any frozen view.
        for (old, frozen) in &history {
            for index in 0..24u8 {
                let key = pool_key(index);
                prop_assert_eq!(
                    old.get(&key),
                    frozen.get(&key).copied().unwrap_or(U256::ZERO),
                    "historical snapshot at height {} mutated on {:?}",
                    old.height(),
                    key
                );
            }
        }
    }
}
