//! Property tests for the 256-bit arithmetic substrate: algebraic laws,
//! agreement with native 128-bit arithmetic on small operands, and the
//! division invariant.

use proptest::prelude::*;

use dmvcc_primitives::U256;

fn u256(limbs: [u64; 4]) -> U256 {
    U256::from_limbs(limbs)
}

proptest! {
    #[test]
    fn add_sub_round_trip(a: [u64; 4], b: [u64; 4]) {
        let (a, b) = (u256(a), u256(b));
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn add_commutes(a: [u64; 4], b: [u64; 4]) {
        let (a, b) = (u256(a), u256(b));
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn mul_commutes(a: [u64; 4], b: [u64; 4]) {
        let (a, b) = (u256(a), u256(b));
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_distributes(a: [u64; 4], b: [u64; 4], c: [u64; 4]) {
        let (a, b, c) = (u256(a), u256(b), u256(c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn div_rem_invariant(a: [u64; 4], b: [u64; 4]) {
        let (a, b) = (u256(a), u256(b));
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        prop_assert_eq!(q * b + r, a);
    }

    #[test]
    fn agrees_with_u128(a: u64, b: u64) {
        let (wa, wb) = (U256::from(a), U256::from(b));
        prop_assert_eq!(wa.wrapping_add(wb).low_u128(), a as u128 + b as u128);
        prop_assert_eq!(wa.wrapping_mul(wb).low_u128(), a as u128 * b as u128);
        if let (Some(q), Some(r)) = (a.checked_div(b), a.checked_rem(b)) {
            prop_assert_eq!((wa / wb).low_u128(), q as u128);
            prop_assert_eq!((wa % wb).low_u128(), r as u128);
        }
    }

    #[test]
    fn shifts_are_mul_div_by_powers(a: [u64; 4], shift in 0u32..255) {
        let a = u256(a);
        let pow = U256::ONE << shift;
        prop_assert_eq!(a << shift, a.wrapping_mul(pow));
        prop_assert_eq!(a >> shift, a / pow);
    }

    #[test]
    fn bytes_round_trip(a: [u64; 4]) {
        let a = u256(a);
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
    }

    #[test]
    fn decimal_round_trip(a: [u64; 4]) {
        let a = u256(a);
        prop_assert_eq!(U256::from_dec(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn hex_round_trip(a: [u64; 4]) {
        let a = u256(a);
        prop_assert_eq!(U256::from_hex(&format!("{a:x}")).unwrap(), a);
    }

    #[test]
    fn add_mod_matches_wide_math(a: u64, b: u64, m in 1u64..) {
        let got = U256::from(a).add_mod(U256::from(b), U256::from(m));
        let expected = ((a as u128 + b as u128) % m as u128) as u64;
        prop_assert_eq!(got, U256::from(expected));
    }

    #[test]
    fn mul_mod_matches_wide_math(a: u64, b: u64, m in 1u64..) {
        let got = U256::from(a).mul_mod(U256::from(b), U256::from(m));
        let expected = ((a as u128 * b as u128) % m as u128) as u64;
        prop_assert_eq!(got, U256::from(expected));
    }

    #[test]
    fn ordering_is_total(a: [u64; 4], b: [u64; 4]) {
        let (a, b) = (u256(a), u256(b));
        let lt = a < b;
        let gt = a > b;
        let eq = a == b;
        prop_assert_eq!([lt, gt, eq].iter().filter(|&&x| x).count(), 1);
    }
}
