//! A 256-bit unsigned integer implemented from scratch.
//!
//! The EVM word size is 256 bits; all stack items, storage keys and storage
//! values in [`dmvcc-vm`](https://example.com/dmvcc) are [`U256`]. The type is
//! a fixed array of four little-endian `u64` limbs and implements the full
//! arithmetic needed by the interpreter: wrapping add/sub/mul, long division,
//! modular arithmetic, exponentiation, comparisons, bit operations and shifts.
//!
//! # Examples
//!
//! ```
//! use dmvcc_primitives::U256;
//!
//! let a = U256::from(7u64);
//! let b = U256::from(5u64);
//! assert_eq!(a + b, U256::from(12u64));
//! assert_eq!(a * b, U256::from(35u64));
//! assert_eq!(a / b, U256::from(1u64));
//! assert_eq!(a % b, U256::from(2u64));
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::iter::Sum;
use core::ops::{
    Add, AddAssign, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub, SubAssign,
};
use core::str::FromStr;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
///
/// Arithmetic follows EVM semantics: `+`, `-` and `*` wrap modulo 2^256,
/// division and remainder by zero yield zero (matching the `DIV`/`MOD`
/// opcodes) rather than panicking.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Creates a value from four little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256(limbs)
    }

    /// Returns the little-endian limbs.
    #[inline]
    pub const fn limbs(&self) -> [u64; 4] {
        self.0
    }

    /// Returns `true` if the value is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Interprets the value as a boolean (EVM truthiness: nonzero is true).
    #[inline]
    pub const fn as_bool(&self) -> bool {
        !self.is_zero()
    }

    /// Returns the low 64 bits, discarding higher limbs.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Returns the low 128 bits, discarding higher limbs.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Returns the value as `usize` if it fits.
    pub fn to_usize(&self) -> Option<usize> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            usize::try_from(self.0[0]).ok()
        } else {
            None
        }
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Returns bit `i` (little-endian bit order). Bits `>= 256` are zero.
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Wrapping addition; also reports whether overflow occurred.
    #[allow(clippy::needless_range_loop)] // lockstep walk over both limb arrays
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction; also reports whether borrow occurred.
    #[allow(clippy::needless_range_loop)] // lockstep walk over both limb arrays
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Addition that returns `None` on overflow.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Subtraction that returns `None` on underflow.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Wrapping addition modulo 2^256 (EVM `ADD`).
    #[inline]
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction modulo 2^256 (EVM `SUB`).
    #[inline]
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: U256) -> U256 {
        match self.overflowing_add(rhs) {
            (v, false) => v,
            _ => U256::MAX,
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        match self.overflowing_sub(rhs) {
            (v, false) => v,
            _ => U256::ZERO,
        }
    }

    /// Wrapping multiplication modulo 2^256 (EVM `MUL`).
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        for i in 0..4 {
            if self.0[i] == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for j in 0..4 - i {
                let idx = i + j;
                let cur = out[idx] as u128;
                let prod = (self.0[i] as u128) * (rhs.0[j] as u128) + cur + carry;
                out[idx] = prod as u64;
                carry = prod >> 64;
            }
        }
        U256(out)
    }

    /// Multiplication that returns `None` on overflow.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        if self.is_zero() || rhs.is_zero() {
            return Some(U256::ZERO);
        }
        if self.bits() + rhs.bits() > 257 {
            return None;
        }
        let result = self.wrapping_mul(rhs);
        // bits() bound is loose by one; verify via division.
        if result / rhs == self {
            Some(result)
        } else {
            None
        }
    }

    /// Simultaneous quotient and remainder.
    ///
    /// Division by zero yields `(0, 0)` following EVM `DIV`/`MOD` semantics.
    pub fn div_rem(self, rhs: U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < rhs {
            return (U256::ZERO, self);
        }
        if rhs.0[1] == 0 && rhs.0[2] == 0 && rhs.0[3] == 0 {
            // Fast path: single-limb divisor.
            let d = rhs.0[0];
            let mut q = [0u64; 4];
            let mut rem: u128 = 0;
            for i in (0..4).rev() {
                let cur = (rem << 64) | self.0[i] as u128;
                q[i] = (cur / d as u128) as u64;
                rem = cur % d as u128;
            }
            return (U256(q), U256([rem as u64, 0, 0, 0]));
        }
        // Bit-by-bit long division for the general case.
        let mut quotient = U256::ZERO;
        let mut remainder = U256::ZERO;
        let bits = self.bits();
        for i in (0..bits).rev() {
            remainder = remainder << 1;
            if self.bit(i) {
                remainder.0[0] |= 1;
            }
            if remainder >= rhs {
                remainder = remainder.wrapping_sub(rhs);
                quotient.0[(i / 64) as usize] |= 1 << (i % 64);
            }
        }
        (quotient, remainder)
    }

    /// Modular addition `(self + rhs) % modulus` (EVM `ADDMOD`).
    ///
    /// Returns zero if `modulus` is zero.
    pub fn add_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let (sum, carry) = self.overflowing_add(rhs);
        if !carry {
            return sum % modulus;
        }
        // Compute (2^256 + sum) mod modulus without 512-bit arithmetic:
        // 2^256 mod m = ((MAX mod m) + 1) mod m.
        let two256_mod = ((U256::MAX % modulus).wrapping_add(U256::ONE)) % modulus;
        let sum_mod = sum % modulus;
        let (s, c) = sum_mod.overflowing_add(two256_mod);
        if c || s >= modulus {
            s.wrapping_sub(modulus)
        } else {
            s
        }
    }

    /// Modular multiplication `(self * rhs) % modulus` (EVM `MULMOD`).
    ///
    /// Returns zero if `modulus` is zero. Uses double-and-add to stay within
    /// 256-bit arithmetic.
    pub fn mul_mod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let mut result = U256::ZERO;
        let mut base = self % modulus;
        let other = rhs % modulus;
        for i in 0..other.bits() {
            if other.bit(i) {
                result = result.add_mod(base, modulus);
            }
            base = base.add_mod(base, modulus);
        }
        result
    }

    /// Returns `true` if the value is negative when interpreted as a
    /// two's-complement 256-bit signed integer (bit 255 set).
    #[inline]
    pub const fn is_negative_signed(&self) -> bool {
        self.0[3] >> 63 == 1
    }

    /// Two's-complement negation (`0 - self` modulo 2^256).
    pub fn wrapping_neg(self) -> U256 {
        U256::ZERO.wrapping_sub(self)
    }

    /// Signed division following EVM `SDIV` semantics: truncated division
    /// of two's-complement operands; division by zero yields zero;
    /// `MIN / -1` wraps to `MIN`.
    pub fn sdiv(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let negative = self.is_negative_signed() != rhs.is_negative_signed();
        let a = if self.is_negative_signed() {
            self.wrapping_neg()
        } else {
            self
        };
        let b = if rhs.is_negative_signed() {
            rhs.wrapping_neg()
        } else {
            rhs
        };
        let q = a / b;
        if negative {
            q.wrapping_neg()
        } else {
            q
        }
    }

    /// Signed remainder following EVM `SMOD` semantics: the result takes
    /// the sign of the dividend; modulo by zero yields zero.
    pub fn smod(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let a = if self.is_negative_signed() {
            self.wrapping_neg()
        } else {
            self
        };
        let b = if rhs.is_negative_signed() {
            rhs.wrapping_neg()
        } else {
            rhs
        };
        let r = a % b;
        if self.is_negative_signed() {
            r.wrapping_neg()
        } else {
            r
        }
    }

    /// Signed less-than over two's-complement values (EVM `SLT`).
    pub fn slt(&self, rhs: &U256) -> bool {
        match (self.is_negative_signed(), rhs.is_negative_signed()) {
            (true, false) => true,
            (false, true) => false,
            _ => self < rhs,
        }
    }

    /// Signed greater-than over two's-complement values (EVM `SGT`).
    pub fn sgt(&self, rhs: &U256) -> bool {
        rhs.slt(self)
    }

    /// Sign-extends from byte position `byte_index` (EVM `SIGNEXTEND`):
    /// bit `8*(byte_index+1) - 1` is copied upward. Indices ≥ 31 return
    /// the value unchanged.
    pub fn sign_extend(self, byte_index: U256) -> U256 {
        let Some(index) = byte_index.to_u64().filter(|&i| i < 31) else {
            return self;
        };
        let bit = (index as u32) * 8 + 7;
        if self.bit(bit) {
            // Set all bits above `bit`.
            let mask = (U256::ONE << (bit + 1)).wrapping_sub(U256::ONE);
            self | !mask
        } else {
            let mask = (U256::ONE << (bit + 1)).wrapping_sub(U256::ONE);
            self & mask
        }
    }

    /// Arithmetic right shift over the two's-complement value (EVM `SAR`).
    pub fn sar(self, shift: u32) -> U256 {
        if !self.is_negative_signed() {
            return self >> shift.min(256);
        }
        if shift >= 256 {
            return U256::MAX; // all ones
        }
        if shift == 0 {
            return self;
        }
        // Shift right, then fill the vacated high bits with ones.
        let shifted = self >> shift;
        let fill = !(U256::MAX >> shift);
        shifted | fill
    }

    /// Extracts byte `index` counting from the most significant (EVM
    /// `BYTE`): index 0 is the high-order byte; indices ≥ 32 yield zero.
    pub fn byte_be(&self, index: U256) -> U256 {
        match index.to_u64() {
            Some(i) if i < 32 => U256::from(self.to_be_bytes()[i as usize]),
            _ => U256::ZERO,
        }
    }

    /// Wrapping exponentiation modulo 2^256 (EVM `EXP`).
    pub fn wrapping_pow(self, exp: U256) -> U256 {
        let mut result = U256::ONE;
        let mut base = self;
        for i in 0..exp.bits() {
            if exp.bit(i) {
                result = result.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
        }
        result
    }

    /// Big-endian 32-byte representation.
    #[allow(clippy::needless_range_loop)] // limb index ↔ byte range mapping
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Parses a big-endian 32-byte representation.
    #[allow(clippy::needless_range_loop)] // limb index ↔ byte range mapping
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut limb = [0u8; 8];
            limb.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            limbs[i] = u64::from_be_bytes(limb);
        }
        U256(limbs)
    }

    /// Parses from a big-endian slice of at most 32 bytes.
    ///
    /// Shorter slices are interpreted as left-padded with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_slice(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256::from_be_slice: more than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        U256::from_be_bytes(buf)
    }

    /// Minimal big-endian byte representation (no leading zeros; empty for 0).
    pub fn to_be_bytes_trimmed(&self) -> Vec<u8> {
        let full = self.to_be_bytes();
        let first = full.iter().position(|&b| b != 0).unwrap_or(32);
        full[first..].to_vec()
    }

    /// Parses a hexadecimal string with optional `0x` prefix.
    pub fn from_hex(s: &str) -> Result<Self, ParseU256Error> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return Err(ParseU256Error);
        }
        let mut value = U256::ZERO;
        for c in s.chars() {
            let digit = c.to_digit(16).ok_or(ParseU256Error)? as u64;
            value = (value << 4) | U256::from(digit);
        }
        Ok(value)
    }

    /// Parses a decimal string.
    pub fn from_dec(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error);
        }
        let ten = U256::from(10u64);
        let mut value = U256::ZERO;
        for c in s.chars() {
            let digit = c.to_digit(10).ok_or(ParseU256Error)? as u64;
            value = value
                .checked_mul(ten)
                .and_then(|v| v.checked_add(U256::from(digit)))
                .ok_or(ParseU256Error)?;
        }
        Ok(value)
    }
}

/// Error returned when parsing a [`U256`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseU256Error;

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid 256-bit integer syntax")
    }
}

impl std::error::Error for ParseU256Error {}

impl FromStr for U256 {
    type Err = ParseU256Error;

    /// Parses decimal by default, hexadecimal with a `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            U256::from_hex(hex)
        } else {
            U256::from_dec(s)
        }
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256([v as u64, 0, 0, 0])
    }
}

impl From<u8> for U256 {
    fn from(v: u8) -> Self {
        U256([v as u64, 0, 0, 0])
    }
}

impl From<usize> for U256 {
    fn from(v: usize) -> Self {
        U256([v as u64, 0, 0, 0])
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }
}

impl From<bool> for U256 {
    fn from(v: bool) -> Self {
        if v {
            U256::ONE
        } else {
            U256::ZERO
        }
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.wrapping_add(rhs)
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: U256) {
        *self = self.wrapping_add(rhs);
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.wrapping_sub(rhs)
    }
}

impl SubAssign for U256 {
    fn sub_assign(&mut self, rhs: U256) {
        *self = self.wrapping_sub(rhs);
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.wrapping_mul(rhs)
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    #[allow(clippy::needless_range_loop)] // symmetric with Shl's limb walk
    fn shr(self, shift: u32) -> U256 {
        if shift >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (shift / 64) as usize;
        let bit_shift = shift % 64;
        let mut out = [0u64; 4];
        for i in 0..4 - limb_shift {
            out[i] = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }
}

impl Sum for U256 {
    fn sum<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |acc, v| acc.wrapping_add(v))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{:x})", self)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let ten = U256::from(10u64);
        let mut value = *self;
        while !value.is_zero() {
            let (q, r) = value.div_rem(ten);
            digits.push(b'0' + r.low_u64() as u8);
            value = q;
        }
        digits.reverse();
        f.write_str(std::str::from_utf8(&digits).expect("digits are ASCII"))
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:016x}", self.0[i])?;
            } else if self.0[i] != 0 {
                write!(f, "{:x}", self.0[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::UpperHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{:x}", self);
        f.write_str(&lower.to_uppercase())
    }
}

impl fmt::Binary for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let bits = self.bits();
        for i in (0..bits).rev() {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Octal for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let mut value = *self;
        let eight = U256::from(8u64);
        while !value.is_zero() {
            let (q, r) = value.div_rem(eight);
            digits.push(b'0' + r.low_u64() as u8);
            value = q;
        }
        digits.reverse();
        f.write_str(std::str::from_utf8(&digits).expect("digits are ASCII"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    #[test]
    fn zero_and_one_constants() {
        assert!(U256::ZERO.is_zero());
        assert!(!U256::ONE.is_zero());
        assert_eq!(U256::ONE.low_u64(), 1);
        assert_eq!(U256::default(), U256::ZERO);
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        let b = u(1);
        assert_eq!(a + b, U256([0, 1, 0, 0]));
    }

    #[test]
    fn add_wraps_at_max() {
        assert_eq!(U256::MAX + U256::ONE, U256::ZERO);
        let (v, carry) = U256::MAX.overflowing_add(U256::ONE);
        assert!(carry);
        assert_eq!(v, U256::ZERO);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = U256([0, 1, 0, 0]);
        assert_eq!(a - u(1), U256([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(U256::ZERO - U256::ONE, U256::MAX);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(U256::MAX.checked_add(U256::ONE), None);
        assert_eq!(U256::ZERO.checked_sub(U256::ONE), None);
        assert_eq!(u(4).checked_add(u(5)), Some(u(9)));
        assert_eq!(u(5).checked_sub(u(4)), Some(u(1)));
        assert_eq!(U256::MAX.checked_mul(u(2)), None);
        assert_eq!(u(1000).checked_mul(u(1000)), Some(u(1_000_000)));
        assert_eq!(U256::MAX.checked_mul(U256::ONE), Some(U256::MAX));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(U256::MAX.saturating_add(u(7)), U256::MAX);
        assert_eq!(u(3).saturating_sub(u(7)), U256::ZERO);
    }

    #[test]
    fn mul_cross_limb() {
        let a = U256([0, 1, 0, 0]); // 2^64
        let b = U256([0, 1, 0, 0]);
        assert_eq!(a * b, U256([0, 0, 1, 0])); // 2^128
    }

    #[test]
    fn mul_wraps() {
        // (2^255) * 2 == 0 (mod 2^256)
        let high = U256::ONE << 255;
        assert_eq!(high * u(2), U256::ZERO);
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = u(17).div_rem(u(5));
        assert_eq!(q, u(3));
        assert_eq!(r, u(2));
    }

    #[test]
    fn div_by_zero_is_zero() {
        assert_eq!(u(17) / U256::ZERO, U256::ZERO);
        assert_eq!(u(17) % U256::ZERO, U256::ZERO);
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = U256([0, 0, 5, 0]); // 5 * 2^128
        let b = U256([0, 1, 0, 0]); // 2^64
        assert_eq!(a / b, U256([0, 5, 0, 0]));
        assert_eq!(a % b, U256::ZERO);
        let c = a + u(7);
        assert_eq!(c / b, U256([0, 5, 0, 0]));
        assert_eq!(c % b, u(7));
    }

    #[test]
    fn div_rem_by_multi_limb_divisor() {
        let a = U256::MAX;
        let b = U256([0, 0, 1, 0]); // 2^128
        let q = a / b;
        let r = a % b;
        assert_eq!(q, U256([u64::MAX, u64::MAX, 0, 0]));
        assert_eq!(r, U256([u64::MAX, u64::MAX, 0, 0]));
        assert_eq!(q * b + r, a);
    }

    #[test]
    fn comparison_across_limbs() {
        let small = U256([u64::MAX, 0, 0, 0]);
        let big = U256([0, 1, 0, 0]);
        assert!(small < big);
        assert!(big > small);
        assert!(U256::MAX > U256::ZERO);
    }

    #[test]
    fn shifts() {
        assert_eq!(u(1) << 0, u(1));
        assert_eq!(u(1) << 64, U256([0, 1, 0, 0]));
        assert_eq!(u(1) << 200 >> 200, u(1));
        assert_eq!(u(1) << 256, U256::ZERO);
        assert_eq!(U256::MAX >> 255, u(1));
        assert_eq!(u(0b1010) >> 1, u(0b101));
    }

    #[test]
    fn bit_ops() {
        assert_eq!(u(0b1100) & u(0b1010), u(0b1000));
        assert_eq!(u(0b1100) | u(0b1010), u(0b1110));
        assert_eq!(u(0b1100) ^ u(0b1010), u(0b0110));
        assert_eq!(!U256::ZERO, U256::MAX);
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(u(1).bits(), 1);
        assert_eq!(u(0xff).bits(), 8);
        assert_eq!((u(1) << 200).bits(), 201);
        assert!(U256::MAX.bit(255));
        assert!(!u(2).bit(0));
        assert!(u(2).bit(1));
        assert!(!u(2).bit(300));
    }

    #[test]
    fn pow() {
        assert_eq!(u(2).wrapping_pow(u(10)), u(1024));
        assert_eq!(u(3).wrapping_pow(U256::ZERO), u(1));
        assert_eq!(U256::ZERO.wrapping_pow(u(5)), U256::ZERO);
        assert_eq!(u(10).wrapping_pow(u(18)), u(1_000_000_000_000_000_000));
    }

    #[test]
    fn add_mod_basic_and_overflowing() {
        assert_eq!(u(7).add_mod(u(8), u(10)), u(5));
        assert_eq!(u(7).add_mod(u(8), U256::ZERO), U256::ZERO);
        // Overflowing case: MAX + MAX mod 10.
        // 2^256 - 1 ≡ 5 (mod 10), so (2^256-1)*2 ≡ 0 (mod 10).
        assert_eq!(U256::MAX.add_mod(U256::MAX, u(10)), U256::ZERO);
    }

    #[test]
    fn mul_mod_basic_and_large() {
        assert_eq!(u(7).mul_mod(u(8), u(10)), u(6));
        assert_eq!(u(7).mul_mod(u(8), U256::ZERO), U256::ZERO);
        // MAX * MAX mod 10: (2^256-1) ≡ 5, 5*5 = 25 ≡ 5 (mod 10).
        assert_eq!(U256::MAX.mul_mod(U256::MAX, u(10)), u(5));
    }

    #[test]
    fn be_bytes_round_trip() {
        let v = U256([0x1122334455667788, 0x99aa_bbcc_ddee_ff00, 0x1357, 0x2468]);
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        let bytes = u(0x01_02).to_be_bytes();
        assert_eq!(bytes[30], 0x01);
        assert_eq!(bytes[31], 0x02);
    }

    #[test]
    fn be_slice_padding() {
        assert_eq!(U256::from_be_slice(&[0x12, 0x34]), u(0x1234));
        assert_eq!(U256::from_be_slice(&[]), U256::ZERO);
    }

    #[test]
    fn trimmed_bytes() {
        assert_eq!(u(0).to_be_bytes_trimmed(), Vec::<u8>::new());
        assert_eq!(u(0x1234).to_be_bytes_trimmed(), vec![0x12, 0x34]);
    }

    #[test]
    fn decimal_display_round_trip() {
        let cases = [
            "0",
            "1",
            "10",
            "12345678901234567890123456789012345678",
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        ];
        for c in cases {
            let v: U256 = c.parse().expect("valid decimal");
            assert_eq!(v.to_string(), c);
        }
    }

    #[test]
    fn hex_parse_and_display() {
        let v = U256::from_hex("0xdeadbeef").expect("valid hex");
        assert_eq!(v, u(0xdeadbeef));
        assert_eq!(format!("{:x}", v), "deadbeef");
        assert_eq!(format!("{:X}", v), "DEADBEEF");
        let big = U256::from_hex("ffffffffffffffffffffffffffffffff").expect("valid");
        assert_eq!(big, U256([u64::MAX, u64::MAX, 0, 0]));
        assert_eq!(format!("{:x}", big), "ffffffffffffffffffffffffffffffff");
    }

    #[test]
    fn parse_errors() {
        assert!(U256::from_dec("").is_err());
        assert!(U256::from_dec("12a").is_err());
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("xyz").is_err());
        // 65 hex digits overflows.
        assert!(U256::from_hex(&"f".repeat(65)).is_err());
        // Decimal overflow.
        assert!(U256::from_dec(&"9".repeat(100)).is_err());
    }

    #[test]
    fn binary_and_octal_formatting() {
        assert_eq!(format!("{:b}", u(10)), "1010");
        assert_eq!(format!("{:o}", u(8)), "10");
        assert_eq!(format!("{:b}", U256::ZERO), "0");
        assert_eq!(format!("{:o}", U256::ZERO), "0");
    }

    #[test]
    fn conversions() {
        assert_eq!(U256::from(true), U256::ONE);
        assert_eq!(U256::from(false), U256::ZERO);
        assert_eq!(U256::from(7u8), u(7));
        assert_eq!(U256::from(7u32), u(7));
        assert_eq!(U256::from(u128::MAX).low_u128(), u128::MAX);
        assert_eq!(u(42).to_usize(), Some(42));
        assert_eq!((U256::ONE << 200).to_usize(), None);
        assert_eq!(u(42).to_u64(), Some(42));
        assert_eq!((U256::ONE << 200).to_u64(), None);
    }

    #[test]
    fn sum_iterator() {
        let total: U256 = (1..=10u64).map(U256::from).sum();
        assert_eq!(total, u(55));
    }

    /// Two's-complement encoding of a small negative number.
    fn neg(v: u64) -> U256 {
        U256::from(v).wrapping_neg()
    }

    #[test]
    fn signed_negation_and_sign_bit() {
        assert!(neg(1).is_negative_signed());
        assert!(!u(1).is_negative_signed());
        assert!(!U256::ZERO.is_negative_signed());
        assert_eq!(neg(1), U256::MAX);
        assert_eq!(neg(5).wrapping_neg(), u(5));
        assert_eq!(U256::ZERO.wrapping_neg(), U256::ZERO);
    }

    #[test]
    fn sdiv_truncates_toward_zero() {
        assert_eq!(u(7).sdiv(u(2)), u(3));
        assert_eq!(neg(7).sdiv(u(2)), neg(3));
        assert_eq!(u(7).sdiv(neg(2)), neg(3));
        assert_eq!(neg(7).sdiv(neg(2)), u(3));
        assert_eq!(u(7).sdiv(U256::ZERO), U256::ZERO);
        // EVM edge case: MIN / -1 = MIN.
        let min = U256::ONE << 255;
        assert_eq!(min.sdiv(neg(1)), min);
    }

    #[test]
    fn smod_takes_dividend_sign() {
        assert_eq!(u(7).smod(u(3)), u(1));
        assert_eq!(neg(7).smod(u(3)), neg(1));
        assert_eq!(u(7).smod(neg(3)), u(1));
        assert_eq!(neg(7).smod(neg(3)), neg(1));
        assert_eq!(u(7).smod(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn signed_comparisons() {
        assert!(neg(1).slt(&u(0)));
        assert!(neg(2).slt(&neg(1)));
        assert!(u(1).sgt(&neg(100)));
        assert!(!u(1).slt(&u(1)));
        assert!(u(2).sgt(&u(1)));
    }

    #[test]
    fn sign_extend_cases() {
        // 0xff at byte 0 → -1.
        assert_eq!(u(0xff).sign_extend(u(0)), U256::MAX);
        // 0x7f at byte 0 → positive, unchanged.
        assert_eq!(u(0x7f).sign_extend(u(0)), u(0x7f));
        // Garbage above the sign byte is cleared for positive values.
        assert_eq!(u(0xaa7f).sign_extend(u(0)), u(0x7f));
        // Index ≥ 31: unchanged.
        assert_eq!(u(0xff).sign_extend(u(31)), u(0xff));
        assert_eq!(u(0xff).sign_extend(U256::MAX), u(0xff));
        // 0x80nn at byte 1 → negative 16-bit value extended.
        let v = u(0x8000).sign_extend(u(1));
        assert!(v.is_negative_signed());
        assert_eq!(v.wrapping_neg(), u(0x8000));
    }

    #[test]
    fn sar_fills_sign() {
        assert_eq!(u(16).sar(2), u(4));
        assert_eq!(neg(16).sar(2), neg(4));
        assert_eq!(neg(1).sar(100), neg(1)); // stays all-ones
        assert_eq!(neg(5).sar(256), U256::MAX);
        assert_eq!(u(5).sar(256), U256::ZERO);
        assert_eq!(neg(7).sar(0), neg(7));
        // -7 >> 1 = -4 (arithmetic shift rounds toward -inf).
        assert_eq!(neg(7).sar(1), neg(4));
    }

    #[test]
    fn byte_extraction() {
        let v = U256::from_hex("0x1122334455").expect("valid");
        assert_eq!(v.byte_be(u(31)), u(0x55));
        assert_eq!(v.byte_be(u(27)), u(0x11));
        assert_eq!(v.byte_be(u(0)), U256::ZERO);
        assert_eq!(v.byte_be(u(32)), U256::ZERO);
        assert_eq!(v.byte_be(U256::MAX), U256::ZERO);
    }
}
