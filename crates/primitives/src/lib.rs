//! Foundational types for the DMVCC reproduction: 256-bit words, addresses,
//! Keccak-256 hashing, hexadecimal utilities and RLP serialization.
//!
//! These are the primitives every other crate in the workspace builds on:
//! the EVM interpreter ([`U256`] words), the state database ([`Address`],
//! [`H256`], [`rlp`]) and the Merkle Patricia Trie ([`keccak256`]).
//!
//! # Examples
//!
//! ```
//! use dmvcc_primitives::{keccak256, Address, U256};
//!
//! // Derive an ERC20-style storage slot: keccak(owner ++ slot_index).
//! let owner = Address::from_u64(1);
//! let mut preimage = Vec::new();
//! preimage.extend_from_slice(&owner.to_u256().to_be_bytes());
//! preimage.extend_from_slice(&U256::ZERO.to_be_bytes());
//! let slot = keccak256(&preimage).to_u256();
//! assert!(!slot.is_zero());
//! ```

#![warn(missing_docs)]

mod hash;
pub mod hex;
mod keccak;
pub mod rlp;
mod u256;

pub use hash::{Address, H256};
pub use hex::{decode_hex, encode_hex, ParseHexError};
pub use keccak::{keccak256, Keccak256};
pub use u256::{ParseU256Error, U256};
