//! Recursive Length Prefix (RLP) encoding and decoding.
//!
//! RLP is Ethereum's canonical serialization for trie nodes, accounts and
//! transactions. The Merkle Patricia Trie in `dmvcc-state` hashes the RLP
//! encoding of its nodes, so the encoding must be exact for state-root
//! comparisons to be meaningful.
//!
//! # Examples
//!
//! ```
//! use dmvcc_primitives::rlp::{encode_bytes, encode_list, Rlp};
//!
//! // "dog" encodes as 0x83 'd' 'o' 'g'.
//! assert_eq!(encode_bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
//!
//! // ["cat", "dog"] encodes as a list.
//! let list = encode_list(&[encode_bytes(b"cat"), encode_bytes(b"dog")]);
//! assert_eq!(list[0], 0xc8);
//!
//! let decoded = Rlp::decode(&list)?;
//! # Ok::<(), dmvcc_primitives::rlp::RlpError>(())
//! ```

use core::fmt;

/// A decoded RLP item: either a byte string or a list of items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rlp {
    /// A byte string.
    Bytes(Vec<u8>),
    /// A list of nested items.
    List(Vec<Rlp>),
}

/// Error returned when decoding malformed RLP data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlpError {
    /// The input ended before the announced payload length.
    UnexpectedEof,
    /// A length prefix was not minimally encoded or otherwise invalid.
    InvalidLength,
    /// Extra bytes remained after the top-level item.
    TrailingBytes,
}

impl fmt::Display for RlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlpError::UnexpectedEof => f.write_str("unexpected end of RLP input"),
            RlpError::InvalidLength => f.write_str("invalid RLP length prefix"),
            RlpError::TrailingBytes => f.write_str("trailing bytes after RLP item"),
        }
    }
}

impl std::error::Error for RlpError {}

fn encode_length(len: usize, offset: u8, out: &mut Vec<u8>) {
    if len <= 55 {
        out.push(offset + len as u8);
    } else {
        let len_bytes = len.to_be_bytes();
        let first = len_bytes.iter().position(|&b| b != 0).unwrap_or(7);
        let significant = &len_bytes[first..];
        out.push(offset + 55 + significant.len() as u8);
        out.extend_from_slice(significant);
    }
}

/// Encodes a byte string.
pub fn encode_bytes(data: &[u8]) -> Vec<u8> {
    if data.len() == 1 && data[0] < 0x80 {
        return vec![data[0]];
    }
    let mut out = Vec::with_capacity(data.len() + 9);
    encode_length(data.len(), 0x80, &mut out);
    out.extend_from_slice(data);
    out
}

/// Encodes a list from already-encoded item payloads.
pub fn encode_list(items: &[Vec<u8>]) -> Vec<u8> {
    let payload_len: usize = items.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(payload_len + 9);
    encode_length(payload_len, 0xc0, &mut out);
    for item in items {
        out.extend_from_slice(item);
    }
    out
}

/// Encodes an unsigned integer using the minimal big-endian byte form
/// (zero encodes as the empty string, per the Ethereum convention).
pub fn encode_uint(value: u64) -> Vec<u8> {
    if value == 0 {
        return encode_bytes(&[]);
    }
    let bytes = value.to_be_bytes();
    let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
    encode_bytes(&bytes[first..])
}

impl Rlp {
    /// Decodes a single top-level RLP item.
    ///
    /// # Errors
    ///
    /// Returns [`RlpError`] if the input is truncated, has an invalid length
    /// prefix, or contains trailing bytes.
    pub fn decode(data: &[u8]) -> Result<Rlp, RlpError> {
        let (item, consumed) = Self::decode_prefix(data)?;
        if consumed != data.len() {
            return Err(RlpError::TrailingBytes);
        }
        Ok(item)
    }

    fn decode_prefix(data: &[u8]) -> Result<(Rlp, usize), RlpError> {
        let first = *data.first().ok_or(RlpError::UnexpectedEof)?;
        match first {
            0x00..=0x7f => Ok((Rlp::Bytes(vec![first]), 1)),
            0x80..=0xb7 => {
                let len = (first - 0x80) as usize;
                let payload = data.get(1..1 + len).ok_or(RlpError::UnexpectedEof)?;
                if len == 1 && payload[0] < 0x80 {
                    return Err(RlpError::InvalidLength); // non-minimal
                }
                Ok((Rlp::Bytes(payload.to_vec()), 1 + len))
            }
            0xb8..=0xbf => {
                let len_len = (first - 0xb7) as usize;
                let len = Self::read_length(data, len_len)?;
                let payload = data
                    .get(1 + len_len..1 + len_len + len)
                    .ok_or(RlpError::UnexpectedEof)?;
                Ok((Rlp::Bytes(payload.to_vec()), 1 + len_len + len))
            }
            0xc0..=0xf7 => {
                let len = (first - 0xc0) as usize;
                let payload = data.get(1..1 + len).ok_or(RlpError::UnexpectedEof)?;
                Ok((Rlp::List(Self::decode_items(payload)?), 1 + len))
            }
            0xf8..=0xff => {
                let len_len = (first - 0xf7) as usize;
                let len = Self::read_length(data, len_len)?;
                let payload = data
                    .get(1 + len_len..1 + len_len + len)
                    .ok_or(RlpError::UnexpectedEof)?;
                Ok((Rlp::List(Self::decode_items(payload)?), 1 + len_len + len))
            }
        }
    }

    fn read_length(data: &[u8], len_len: usize) -> Result<usize, RlpError> {
        let bytes = data.get(1..1 + len_len).ok_or(RlpError::UnexpectedEof)?;
        if bytes.first() == Some(&0) {
            return Err(RlpError::InvalidLength); // non-minimal
        }
        let mut len = 0usize;
        for &b in bytes {
            len = len.checked_mul(256).ok_or(RlpError::InvalidLength)? + b as usize;
        }
        if len <= 55 {
            return Err(RlpError::InvalidLength); // should have used short form
        }
        Ok(len)
    }

    fn decode_items(mut payload: &[u8]) -> Result<Vec<Rlp>, RlpError> {
        let mut items = Vec::new();
        while !payload.is_empty() {
            let (item, consumed) = Self::decode_prefix(payload)?;
            items.push(item);
            payload = &payload[consumed..];
        }
        Ok(items)
    }

    /// Returns the byte string if this item is one.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Rlp::Bytes(b) => Some(b),
            Rlp::List(_) => None,
        }
    }

    /// Returns the item list if this item is a list.
    pub fn as_list(&self) -> Option<&[Rlp]> {
        match self {
            Rlp::Bytes(_) => None,
            Rlp::List(items) => Some(items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors() {
        // From the Ethereum wiki RLP test vectors.
        assert_eq!(encode_bytes(b"dog"), vec![0x83, b'd', b'o', b'g']);
        assert_eq!(encode_bytes(b""), vec![0x80]);
        assert_eq!(encode_bytes(&[0x0f]), vec![0x0f]);
        assert_eq!(encode_bytes(&[0x04, 0x00]), vec![0x82, 0x04, 0x00]);
        assert_eq!(encode_list(&[]), vec![0xc0]);
        let cat_dog = encode_list(&[encode_bytes(b"cat"), encode_bytes(b"dog")]);
        assert_eq!(
            cat_dog,
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
    }

    #[test]
    fn long_string() {
        let data = vec![0x61u8; 56];
        let encoded = encode_bytes(&data);
        assert_eq!(encoded[0], 0xb8);
        assert_eq!(encoded[1], 56);
        assert_eq!(&encoded[2..], &data[..]);
    }

    #[test]
    fn long_list() {
        let item = encode_bytes(&[0x61u8; 54]); // 55 bytes encoded
        let list = encode_list(&[item.clone(), item.clone()]);
        assert_eq!(list[0], 0xf8);
        assert_eq!(list[1], 110);
    }

    #[test]
    fn uint_encoding() {
        assert_eq!(encode_uint(0), vec![0x80]);
        assert_eq!(encode_uint(15), vec![0x0f]);
        assert_eq!(encode_uint(1024), vec![0x82, 0x04, 0x00]);
    }

    #[test]
    fn decode_round_trip_bytes() {
        for data in [&b""[..], b"a", b"dog", &[0x80u8, 1, 2], &[0u8; 100]] {
            let encoded = encode_bytes(data);
            let decoded = Rlp::decode(&encoded).expect("valid");
            assert_eq!(decoded, Rlp::Bytes(data.to_vec()));
        }
    }

    #[test]
    fn decode_round_trip_nested_list() {
        // [ [], [[]], [ [], [[]] ] ] — the "set theoretic" vector.
        let empty = encode_list(&[]);
        let one = encode_list(std::slice::from_ref(&empty));
        let two = encode_list(&[empty.clone(), one.clone()]);
        let top = encode_list(&[empty.clone(), one.clone(), two.clone()]);
        assert_eq!(top, vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]);
        let decoded = Rlp::decode(&top).expect("valid");
        let items = decoded.as_list().expect("list");
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn decode_rejects_truncation() {
        assert_eq!(Rlp::decode(&[0x83, b'd']), Err(RlpError::UnexpectedEof));
        assert_eq!(Rlp::decode(&[]), Err(RlpError::UnexpectedEof));
    }

    #[test]
    fn decode_rejects_trailing() {
        assert_eq!(Rlp::decode(&[0x01, 0x02]), Err(RlpError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_non_minimal() {
        // Single byte < 0x80 must encode as itself, not with a prefix.
        assert_eq!(Rlp::decode(&[0x81, 0x01]), Err(RlpError::InvalidLength));
    }

    #[test]
    fn accessors() {
        assert_eq!(Rlp::Bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert_eq!(Rlp::Bytes(vec![1]).as_list(), None);
        assert_eq!(Rlp::List(vec![]).as_bytes(), None);
        assert!(Rlp::List(vec![]).as_list().is_some());
    }
}
