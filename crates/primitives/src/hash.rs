//! Fixed-size hash and address types.

use core::fmt;
use core::str::FromStr;

use crate::hex::{decode_hex, encode_hex};
use crate::keccak::keccak256;
use crate::U256;

/// A 32-byte hash value (Keccak-256 digest, trie root, block hash, ...).
///
/// # Examples
///
/// ```
/// use dmvcc_primitives::H256;
///
/// let h: H256 = "0x00000000000000000000000000000000000000000000000000000000000000ff"
///     .parse()?;
/// assert_eq!(h.0[31], 0xff);
/// # Ok::<(), dmvcc_primitives::ParseHexError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct H256(pub [u8; 32]);

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// Returns `true` if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Views the hash as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Converts to a [`U256`] interpreting the bytes as big-endian.
    pub fn to_u256(&self) -> U256 {
        U256::from_be_bytes(self.0)
    }

    /// Creates a hash from a big-endian [`U256`].
    pub fn from_u256(value: U256) -> H256 {
        H256(value.to_be_bytes())
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H256({})", self)
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", encode_hex(&self.0))
    }
}

impl FromStr for H256 {
    type Err = crate::hex::ParseHexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = decode_hex(s)?;
        if bytes.len() != 32 {
            return Err(crate::hex::ParseHexError);
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(&bytes);
        Ok(H256(out))
    }
}

impl From<U256> for H256 {
    fn from(value: U256) -> Self {
        H256::from_u256(value)
    }
}

impl From<H256> for U256 {
    fn from(value: H256) -> Self {
        value.to_u256()
    }
}

impl AsRef<[u8]> for H256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A 20-byte account address.
///
/// Contract and user accounts are identified by addresses, mirroring
/// Ethereum's layout (an address is the low 20 bytes of a Keccak-256 hash).
///
/// # Examples
///
/// ```
/// use dmvcc_primitives::Address;
///
/// let a = Address::from_u64(42);
/// let b = Address::from_u64(42);
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The all-zero address (used as the "mint/burn" peer in token
    /// contracts and as the recipient of contract-creation transactions).
    pub const ZERO: Address = Address([0u8; 20]);

    /// Derives a deterministic test address from an integer id.
    ///
    /// Workload generators use this to produce stable, collision-free
    /// account spaces: the id is hashed so addresses are uniformly spread.
    pub fn from_u64(id: u64) -> Address {
        let digest = keccak256(&id.to_be_bytes());
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.0[12..32]);
        Address(out)
    }

    /// Views the address as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns `true` if every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Widens the address to a [`U256`] (big-endian, left-padded).
    pub fn to_u256(&self) -> U256 {
        U256::from_be_slice(&self.0)
    }

    /// Truncates a [`U256`] to its low 20 bytes, mirroring the EVM's
    /// address masking semantics.
    pub fn from_u256(value: U256) -> Address {
        let bytes = value.to_be_bytes();
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes[12..32]);
        Address(out)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({})", self)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", encode_hex(&self.0))
    }
}

impl FromStr for Address {
    type Err = crate::hex::ParseHexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = decode_hex(s)?;
        if bytes.len() != 20 {
            return Err(crate::hex::ParseHexError);
        }
        let mut out = [0u8; 20];
        out.copy_from_slice(&bytes);
        Ok(Address(out))
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h256_display_round_trip() {
        let h = keccak256(b"x");
        let text = h.to_string();
        assert!(text.starts_with("0x"));
        assert_eq!(text.len(), 66);
        let parsed: H256 = text.parse().expect("round trip");
        assert_eq!(parsed, h);
    }

    #[test]
    fn h256_u256_round_trip() {
        let v = U256::from(0xdeadbeefu64);
        assert_eq!(H256::from_u256(v).to_u256(), v);
        let h: H256 = v.into();
        let back: U256 = h.into();
        assert_eq!(back, v);
    }

    #[test]
    fn h256_zero() {
        assert!(H256::ZERO.is_zero());
        assert!(!keccak256(b"").is_zero());
    }

    #[test]
    fn h256_parse_errors() {
        assert!("0x1234".parse::<H256>().is_err());
        assert!("zz".repeat(32).parse::<H256>().is_err());
    }

    #[test]
    fn address_from_u64_is_deterministic_and_spread() {
        let a = Address::from_u64(1);
        let b = Address::from_u64(1);
        let c = Address::from_u64(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn address_u256_round_trip() {
        let a = Address::from_u64(77);
        assert_eq!(Address::from_u256(a.to_u256()), a);
    }

    #[test]
    fn address_display_round_trip() {
        let a = Address::from_u64(3);
        let text = a.to_string();
        assert_eq!(text.len(), 42);
        let parsed: Address = text.parse().expect("round trip");
        assert_eq!(parsed, a);
    }

    #[test]
    fn address_parse_errors() {
        assert!("0x12".parse::<Address>().is_err());
    }

    #[test]
    fn zero_address() {
        assert!(Address::ZERO.is_zero());
        assert!(!Address::from_u64(9).is_zero());
    }
}
