//! Keccak-256 implemented from scratch (the original Keccak padding used by
//! Ethereum, not NIST SHA-3).
//!
//! The state commitments of the reproduced system (Merkle Patricia Trie
//! roots, storage-slot derivations) all hash with Keccak-256, so a faithful
//! implementation is required for the RQ1 root-equality oracle.
//!
//! # Examples
//!
//! ```
//! use dmvcc_primitives::keccak256;
//!
//! let digest = keccak256(b"");
//! assert_eq!(
//!     format!("{}", digest),
//!     "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
//! );
//! ```

use crate::H256;

const ROUNDS: usize = 24;
/// Rate in bytes for Keccak-256 (1600 - 2*256 bits = 1088 bits = 136 bytes).
const RATE: usize = 136;

const ROUND_CONSTANTS: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets, indexed `[x][y]` per the Keccak reference.
const ROTATION: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// The Keccak-f[1600] permutation applied in place to a 5x5 lane state.
// Index loops mirror the (x, y) lane coordinates of the Keccak reference;
// iterator forms would obscure the correspondence.
#[allow(clippy::needless_range_loop)]
fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for rc in ROUND_CONSTANTS.iter() {
        // Theta.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x][y] ^= d;
            }
        }
        // Rho and Pi.
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(ROTATION[x][y]);
            }
        }
        // Chi.
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ (!b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
            }
        }
        // Iota.
        state[0][0] ^= rc;
    }
}

/// An incremental Keccak-256 hasher.
///
/// # Examples
///
/// ```
/// use dmvcc_primitives::{keccak256, Keccak256};
///
/// let mut hasher = Keccak256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// assert_eq!(hasher.finalize(), keccak256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buffer: [u8; RATE],
    buffered: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [[0u64; 5]; 5],
            buffer: [0u8; RATE],
            buffered: 0,
        }
    }

    /// Absorbs `data` into the sponge.
    pub fn update(&mut self, data: &[u8]) {
        let mut input = data;
        while !input.is_empty() {
            let take = (RATE - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == RATE {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..RATE / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&self.buffer[i * 8..i * 8 + 8]);
            let (x, y) = (i % 5, i / 5);
            self.state[x][y] ^= u64::from_le_bytes(lane);
        }
        keccak_f(&mut self.state);
        self.buffered = 0;
    }

    /// Applies padding and squeezes the 32-byte digest.
    pub fn finalize(mut self) -> H256 {
        // Original Keccak multi-rate padding: 0x01 ... 0x80.
        self.buffer[self.buffered..].fill(0);
        self.buffer[self.buffered] ^= 0x01;
        self.buffer[RATE - 1] ^= 0x80;
        self.buffered = RATE;
        self.absorb_block();

        let mut out = [0u8; 32];
        for i in 0..4 {
            let (x, y) = (i % 5, i / 5);
            out[i * 8..i * 8 + 8].copy_from_slice(&self.state[x][y].to_le_bytes());
        }
        H256(out)
    }
}

/// Computes the Keccak-256 digest of `data` in one shot.
pub fn keccak256(data: &[u8]) -> H256 {
    let mut hasher = Keccak256::new();
    hasher.update(data);
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(data: &[u8]) -> String {
        format!("{}", keccak256(data))
    }

    #[test]
    fn empty_input_vector() {
        assert_eq!(
            hex_digest(b""),
            "0xc5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex_digest(b"abc"),
            "0x4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn hello_vector() {
        // Well-known Ethereum test vector.
        assert_eq!(
            hex_digest(b"hello"),
            "0x1c8aff950685c2ed4bc3174f3472287b56d9517b9c948127319a09a7a36deac8"
        );
    }

    #[test]
    fn solidity_transfer_selector() {
        // keccak256("transfer(address,uint256)") starts with a9059cbb —
        // the canonical ERC20 transfer selector.
        let digest = keccak256(b"transfer(address,uint256)");
        assert_eq!(&digest.0[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn multi_block_input() {
        // Exceeds one rate block (136 bytes) to exercise the absorb loop.
        let data = vec![0xabu8; 300];
        let one_shot = keccak256(&data);
        let mut incremental = Keccak256::new();
        for chunk in data.chunks(7) {
            incremental.update(chunk);
        }
        assert_eq!(incremental.finalize(), one_shot);
    }

    #[test]
    fn rate_boundary_inputs() {
        // Exactly RATE and RATE-1 and RATE+1 byte inputs all differ.
        let a = keccak256(&[0u8; RATE - 1]);
        let b = keccak256(&[0u8; RATE]);
        let c = keccak256(&[0u8; RATE + 1]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn deterministic() {
        assert_eq!(keccak256(b"determinism"), keccak256(b"determinism"));
        assert_ne!(keccak256(b"a"), keccak256(b"b"));
    }
}
