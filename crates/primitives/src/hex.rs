//! Minimal hexadecimal encode/decode helpers used by the display and parse
//! implementations of [`crate::H256`] and [`crate::Address`].

use core::fmt;

/// Error returned when decoding an invalid hexadecimal string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseHexError;

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid hexadecimal syntax")
    }
}

impl std::error::Error for ParseHexError {}

const HEX_CHARS: &[u8; 16] = b"0123456789abcdef";

/// Encodes bytes as a lowercase hexadecimal string without a prefix.
///
/// # Examples
///
/// ```
/// assert_eq!(dmvcc_primitives::encode_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX_CHARS[(b >> 4) as usize] as char);
        out.push(HEX_CHARS[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hexadecimal string (optional `0x` prefix, even length).
///
/// # Errors
///
/// Returns [`ParseHexError`] if the string has odd length or contains a
/// non-hexadecimal character.
///
/// # Examples
///
/// ```
/// assert_eq!(dmvcc_primitives::decode_hex("0xdead")?, vec![0xde, 0xad]);
/// # Ok::<(), dmvcc_primitives::ParseHexError>(())
/// ```
pub fn decode_hex(s: &str) -> Result<Vec<u8>, ParseHexError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if !s.len().is_multiple_of(2) {
        return Err(ParseHexError);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or(ParseHexError)?;
        let lo = (pair[1] as char).to_digit(16).ok_or(ParseHexError)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_empty() {
        assert_eq!(encode_hex(&[]), "");
    }

    #[test]
    fn round_trip() {
        let data = vec![0x00, 0x01, 0xab, 0xff];
        assert_eq!(decode_hex(&encode_hex(&data)).expect("round trip"), data);
    }

    #[test]
    fn decode_with_prefix() {
        assert_eq!(decode_hex("0x00ff").expect("valid"), vec![0x00, 0xff]);
    }

    #[test]
    fn decode_rejects_odd_length() {
        assert_eq!(decode_hex("abc"), Err(ParseHexError));
    }

    #[test]
    fn decode_rejects_bad_chars() {
        assert_eq!(decode_hex("zz"), Err(ParseHexError));
    }
}
