//! The `dmvcc` command-line tool.

use dmvcc_analysis::{
    cfg_to_dot, lint_deployed, loop_gas_bounds, static_gas_bounds, Analyzer, CallGraph, PSag,
    Severity,
};
use dmvcc_baselines::{simulate_dag, simulate_occ};
use dmvcc_chain::{
    run_pipelined_chain, run_testnet, BackendKind, ChainConfig, ExecutorKind, SchedulerKind,
};
use dmvcc_cli::{
    contract_by_name, fixture_address, fixture_registry, parse_args, ParsedArgs, CONTRACT_NAMES,
    USAGE,
};
use dmvcc_core::{build_csags, execute_block_serial, simulate_dmvcc, DmvccConfig};
use dmvcc_state::Snapshot;
use dmvcc_vm::BlockEnv;
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "contracts" => cmd_contracts(),
        "analyze" => cmd_analyze(&parsed),
        "lint" => cmd_lint(&parsed),
        "run" => cmd_run(&parsed),
        "chain" => cmd_chain(&parsed),
        "profile" => cmd_profile(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    if let Err(message) = result {
        eprintln!("error: {message}");
        std::process::exit(1);
    }
}

fn cmd_contracts() -> Result<(), String> {
    println!("{:<15}{:>8}  description", "name", "bytes");
    let descriptions = [
        (
            "token",
            "ERC20-style token (transfer/mint/approve/transferFrom)",
        ),
        (
            "counter",
            "shared counter (commutative and checked increments)",
        ),
        ("amm", "constant-product pool (swap/add-liquidity/quote)"),
        ("nft", "NFT collection with a hot mint counter"),
        ("ballot", "one-vote-per-account ballot"),
        (
            "fig1",
            "the paper's Fig. 1 example (runtime-dependent keys)",
        ),
        ("auction", "English auction with commutative refunds"),
        ("crowdsale", "ICO-style sale (commutative contributions)"),
        ("batch_pay", "one debit, three commutative credits"),
        ("airdrop", "calldata-bounded credit loop (≤32 recipients)"),
        (
            "batch_transfer",
            "snapshot-bounded transfer loop (count in slot 0)",
        ),
        ("router", "thin DEX router CALLing the fixture AMM"),
        (
            "router2",
            "aggregator router: pull token, swap on AMM, pay out",
        ),
        (
            "flash_mint",
            "flash-mint-and-repay against the fixture token",
        ),
        ("oracle", "price oracle fanning updates out to consumers"),
        ("price_consumer", "stores the last pushed oracle price"),
        (
            "royalty_splitter",
            "DELEGATECALL library: fee tab + value-CALL payout",
        ),
        (
            "nft_drop",
            "mint-rush drop: DELEGATECALL royalties, STATICCALL floor",
        ),
        ("floor_oracle", "write-free floor price read (STATICCALL target)"),
    ];
    for (name, description) in descriptions {
        let code = contract_by_name(name).expect("listed contracts exist");
        println!("{name:<15}{:>8}  {description}", code.len());
    }
    Ok(())
}

fn cmd_analyze(parsed: &ParsedArgs) -> Result<(), String> {
    let name = parsed
        .positional
        .first()
        .ok_or_else(|| format!("analyze needs a contract name (one of {CONTRACT_NAMES:?})"))?;
    let code = contract_by_name(name)
        .ok_or_else(|| format!("unknown contract `{name}` (one of {CONTRACT_NAMES:?})"))?;
    // Registry-aware build: CALL sites into the fixture universe summarize
    // instead of degrading the block to opaque.
    let registry = fixture_registry();
    let sag = PSag::build_with(&code, Some(&registry));
    println!("== P-SAG of `{name}` ({} bytes of code) ==", code.len());
    println!("basic blocks        : {}", sag.cfg.blocks.len());
    println!("state-access nodes  : {}", sag.ops.len());
    println!("  resolved statically : {}", sag.resolved().count());
    println!(
        "  symbolic templates  : {}",
        sag.template_resolved().count()
    );
    println!("  placeholders '–'    : {}", sag.unresolved().count());
    println!("loop nodes          : {:?}", sag.loop_head_pcs);
    for summary in &sag.loops.loops {
        let trip = match &summary.trip {
            Some(trip) => match trip.cap {
                Some(cap) => format!("{:?}-bounded, cap {cap}", trip.source),
                None => format!("{:?}-bounded, no static cap", trip.source),
            },
            None => "unbounded".to_string(),
        };
        println!(
            "  loop @{}: {} ({} body blocks, {} key families{})",
            summary.head_pc,
            trip,
            summary.body.len(),
            summary.families.len(),
            if summary.bounded() {
                ", summarizable"
            } else {
                ""
            }
        );
    }
    println!("release points      : {:?}", sag.release_pcs);
    let static_bounds = static_gas_bounds(&sag.cfg);
    let loop_bounds = loop_gas_bounds(&sag.cfg, &sag.plan, &sag.loops);
    for pc in &sag.release_pcs {
        if let Some(block) = sag.cfg.blocks.iter().find(|b| b.start_pc == *pc) {
            match (static_bounds[block.index], loop_bounds[block.index]) {
                (Some(g), _) => println!("  release @{pc}: static gas bound {g}"),
                (None, Some(g)) => println!("  release @{pc}: loop-summarized gas bound {g}"),
                (None, None) => println!("  release @{pc}: bound deferred to C-SAG (loop ahead)"),
            }
        }
    }
    if let Some(path) = parsed.options.get("dot") {
        let dot = cfg_to_dot(&sag.cfg, &sag.release_pcs);
        std::fs::write(path, dot).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_lint(parsed: &ParsedArgs) -> Result<(), String> {
    if let Some(flag) = parsed
        .options
        .keys()
        .find(|k| !matches!(k.as_str(), "all" | "json"))
    {
        eprintln!("error: lint does not take --{flag}\n\n{USAGE}");
        std::process::exit(2);
    }
    let json = parsed.has("json");
    let names: Vec<String> = if parsed.has("all") || parsed.positional.is_empty() {
        CONTRACT_NAMES.iter().map(|s| s.to_string()).collect()
    } else {
        parsed.positional.clone()
    };
    // Lint each contract as deployed in the fixture universe so call
    // sites classify (summarizable / recursive / depth-bailout) instead
    // of degrading every CALL-bearing block to opaque.
    let registry = fixture_registry();
    let graph = CallGraph::build(&registry);
    let mut failed: Vec<String> = Vec::new();
    for name in &names {
        let address = fixture_address(name)
            .ok_or_else(|| format!("unknown contract `{name}` (one of {CONTRACT_NAMES:?})"))?;
        let lint = lint_deployed(name, address, &registry, &graph);
        if json {
            for finding in &lint.findings {
                println!("{}", finding_json(name, finding));
            }
        } else {
            println!(
                "== {name}: {} accesses, {} template-resolved ({} constant), {} release points ==",
                lint.access_ops, lint.template_resolved, lint.const_resolved, lint.release_points
            );
            if lint.findings.is_empty() {
                println!("  clean");
            }
            for finding in &lint.findings {
                let tag = match finding.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warn ",
                    Severity::Note => "note ",
                };
                println!("  [{tag}] {}: {}", finding.code, finding.message);
            }
        }
        if lint.has_errors() {
            failed.push(name.clone());
        }
    }
    if !failed.is_empty() {
        return Err(format!("lint failed for: {}", failed.join(", ")));
    }
    Ok(())
}

/// One finding as a single-line JSON object (JSON Lines output for
/// `lint --json`). The message text never contains `"` or `\`, but the
/// escape keeps the output well-formed regardless.
fn finding_json(contract: &str, finding: &dmvcc_analysis::Finding) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let severity = match finding.severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Note => "note",
    };
    let pc = match finding.pc {
        Some(pc) => pc.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"contract\":\"{}\",\"severity\":\"{severity}\",\"code\":\"{}\",\"pc\":{pc},\"message\":\"{}\"}}",
        escape(contract),
        escape(finding.code),
        escape(&finding.message)
    )
}

fn workload_from(parsed: &ParsedArgs) -> Result<WorkloadConfig, String> {
    let seed = parsed.get_or("seed", 42u64)?;
    Ok(if parsed.has("hot") {
        WorkloadConfig::high_contention(seed)
    } else {
        WorkloadConfig::ethereum_mix(seed)
    })
}

fn cmd_run(parsed: &ParsedArgs) -> Result<(), String> {
    let blocks = parsed.get_or("blocks", 2usize)?;
    let size = parsed.get_or("size", 500usize)?;
    // Default to one simulated thread per logical CPU (what the threaded
    // executor would use), overridable with --threads.
    let threads = parsed.get_or("threads", dmvcc_core::ParallelConfig::default().threads)?;
    let scheduler: String = parsed.get_or("scheduler", "all".to_string())?;

    let mut generator = WorkloadGenerator::new(workload_from(parsed)?);
    let analyzer = Analyzer::new(generator.registry().clone());
    let mut snapshot = Snapshot::from_entries(generator.genesis_entries());

    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "block", "txs", "gas", "scheduler", "speedup", "aborts"
    );
    for height in 1..=blocks as u64 {
        let txs = generator.block(size);
        let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let csags = build_csags(&txs, &snapshot, &analyzer, &env);
        let report = |label: &str, r: dmvcc_core::SimReport| {
            println!(
                "{height:>6} {:>10} {:>10} {label:>12} {:>9.2}x {:>8}",
                txs.len(),
                trace.total_gas,
                r.speedup(),
                r.aborts
            );
        };
        match scheduler.as_str() {
            "serial" => report("serial", dmvcc_baselines::serial_report(&trace)),
            "dag" => report("dag", simulate_dag(&trace, threads)),
            "occ" => report("occ", simulate_occ(&trace, threads)),
            "dmvcc" => report(
                "dmvcc",
                simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads)),
            ),
            "all" => {
                report("dag", simulate_dag(&trace, threads));
                report("occ", simulate_occ(&trace, threads));
                report(
                    "dmvcc",
                    simulate_dmvcc(&trace, &csags, &DmvccConfig::new(threads)),
                );
            }
            other => return Err(format!("unknown scheduler `{other}`")),
        }
        snapshot = snapshot.apply(&trace.final_writes);
    }
    Ok(())
}

fn cmd_chain(parsed: &ParsedArgs) -> Result<(), String> {
    let scheduler = match parsed.get_or("scheduler", "dmvcc".to_string())?.as_str() {
        "serial" => SchedulerKind::Serial,
        "dag" => SchedulerKind::Dag,
        "occ" => SchedulerKind::Occ,
        "dmvcc" => SchedulerKind::Dmvcc,
        other => return Err(format!("unknown scheduler `{other}`")),
    };
    let policy_name: String = parsed.get_or("policy", "critical-path".to_string())?;
    let policy = dmvcc_core::SchedulerPolicy::parse(&policy_name)
        .ok_or_else(|| format!("unknown policy `{policy_name}` (fifo | critical-path)"))?;
    let executor_name: String = parsed.get_or("executor", "sharded".to_string())?;
    let executor = ExecutorKind::parse(&executor_name)
        .ok_or_else(|| format!("unknown executor `{executor_name}` (sharded | stm | hybrid)"))?;
    let backend_name: String = parsed.get_or("backend", "mem".to_string())?;
    let backend = BackendKind::parse(&backend_name)
        .ok_or_else(|| format!("unknown backend `{backend_name}` (mem | lsm)"))?;
    let config = ChainConfig {
        validators: parsed.get_or("validators", 4usize)?,
        block_size: parsed.get_or("size", 500usize)?,
        mining_interval_secs: parsed.get_or("interval", 1.0f64)?,
        threads: parsed.get_or("threads", 8usize)?,
        scheduler,
        blocks: parsed.get_or("blocks", 3usize)?,
        gas_per_second: 4_000_000,
        workload: workload_from(parsed)?,
        crosscheck_every: 0,
        pool_miss_rate: parsed.get_or("miss-rate", 0.0f64)?,
        rebuild_missing_sags: true,
        policy,
        pipeline: parsed.has("pipeline"),
        executor,
        backend,
    };
    if config.pipeline {
        let report = run_pipelined_chain(&config);
        println!("policy             : {}", policy.label());
        println!("executor           : {}", executor.label());
        println!("backend            : {}", report.backend);
        println!("blocks             : {}", report.blocks);
        println!("transactions       : {}", report.committed_txs);
        println!("refine time        : {:.3}s", report.refine_seconds);
        println!("execute time       : {:.3}s", report.execute_seconds);
        println!(
            "refine overlapped  : {:.3}s ({:.0}% hidden)",
            report.overlap_seconds,
            report.overlap_fraction() * 100.0
        );
        println!(
            "root commit        : {:.3}s ({:.0}% off critical path)",
            report.commit_seconds,
            report.commit_hidden_fraction() * 100.0
        );
        println!("executor aborts    : {}", report.aborts);
        println!("roots consistent   : {}", report.roots_consistent);
        println!("final state root   : {}", report.final_root);
        if !report.roots_consistent {
            return Err("pipelined execution diverged from serial".into());
        }
        return Ok(());
    }
    let report = run_testnet(&config);
    println!("scheduler          : {}", scheduler.label());
    println!("executor           : {}", executor.label());
    println!("backend            : {}", backend.label());
    println!("blocks             : {}", report.blocks);
    println!("transactions       : {}", report.committed_txs);
    println!("execution time     : {:.2}s", report.execution_seconds);
    println!("chain time         : {:.2}s", report.total_seconds);
    println!("throughput         : {:.0} TPS", report.tps);
    println!("scheduler aborts   : {}", report.aborts);
    println!(
        "pool SAG cache     : {} hits / {} misses",
        report.pool_stats.sag_hits, report.pool_stats.sag_misses
    );
    println!("roots consistent   : {}", report.roots_consistent);
    println!("final state root   : {}", report.final_root);
    if !report.roots_consistent {
        return Err("validator roots diverged".into());
    }
    Ok(())
}

/// `dmvcc profile`: a flamegraph-friendly hot loop over the sharded
/// executor plus a hot-path counter breakdown.
///
/// The command prepares a few blocks once, verifies the executor against
/// the serial oracle, then spends its whole runtime re-executing the same
/// blocks — so `perf record dmvcc profile` (or any sampling profiler)
/// lands almost every sample in the executor's inner loop rather than in
/// setup. The printed counters are the raw-speed pass's bookkeeping:
/// shard-lock traffic, publish batching, and recycled-arena bytes.
fn cmd_profile(parsed: &ParsedArgs) -> Result<(), String> {
    let blocks = parsed.get_or("blocks", 3usize)?;
    let size = parsed.get_or("size", 200usize)?;
    let threads = parsed.get_or("threads", 1usize)?;
    let repeat = parsed.get_or("repeat", 20usize)?;
    let policy_name: String = parsed.get_or("policy", "critical-path".to_string())?;
    let policy = dmvcc_core::SchedulerPolicy::parse(&policy_name)
        .ok_or_else(|| format!("unknown policy `{policy_name}` (fifo | critical-path)"))?;

    let mut generator = WorkloadGenerator::new(workload_from(parsed)?);
    let analyzer = Analyzer::new(generator.registry().clone());
    let mut snapshot = Snapshot::from_entries(generator.genesis_entries());
    struct Prepared {
        txs: Vec<dmvcc_vm::Transaction>,
        snapshot: Snapshot,
        env: BlockEnv,
        expected: dmvcc_state::WriteSet,
    }
    let mut prepared = Vec::with_capacity(blocks);
    for height in 1..=blocks as u64 {
        let txs = generator.block(size);
        let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let next = snapshot.apply(&trace.final_writes);
        prepared.push(Prepared {
            txs,
            snapshot,
            env,
            expected: trace.final_writes,
        });
        snapshot = next;
    }

    let config = dmvcc_core::ParallelConfig {
        threads,
        max_attempts: 64,
        scheduler: policy,
        pin_cores: parsed.has("pin-cores"),
    };
    let executor = dmvcc_core::ParallelExecutor::new(analyzer, config);
    // Correctness check once, outside the profiled loop.
    for block in &prepared {
        let outcome = executor.execute_block(&block.txs, &block.snapshot, &block.env);
        if outcome.final_writes != block.expected {
            return Err("sharded executor diverged from serial".into());
        }
    }

    let mut stats = dmvcc_core::ExecutorStats::default();
    let mut aborts = 0u64;
    let mut txs = 0u64;
    let start = std::time::Instant::now();
    for _ in 0..repeat {
        for block in &prepared {
            let outcome = executor.execute_block(&block.txs, &block.snapshot, &block.env);
            txs += block.txs.len() as u64;
            aborts += outcome.aborts;
            stats.attempts += outcome.stats.attempts;
            stats.publishes += outcome.stats.publishes;
            stats.publish_batches += outcome.stats.publish_batches;
            stats.shard_lock_acquisitions += outcome.stats.shard_lock_acquisitions;
            stats.alloc_bytes_saved += outcome.stats.alloc_bytes_saved;
            stats.targeted_wakeups += outcome.stats.targeted_wakeups;
            stats.wakeups_avoided += outcome.stats.wakeups_avoided;
            stats.steals += outcome.stats.steals;
            stats.parks += outcome.stats.parks;
        }
    }
    let wall = start.elapsed().as_secs_f64();

    println!("policy                 : {}", policy.label());
    println!("threads                : {threads}");
    println!("core pinning           : {}", config.pin_cores);
    println!("profiled work          : {repeat} passes x {blocks} blocks x {size} txs");
    println!("wall time              : {wall:.3}s");
    println!("throughput             : {:.0} tx/s", txs as f64 / wall);
    println!(
        "attempts               : {} ({aborts} aborts)",
        stats.attempts
    );
    println!(
        "publishes              : {} in {} batches ({:.2} per shard lock)",
        stats.publishes,
        stats.publish_batches,
        stats.publishes as f64 / stats.publish_batches.max(1) as f64
    );
    println!("shard-lock acquisitions: {}", stats.shard_lock_acquisitions);
    println!(
        "arena bytes recycled   : {:.1} MiB",
        stats.alloc_bytes_saved as f64 / (1u64 << 20) as f64
    );
    println!(
        "wakeups                : {} targeted, {} avoided",
        stats.targeted_wakeups, stats.wakeups_avoided
    );
    println!(
        "steals / parks         : {} / {}",
        stats.steals, stats.parks
    );
    Ok(())
}
