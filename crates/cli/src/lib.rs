//! Command-line front end for the DMVCC reproduction.
//!
//! Subcommands (see `dmvcc help`):
//!
//! - `contracts` — list the built-in contract library;
//! - `analyze <contract>` — P-SAG summary and optional DOT export;
//! - `lint [<contract>…|--all]` — prediction-quality lint with stable
//!   exit codes (0 clean, 1 findings, 2 usage);
//! - `run` — execute generated blocks under a chosen scheduler and print
//!   speedups;
//! - `chain` — run the micro testnet and print throughput;
//! - `profile` — flamegraph-friendly hot loop over the sharded executor
//!   with a hot-path counter breakdown.
//!
//! Argument parsing is hand-rolled (the project's dependency policy keeps
//! the tree to the sanctioned crates); [`parse_args`] is pure and fully
//! unit-tested.

#![warn(missing_docs)]

use std::collections::HashMap;

/// A parsed command line: subcommand, positional arguments and `--key
/// value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` and `--flag` (value `"true"`) options.
    pub options: HashMap<String, String>,
}

impl ParsedArgs {
    /// Returns option `key` parsed as `T`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns a message when the option is present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{key}: `{raw}`")),
        }
    }

    /// `true` when `--key` was passed (with any value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }
}

/// Parses an argument vector (without the program name).
///
/// Rules: the first bare word is the subcommand; `--key value` pairs become
/// options; a `--flag` followed by another `--…` or the end is a boolean
/// flag; remaining bare words are positionals.
///
/// # Errors
///
/// Returns a message for a leading `--option` before any subcommand.
///
/// # Examples
///
/// ```
/// let parsed = dmvcc_cli::parse_args(&[
///     "run".into(), "--threads".into(), "8".into(), "--hot".into(),
/// ]).unwrap();
/// assert_eq!(parsed.command, "run");
/// assert_eq!(parsed.get_or("threads", 1usize).unwrap(), 8);
/// assert!(parsed.has("hot"));
/// ```
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, String> {
    let mut parsed = ParsedArgs::default();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if parsed.command.is_empty() {
                return Err(format!("option --{key} before a subcommand"));
            }
            let value = match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    iter.next().expect("peeked value exists").clone()
                }
                _ => "true".to_string(),
            };
            parsed.options.insert(key.to_string(), value);
        } else if parsed.command.is_empty() {
            parsed.command = arg.clone();
        } else {
            parsed.positional.push(arg.clone());
        }
    }
    if parsed.command.is_empty() {
        parsed.command = "help".to_string();
    }
    Ok(parsed)
}

/// The built-in contract library by name.
///
/// The call-bearing contracts (`router`, `router2`, `flash_mint`,
/// `oracle`) are parameterized over callee addresses at build time; here
/// they are bound to the fixture universe of [`fixture_registry`], so the
/// bytecode returned for them matches what that registry deploys.
pub fn contract_by_name(name: &str) -> Option<Vec<u8>> {
    use dmvcc_vm::contracts;
    Some(match name {
        "token" => contracts::token(),
        "counter" => contracts::counter(),
        "amm" => contracts::amm(),
        "nft" => contracts::nft(),
        "ballot" => contracts::ballot(),
        "fig1" => contracts::fig1_example(),
        "auction" => contracts::auction(),
        "crowdsale" => contracts::crowdsale(),
        "batch_pay" => contracts::batch_pay(),
        "airdrop" => contracts::airdrop(),
        "batch_transfer" => contracts::batch_transfer(),
        "router" => contracts::dex_router(fixture_address("amm").expect("amm fixture")),
        "router2" => contracts::dex_router2(
            fixture_address("amm").expect("amm fixture"),
            fixture_address("token").expect("token fixture"),
            fixture_token_b(),
        ),
        "flash_mint" => contracts::flash_mint(fixture_address("token").expect("token fixture")),
        "oracle" => contracts::oracle(&[
            fixture_address("price_consumer").expect("consumer fixture"),
            fixture_consumer_b(),
        ]),
        "price_consumer" => contracts::price_consumer(),
        "royalty_splitter" => contracts::royalty_splitter(),
        "nft_drop" => contracts::nft_drop(
            fixture_address("royalty_splitter").expect("splitter fixture"),
            fixture_address("floor_oracle").expect("floor fixture"),
        ),
        "floor_oracle" => contracts::floor_oracle(),
        _ => return None,
    })
}

/// Names of the built-in contracts.
pub const CONTRACT_NAMES: [&str; 19] = [
    "token",
    "counter",
    "amm",
    "nft",
    "ballot",
    "fig1",
    "auction",
    "crowdsale",
    "batch_pay",
    "airdrop",
    "batch_transfer",
    "router",
    "router2",
    "flash_mint",
    "oracle",
    "price_consumer",
    "royalty_splitter",
    "nft_drop",
    "floor_oracle",
];

/// The fixture address each named library contract deploys at in
/// [`fixture_registry`]; `None` for unknown names.
pub fn fixture_address(name: &str) -> Option<dmvcc_primitives::Address> {
    CONTRACT_NAMES
        .iter()
        .position(|&n| n == name)
        .map(|i| dmvcc_primitives::Address::from_u64(9_000 + i as u64))
}

/// A second token the fixture `router2` swaps into (same `token` code,
/// its own address — a swap must touch two distinct token contracts).
fn fixture_token_b() -> dmvcc_primitives::Address {
    dmvcc_primitives::Address::from_u64(9_100)
}

/// A second price consumer so the fixture `oracle` fans out to more than
/// one subscriber.
fn fixture_consumer_b() -> dmvcc_primitives::Address {
    dmvcc_primitives::Address::from_u64(9_101)
}

/// Deploys the whole library at its fixture addresses (plus the second
/// token and consumer the parameterized contracts are bound to), so
/// `analyze` and `lint` can resolve cross-contract `CALL` targets.
pub fn fixture_registry() -> dmvcc_vm::CodeRegistry {
    let mut builder = dmvcc_vm::CodeRegistry::builder();
    for name in CONTRACT_NAMES {
        let code = contract_by_name(name).expect("listed contracts exist");
        builder = builder.deploy(fixture_address(name).expect("listed fixture"), code);
    }
    builder
        .deploy(fixture_token_b(), dmvcc_vm::contracts::token())
        .deploy(fixture_consumer_b(), dmvcc_vm::contracts::price_consumer())
        .build()
}

/// Usage text.
pub const USAGE: &str = "\
dmvcc — deterministic multi-version concurrency control, reproduced

USAGE:
  dmvcc contracts
      List the built-in contract library.
  dmvcc analyze <contract> [--dot FILE]
      Print the P-SAG summary of a library contract; optionally write
      Graphviz DOT.
  dmvcc lint [<contract>…|--all] [--json]
      Check prediction quality of library contracts: unresolved keys,
      missing release points, unbounded blocks, unbounded or
      irreducible loops, non-commutable increments, call-site
      bailouts (unanalyzable-call-target, recursive-call,
      call-depth-bailout), and call-family findings
      (staticcall-writes, value-call-unbounded-recipient,
      dynamic-dispatch-unbounded, delegatecall-into-selfdestruct-free)
      against the fixture call graph. --json emits one finding object
      per line (contract, severity, code, pc, message). Exits nonzero
      when any contract has lint errors.
  dmvcc run [--hot] [--blocks N] [--size M] [--threads T]
            [--scheduler serial|dag|occ|dmvcc|all] [--seed S]
      Generate blocks and report scheduler speedups (virtual time).
  dmvcc chain [--hot] [--blocks N] [--size M] [--threads T]
              [--scheduler serial|dag|occ|dmvcc] [--interval SECS]
              [--policy fifo|critical-path] [--pipeline]
              [--executor sharded|stm|hybrid] [--backend mem|lsm]
      Run the micro testnet and report throughput. --policy picks the
      threaded executor's ready-queue order; --pipeline executes blocks
      on the real executor with C-SAG refinement overlapped one block
      ahead and reports the refine/execute overlap plus the fraction of
      root hashing hidden off the critical path; --executor picks the
      real threaded engine (predictive sharded, optimistic Block-STM, or
      the hybrid router) behind cross-checks and the pipelined path;
      --backend picks the persistent state store the chain commits to
      (in-memory versioned map or the log-structured on-disk store).
  dmvcc profile [--hot] [--blocks N] [--size M] [--threads T]
                [--repeat R] [--policy fifo|critical-path] [--pin-cores]
                [--seed S]
      Re-execute the same prepared blocks on the sharded executor in a
      tight loop (flamegraph-friendly: samples land in the hot path, not
      in setup) and print the hot-path counters — shard-lock
      acquisitions, publish batching, recycled-arena bytes, wakeups.
  dmvcc help
      Show this message.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_is_help() {
        let parsed = parse_args(&[]).unwrap();
        assert_eq!(parsed.command, "help");
    }

    #[test]
    fn subcommand_with_options_and_positionals() {
        let parsed = parse_args(&strs(&[
            "analyze",
            "token",
            "--dot",
            "out.dot",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(parsed.command, "analyze");
        assert_eq!(parsed.positional, vec!["token"]);
        assert_eq!(parsed.options.get("dot").unwrap(), "out.dot");
        assert!(parsed.has("verbose"));
        assert!(!parsed.has("quiet"));
    }

    #[test]
    fn flag_before_subcommand_rejected() {
        assert!(parse_args(&strs(&["--threads", "8", "run"])).is_err());
    }

    #[test]
    fn typed_option_access() {
        let parsed = parse_args(&strs(&["run", "--threads", "8"])).unwrap();
        assert_eq!(parsed.get_or("threads", 1usize).unwrap(), 8);
        assert_eq!(parsed.get_or("blocks", 4usize).unwrap(), 4);
        let parsed = parse_args(&strs(&["run", "--threads", "lots"])).unwrap();
        assert!(parsed.get_or("threads", 1usize).is_err());
    }

    #[test]
    fn boolean_flag_followed_by_option() {
        let parsed = parse_args(&strs(&["run", "--hot", "--threads", "4"])).unwrap();
        assert!(parsed.has("hot"));
        assert_eq!(parsed.get_or("threads", 1usize).unwrap(), 4);
    }

    #[test]
    fn all_library_contracts_resolve() {
        for name in CONTRACT_NAMES {
            assert!(contract_by_name(name).is_some(), "{name} missing");
        }
        assert!(contract_by_name("nope").is_none());
    }

    #[test]
    fn fixture_registry_deploys_every_contract() {
        let registry = fixture_registry();
        for name in CONTRACT_NAMES {
            let addr = fixture_address(name).expect("listed fixture");
            assert!(registry.code(&addr).is_some(), "{name} not deployed");
        }
        assert!(fixture_address("nope").is_none());
    }

    #[test]
    fn fixture_call_sites_all_summarizable() {
        // The registry binding is coherent: every CALL site in the fixture
        // universe resolves to deployed code and summarizes.
        let registry = fixture_registry();
        let graph = dmvcc_analysis::CallGraph::build(&registry);
        for name in [
            "router",
            "router2",
            "flash_mint",
            "oracle",
            "nft_drop",
            "royalty_splitter",
        ] {
            let verdict = &graph.verdicts[&fixture_address(name).unwrap()];
            assert!(verdict.summarizable, "{name}: {:?}", verdict.sites);
            assert!(!verdict.sites.is_empty(), "{name} has no call sites");
        }
        // The floor oracle carries the write-freedom proof the drop's
        // STATICCALL site relies on.
        assert!(graph.verdicts[&fixture_address("floor_oracle").unwrap()].write_free);
    }
}
