//! The DMVCC scheduler, evaluated in virtual time.
//!
//! Implements the paper's scheduling semantics (Algorithms 1–4) over the
//! reference traces of [`crate::execute_block_serial`]:
//!
//! - **Queue admission** (Algorithm 1): a transaction becomes ready once
//!   every *predicted* version it reads has been published by its writer.
//! - **Write versioning** (Algorithm 3): write-write overlaps impose no
//!   ordering (toggle: [`DmvccConfig::write_versioning`]).
//! - **Early-write visibility** (Algorithm 2): a version is published when
//!   the writer passes its release point (and the key's last write), not at
//!   transaction end (toggle: [`DmvccConfig::early_write`]).
//! - **Commutative writes** (§IV-D): ω̄ increments neither wait for nor
//!   serialize against each other (toggle: [`DmvccConfig::commutative`]).
//! - **Aborts** (Algorithm 4): a read that consumed a version which a
//!   mispredicted (or re-executed) writer later replaces is stale; the
//!   reader re-executes, cascading to its own readers.
//!
//! Timing uses gas as virtual time; the final state is by construction the
//! serial state (deterministic serializability — the traces *are* the
//! serial execution), which mirrors the paper's Theorem 1 guarantee. What
//! this module computes is the schedule: makespan, abort counts, speedups.

use std::collections::HashMap;

use dmvcc_state::StateKey;

use dmvcc_analysis::CSag;

use crate::oracle::BlockTrace;
use crate::sim::{SimReport, ThreadTimeline};

/// Configuration of the DMVCC virtual-time scheduler.
#[derive(Debug, Clone, Copy)]
pub struct DmvccConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Publish versions at release points instead of transaction end.
    pub early_write: bool,
    /// Treat ω̄ increments as commutative (off: they become
    /// read-modify-writes that chain on the key).
    pub commutative: bool,
    /// Eliminate write-write conflicts by versioning (off: writers of a key
    /// serialize, as in the DAG baseline).
    pub write_versioning: bool,
    /// Hard cap on re-executions per transaction (safety bound; the
    /// protocol converges far earlier).
    pub max_attempts: u32,
}

impl DmvccConfig {
    /// Full DMVCC with all features, on `threads` workers.
    pub fn new(threads: usize) -> Self {
        DmvccConfig {
            threads,
            early_write: true,
            commutative: true,
            write_versioning: true,
            max_attempts: 16,
        }
    }
}

impl Default for DmvccConfig {
    fn default() -> Self {
        DmvccConfig::new(8)
    }
}

#[derive(Debug, Clone)]
struct ScheduledTx {
    start: u64,
    finish: u64,
    /// (gas_offset, accumulated stall before this offset) steps, sorted.
    stalls: Vec<(u64, u64)>,
    attempts: u32,
    /// `true` once re-executed (its versions moved; predicted readers of
    /// the old version are stale — cascade).
    reexecuted: bool,
}

impl ScheduledTx {
    fn stall_before(&self, offset: u64) -> u64 {
        self.stalls
            .iter()
            .take_while(|&&(at, _)| at <= offset)
            .last()
            .map(|&(_, total)| total)
            .unwrap_or(0)
    }

    /// Wall-clock instant of an intra-transaction gas offset.
    fn instant(&self, offset: u64) -> u64 {
        self.start + offset + self.stall_before(offset)
    }
}

/// Simulates DMVCC over a block's reference trace and predictions.
///
/// `csags[i]` must be the C-SAG of `trace.txs[i]`.
///
/// # Panics
///
/// Panics if `csags.len() != trace.txs.len()`.
pub fn simulate_dmvcc(trace: &BlockTrace, csags: &[CSag], config: &DmvccConfig) -> SimReport {
    assert_eq!(
        csags.len(),
        trace.txs.len(),
        "one C-SAG per transaction required"
    );
    let n = trace.txs.len();
    let mut timeline = ThreadTimeline::new(config.threads);

    // Predicted read-like / write-like key sets per transaction.
    let readlike: Vec<Vec<StateKey>> = csags
        .iter()
        .map(|c| {
            let mut keys: Vec<StateKey> = c.reads.iter().copied().collect();
            if !config.commutative {
                keys.extend(c.adds.iter().copied());
            }
            keys
        })
        .collect();
    let writelike: Vec<Vec<StateKey>> = csags
        .iter()
        .map(|c| c.writes.union(&c.adds).copied().collect())
        .collect();
    let is_pred_writer =
        |i: usize, k: &StateKey| csags[i].writes.contains(k) || csags[i].adds.contains(k);

    // Publication instant of tx i's version of key k, given its schedule.
    let publish_instant = |i: usize, k: &StateKey, sched: &ScheduledTx| -> u64 {
        let tx = &trace.txs[i];
        if !tx.writes_key(k) || !tx.status.is_success() {
            // Never materializes: predicted readers are unblocked when the
            // transaction finishes and its entries are dropped.
            return sched.finish;
        }
        if config.early_write {
            match tx.publish_offset(k) {
                Some(offset) => sched.instant(offset),
                None => sched.finish,
            }
        } else {
            sched.finish
        }
    };

    // Running max, per key, of the publication instants of all *predicted*
    // writers scheduled so far (readers must wait for base + all deltas).
    let mut dep_max: HashMap<StateKey, u64> = HashMap::new();
    let mut schedules: Vec<ScheduledTx> = Vec::with_capacity(n);

    for j in 0..n {
        let cost = trace.txs[j].gas_used;
        let mut ready = 0u64;
        for k in &readlike[j] {
            if let Some(&t) = dep_max.get(k) {
                ready = ready.max(t);
            }
        }
        if !config.write_versioning {
            for k in &writelike[j] {
                if let Some(&t) = dep_max.get(k) {
                    ready = ready.max(t);
                }
            }
        }
        let (start, _) = timeline.schedule(ready, cost);

        // Mid-flight blocking: an *unpredicted* read of a key some earlier
        // transaction predicted writing finds a pending entry in the access
        // sequence and waits there (this is how missing-SAG transactions
        // stay correct without aborting).
        let readlike_set: std::collections::BTreeSet<_> = readlike[j].iter().copied().collect();
        let mut stalls: Vec<(u64, u64)> = Vec::new();
        let mut total_stall = 0u64;
        let mut reads: Vec<_> = trace.txs[j].reads.clone();
        reads.sort_by_key(|r| r.gas_offset);
        for read in &reads {
            if readlike_set.contains(&read.key) {
                continue; // queue admission already waited
            }
            let Some(&avail) = dep_max.get(&read.key) else {
                continue;
            };
            let read_instant = start + read.gas_offset + total_stall;
            if avail > read_instant {
                total_stall += avail - read_instant;
                stalls.push((read.gas_offset, total_stall));
            }
        }
        let finish = start + cost + total_stall;
        let sched = ScheduledTx {
            start,
            finish,
            stalls,
            attempts: 1,
            reexecuted: false,
        };
        // Publish: update dep_max for every predicted write-like key.
        for k in &writelike[j] {
            let t = publish_instant(j, k, &sched);
            let entry = dep_max.entry(*k).or_insert(0);
            *entry = (*entry).max(t);
        }
        schedules.push(sched);
    }

    // Abort pass: detect stale reads (unpredicted writers, or re-executed
    // predicted writers) and re-execute readers, cascading upward in index
    // order.
    let mut aborts = 0u64;
    loop {
        let mut victim: Option<(usize, u64)> = None;
        'scan: for j in 0..n {
            if schedules[j].attempts >= config.max_attempts {
                continue;
            }
            for read in &trace.txs[j].reads {
                for &i in &read.sources {
                    let waited = is_pred_writer(i, &read.key) && !schedules[i].reexecuted;
                    if waited {
                        continue;
                    }
                    let pub_t = publish_instant(i, &read.key, &schedules[i]);
                    let read_t = schedules[j].instant(read.gas_offset);
                    if read_t < pub_t {
                        victim = Some((j, pub_t));
                        break 'scan;
                    }
                }
            }
        }
        let Some((j, detection)) = victim else { break };
        aborts += 1;
        // Re-execution: ready once every true dependency is published and
        // the staleness was detected.
        let mut ready = detection;
        for read in &trace.txs[j].reads {
            for &i in &read.sources {
                ready = ready.max(publish_instant(i, &read.key, &schedules[i]));
            }
        }
        let cost = trace.txs[j].gas_used;
        let (start, finish) = timeline.schedule(ready, cost);
        let attempts = schedules[j].attempts + 1;
        schedules[j] = ScheduledTx {
            start,
            finish,
            stalls: Vec::new(),
            attempts,
            reexecuted: true,
        };
    }

    // A re-executed writer's predicted readers were handled by the cascade
    // above (reexecuted ⇒ not "waited"). Makespan = last finish.
    let makespan = schedules.iter().map(|s| s.finish).max().unwrap_or(0);
    let busy_gas: u64 = trace
        .txs
        .iter()
        .zip(&schedules)
        .map(|(t, s)| t.gas_used * s.attempts as u64)
        .sum();
    SimReport {
        threads: config.threads,
        makespan,
        serial_cost: trace.total_gas,
        aborts,
        attempts: n as u64 + aborts,
        busy_gas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{build_csags, execute_block_serial};
    use dmvcc_analysis::{AnalysisConfig, Analyzer};
    use dmvcc_primitives::{Address, U256};
    use dmvcc_state::Snapshot;
    use dmvcc_vm::{calldata, contracts, BlockEnv, CodeRegistry, Transaction, TxEnv};

    const TOKEN: u64 = 700;
    const COUNTER: u64 = 701;

    fn registry() -> CodeRegistry {
        CodeRegistry::builder()
            .deploy(Address::from_u64(TOKEN), contracts::token())
            .deploy(Address::from_u64(COUNTER), contracts::counter())
            .build()
    }

    fn analyzer() -> Analyzer {
        Analyzer::new(registry())
    }

    fn mint(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::MINT,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn transfer(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::TRANSFER,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn increment_checked(caller: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(COUNTER),
            calldata(contracts::counter_fn::INCREMENT_CHECKED, &[]),
        ))
    }

    fn increment(caller: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(COUNTER),
            calldata(contracts::counter_fn::INCREMENT, &[]),
        ))
    }

    fn run(txs: &[Transaction], config: &DmvccConfig) -> (SimReport, crate::oracle::BlockTrace) {
        let a = analyzer();
        let snapshot = Snapshot::empty();
        let block_env = BlockEnv::default();
        let trace = execute_block_serial(txs, &snapshot, &a, &block_env);
        let csags = build_csags(txs, &snapshot, &a, &block_env);
        let report = simulate_dmvcc(&trace, &csags, config);
        (report, trace)
    }

    #[test]
    fn independent_txs_scale_linearly() {
        // 8 mints to distinct accounts on 8 threads: near-perfect speedup.
        let txs: Vec<_> = (0..8).map(|i| mint(900 + i, 10 + i, 5)).collect();
        let (report, trace) = run(&txs, &DmvccConfig::new(8));
        assert_eq!(report.aborts, 0);
        let max_cost = trace.txs.iter().map(|t| t.gas_used).max().unwrap();
        assert_eq!(report.makespan, max_cost);
        assert!(report.speedup() > 7.0);
    }

    #[test]
    fn serial_chain_gets_no_speedup_without_features() {
        // increment_checked chains: each reads the previous write.
        let txs: Vec<_> = (0..6).map(|i| increment_checked(900 + i)).collect();
        let mut config = DmvccConfig::new(8);
        config.early_write = false;
        let (report, _) = run(&txs, &config);
        // Fully serialized: makespan equals serial cost.
        assert_eq!(report.makespan, report.serial_cost);
        assert_eq!(report.aborts, 0);
    }

    #[test]
    fn early_write_shortens_rmw_chain() {
        let txs: Vec<_> = (0..6).map(|i| increment_checked(900 + i)).collect();
        let mut no_early = DmvccConfig::new(8);
        no_early.early_write = false;
        let (slow, _) = run(&txs, &no_early);
        let (fast, _) = run(&txs, &DmvccConfig::new(8));
        // The counter RMW writes at the very end of the body, so early
        // visibility publishes at the write offset — which is still before
        // the STOP dispatch epilogue; gains are modest but strictly
        // positive.
        assert!(
            fast.makespan <= slow.makespan,
            "early write must not slow down: {} vs {}",
            fast.makespan,
            slow.makespan
        );
    }

    #[test]
    fn commutative_increments_run_parallel() {
        let txs: Vec<_> = (0..8).map(|i| increment(900 + i)).collect();
        let (fast, _) = run(&txs, &DmvccConfig::new(8));
        assert_eq!(fast.aborts, 0);
        assert!(fast.speedup() > 7.0, "speedup {}", fast.speedup());

        let mut no_commut = DmvccConfig::new(8);
        no_commut.commutative = false;
        let (slow, _) = run(&txs, &no_commut);
        assert!(
            slow.makespan > fast.makespan,
            "disabling commutativity must serialize the adds"
        );
    }

    #[test]
    fn write_versioning_removes_ww_ordering() {
        // Several transfers from distinct senders to the same recipient:
        // with commutativity ON they are adds anyway, so test pure writes:
        // distinct sender balances (no conflicts) but same-recipient SADDs
        // collapse under !write_versioning && !commutative.
        let txs: Vec<_> = (0..6).map(|i| mint(900 + i, 42, 5)).collect();
        let mut strict = DmvccConfig::new(8);
        strict.write_versioning = false;
        strict.commutative = false;
        let (slow, _) = run(&txs, &strict);
        let (fast, _) = run(&txs, &DmvccConfig::new(8));
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn predicted_dependency_orders_transactions() {
        // mint then transfer of the minted funds: transfer must wait.
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30)];
        let (report, trace) = run(&txs, &DmvccConfig::new(8));
        assert_eq!(report.aborts, 0);
        // Makespan exceeds the longest single tx: there is a real chain.
        let max_cost = trace.txs.iter().map(|t| t.gas_used).max().unwrap();
        assert!(report.makespan > max_cost);
        // But thanks to early visibility it is less than full serial.
        assert!(report.makespan < report.serial_cost);
    }

    #[test]
    fn hidden_writes_cause_aborts_and_still_terminate() {
        // Hide all analysis: every dependency becomes a stale-read abort,
        // the scheduler degrades to OCC-style re-execution.
        let a = Analyzer::with_config(
            registry(),
            AnalysisConfig {
                hide_fraction: 1.0,
                seed: 3,
                ..Default::default()
            },
        );
        let snapshot = Snapshot::empty();
        let block_env = BlockEnv::default();
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30), transfer(2, 3, 10)];
        let trace = execute_block_serial(&txs, &snapshot, &a, &block_env);
        let csags = build_csags(&txs, &snapshot, &a, &block_env);
        let report = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(4));
        assert!(report.aborts > 0, "hidden deps must abort");
        assert_eq!(report.attempts, 3 + report.aborts);
    }

    #[test]
    fn makespan_never_below_critical_path_or_above_serial() {
        let txs = vec![
            mint(900, 1, 100),
            transfer(1, 2, 30),
            transfer(2, 3, 10),
            mint(901, 5, 7),
            increment(902),
            increment(903),
        ];
        for threads in [1, 2, 4, 8, 32] {
            let (report, trace) = run(&txs, &DmvccConfig::new(threads));
            let max_cost = trace.txs.iter().map(|t| t.gas_used).max().unwrap();
            assert!(report.makespan >= max_cost);
            assert!(report.makespan <= report.serial_cost);
        }
    }

    #[test]
    fn one_thread_equals_serial() {
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30), increment(901)];
        let (report, _) = run(&txs, &DmvccConfig::new(1));
        assert_eq!(report.makespan, report.serial_cost);
        assert!((report.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_threads_never_slower() {
        let txs: Vec<_> = (0..16)
            .map(|i| {
                if i % 3 == 0 {
                    mint(900 + i, 50 + i, 5)
                } else {
                    increment(900 + i)
                }
            })
            .collect();
        let mut last = u64::MAX;
        for threads in [1, 2, 4, 8, 16] {
            let (report, _) = run(&txs, &DmvccConfig::new(threads));
            assert!(report.makespan <= last);
            last = report.makespan;
        }
    }

    #[test]
    #[should_panic(expected = "one C-SAG per transaction")]
    fn mismatched_inputs_panic() {
        let (_, trace) = run(&[mint(900, 1, 5)], &DmvccConfig::new(2));
        simulate_dmvcc(&trace, &[], &DmvccConfig::new(2));
    }
}
