//! The sharded multi-threaded DMVCC executor.
//!
//! Where [`crate::simulate_dmvcc`] evaluates the schedule in virtual time,
//! this module actually runs the protocol concurrently: worker threads pop
//! ready transactions (Algorithm 1), execute them on shared access
//! sequences with per-version blocking reads, publish writes at release
//! points (Algorithm 2) via write versioning (Algorithm 3), and abort and
//! re-execute stale readers with cascades (Algorithm 4).
//!
//! This is the second-generation executor. The first generation — kept as
//! [`crate::GlobalLockParallelExecutor`] — funnels every sequence access
//! through one mutex and wakes every sleeper on every publish. Here the
//! synchronization is decomposed along the state it actually protects:
//!
//! - **Sharded sequences** ([`crate::ShardedSequences`]): access sequences
//!   live in hash-addressed shards, each behind its own lock, so
//!   transactions over disjoint keys never contend.
//! - **Targeted wakeups**: each shard keeps a reverse waiter index
//!   (key → blocked readers); a publish drains and signals exactly the
//!   transactions waiting on that key via their per-transaction event
//!   instead of broadcasting on a global condvar.
//! - **Work-stealing ready queue**: admitted transactions go to the
//!   admitting worker's own `crossbeam` deque (or a shared injector from
//!   outside worker context); idle workers steal.
//! - **Per-transaction cores**: the scheduling state of a transaction
//!   (phase, attempt count, touched/published keys) sits behind its own
//!   small mutex, with the abort generation as an atomic for cheap
//!   staleness checks.
//!
//! Lock discipline: a thread holds at most one shard lock and at most one
//! transaction core lock at a time, and never acquires one kind while
//! holding the other (effects are staged and applied after unlocking).
//! Every timed wait carries a timeout backstop, so a missed wakeup costs
//! latency, never progress.
//!
//! Correctness oracle: for any interleaving, the committed write set equals
//! the serial execution's (Theorem 1) — integration tests compare Merkle
//! roots over randomized workloads.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

use dmvcc_primitives::U256;
use dmvcc_state::{KeyId, KeyInterner, Snapshot, StateKey, WriteSet};
use dmvcc_vm::{execute, BlockEnv, ExecParams, ExecStatus, Host, HostError, Transaction, TxKind};

use dmvcc_analysis::{Analyzer, CSag};

use crate::access::{AccessOp, FastResolution, VersionWriteEffect};
use crate::arena::{IdSet, SmallMap};
use crate::hook::SchedHook;
use crate::rank::{BlockDag, SchedulerPolicy, NUM_LANES};
use crate::sharded::{ShardStorage, ShardedSequences, DEFAULT_SHARDS};

/// Backstop for a read blocked on a pending version: the waiter is signaled
/// by the publisher, so this only bounds the cost of a (theoretically
/// impossible, practically paranoid) missed wakeup.
const BLOCKED_PARK: Duration = Duration::from_millis(1);

/// Backstop for an idle worker with nothing to run or steal.
const IDLE_PARK: Duration = Duration::from_millis(1);

/// Consecutive signal-free park timeouts a blocked read tolerates before
/// the deadlock breaker aborts it (see the breaker comment in `sload`).
const STUCK_PARKS: u32 = 3;

/// Configuration of the threaded executor.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of OS worker threads.
    pub threads: usize,
    /// Hard cap on attempts per transaction (the protocol converges long
    /// before; this guards against bugs, not livelock).
    pub max_attempts: u32,
    /// Ready-queue ordering policy (critical-path rank order by default;
    /// `Fifo` restores the original arrival-order deques).
    pub scheduler: SchedulerPolicy,
    /// Pin worker `i` to CPU core `i % cores` (Linux `sched_setaffinity`;
    /// no-op elsewhere). Off by default: pinning helps when workers own
    /// their shards' cache lines, hurts when the machine is shared.
    pub pin_cores: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        // One worker per logical CPU. `available_parallelism` can fail
        // (exotic platforms, restricted sandboxes); fall back to 4, the
        // paper's smallest evaluated thread count, rather than guessing
        // higher on a machine we know nothing about.
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ParallelConfig {
            threads,
            max_attempts: 64,
            scheduler: SchedulerPolicy::default(),
            pin_cores: false,
        }
    }
}

/// Counters describing how a parallel execution actually behaved, surfaced
/// through [`ParallelOutcome::stats`]. All counters are per-block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Execution attempts across all transactions (≥ block size; the
    /// excess is re-execution work caused by aborts).
    pub attempts: u64,
    /// Versions made visible in the access sequences.
    pub publishes: u64,
    /// Waiters signaled individually through the reverse waiter index.
    pub targeted_wakeups: u64,
    /// Publishes that found no waiter on the key — each one is a
    /// `notify_all` the global-lock executor would have issued for nothing.
    pub wakeups_avoided: u64,
    /// Global condvar broadcasts (only the global-lock executor has these).
    pub broadcast_wakeups: u64,
    /// Ready-queue entries obtained by stealing from another worker.
    pub steals: u64,
    /// Times a worker went to sleep (idle or blocked on a read).
    pub parks: u64,
    /// C-SAGs refined by the symbolic binding fast tier (no speculative
    /// pre-execution was needed).
    pub symbolic_bindings: u64,
    /// C-SAGs bound symbolically *through a loop*: the binder unrolled one
    /// or more summarized loops at bind time instead of speculating.
    pub loop_summarized_bindings: u64,
    /// C-SAGs bound symbolically *through one or more cross-contract
    /// calls*: the binder substituted callee summaries at bind time
    /// instead of speculating.
    pub interprocedural_bindings: u64,
    /// C-SAGs bound symbolically through a *bounded dynamic dispatch*
    /// site: the call target was loaded from a registry slot, the binder
    /// resolved it against the snapshot, and the bind stayed
    /// non-speculative.
    pub bounded_dynamic_bindings: u64,
    /// Code-hash summary-memo hits during this block's refinement: P-SAG
    /// summaries reused across deployments sharing one bytecode body
    /// (zero when the block was executed with precomputed C-SAGs).
    pub summary_cache_hits: u64,
    /// C-SAGs that fell back to speculative pre-execution.
    pub speculative_fallbacks: u64,
    /// Gas of the block's heaviest predicted dependency chain (the max
    /// [`crate::BlockDag`] rank): no schedule finishes in less virtual
    /// time.
    pub critical_path_gas: u64,
    /// Sum of predicted gas over the block (the numerator of
    /// [`ExecutorStats::speedup_bound`]).
    pub predicted_gas: u64,
    /// Valid dequeues that ran a transaction while a strictly
    /// higher-priority lane still held entries — how far the actual
    /// dispatch order strayed from rank order (FIFO accumulates these;
    /// critical-path dispatch keeps them near zero).
    pub rank_inversions: u64,
    /// Wall-clock nanoseconds spent refining the block's C-SAGs
    /// (`execute_block` only; zero when precomputed C-SAGs are supplied).
    pub refine_nanos: u64,
    /// Heap bytes served from the block arena's recycled pools (shard
    /// storage, per-tx scheduling state) instead of the allocator. Zero for
    /// the first block an executor runs; the steady state recycles nearly
    /// everything.
    pub alloc_bytes_saved: u64,
    /// Shard mutex acquisitions across the block — the contention surface
    /// batched publishing shrinks.
    pub shard_lock_acquisitions: u64,
    /// Shard-lock grabs that served a publish/drop batch (each batch covers
    /// every batched key mapping to that shard; `publishes /
    /// publish_batches` is the per-lock amortization).
    pub publish_batches: u64,
    /// Read-set validations performed at commit turns (optimistic/STM
    /// executor only; one per committed transaction).
    pub validations: u64,
    /// Validations that found a stale read and forced a commit-turn
    /// re-execution (optimistic/STM executor only).
    pub validation_failures: u64,
    /// Transactions executed on the optimistic path: every transaction for
    /// the STM executor, the routed (speculative-fallback or unanalyzable)
    /// subset for the hybrid dispatcher, zero for the purely predictive
    /// executors.
    pub optimistic_txs: u64,
}

impl ExecutorStats {
    /// Upper bound on achievable speedup for the executed block: total
    /// predicted gas over critical-path gas (1.0 when unknown).
    pub fn speedup_bound(&self) -> f64 {
        if self.critical_path_gas == 0 {
            1.0
        } else {
            self.predicted_gas as f64 / self.critical_path_gas as f64
        }
    }
}

/// Counts how each block C-SAG was refined, for [`ExecutorStats`]:
/// `(symbolic, loop_summarized, interprocedural, bounded_dynamic,
/// speculative)`.
pub(crate) fn tier_counts(csags: &[CSag]) -> (u64, u64, u64, u64, u64) {
    use dmvcc_analysis::RefinementTier;
    let count = |tier: RefinementTier| csags.iter().filter(|c| c.tier == tier).count() as u64;
    (
        count(RefinementTier::Symbolic),
        count(RefinementTier::LoopSummarized),
        count(RefinementTier::Interprocedural),
        count(RefinementTier::BoundedDynamic),
        count(RefinementTier::Speculative),
    )
}

/// Result of a parallel block execution.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// The block's final writes (flush of every access sequence).
    pub final_writes: WriteSet,
    /// Final status per transaction.
    pub statuses: Vec<ExecStatus>,
    /// Non-deterministic aborts (re-executions) that occurred.
    pub aborts: u64,
    /// Scheduler behavior counters for this block.
    pub stats: ExecutorStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Not yet ready: some predicted read is unavailable.
    Waiting,
    /// In the ready queue.
    Ready,
    /// A worker is executing it.
    Running,
    /// Terminal (until a cascade aborts it again).
    Finished,
}

/// An edge-triggered event: an epoch counter under a mutex plus a condvar.
/// Waiters sample the epoch *before* checking the condition they sleep on;
/// `signal` bumps the epoch, so a signal between sampling and sleeping
/// turns the sleep into a no-op instead of a lost wakeup.
#[derive(Debug, Default)]
pub(crate) struct Event {
    epoch: Mutex<u64>,
    cond: Condvar,
}

impl Event {
    pub(crate) fn epoch(&self) -> u64 {
        *self.epoch.lock()
    }

    pub(crate) fn signal(&self) {
        let mut epoch = self.epoch.lock();
        *epoch += 1;
        self.cond.notify_all();
    }

    /// Sleeps until the epoch moves past `seen` or the timeout elapses.
    pub(crate) fn wait_while(&self, seen: u64, timeout: Duration) {
        let mut epoch = self.epoch.lock();
        if *epoch == seen {
            self.cond.wait_for(&mut epoch, timeout);
        }
    }
}

/// The lock-protected scheduling state of one transaction.
#[derive(Debug)]
struct TxCore {
    phase: Phase,
    attempts: u32,
    status: Option<ExecStatus>,
    /// Key ids whose versions this tx materialized in the sequences during
    /// the current attempt (for rollback on abort).
    published: IdSet,
    /// All key ids this tx has entries for (predictions plus dynamic
    /// insertions), so aborts can reset them.
    touched: IdSet,
}

/// Immutable per-transaction execution metadata, interned once per block.
/// Replaces the per-attempt `HashMap` builds the old `run_attempt` paid on
/// every (re-)execution.
#[derive(Debug, Default)]
struct TxMeta {
    /// Predicted reads as (id, key) pairs — the readiness probe.
    reads: Vec<(KeyId, StateKey)>,
    /// Predicted writes ∪ adds, for dropping unfulfilled versions.
    predicted_wa: Vec<KeyId>,
    /// Last predicted write pc per key, sorted by id (binary search).
    last_write_pc: Vec<(KeyId, usize)>,
    /// Release points as (pc, gas bound), sorted by pc.
    release_bounds: Vec<(usize, u64)>,
    /// pcs where the VM fires `on_release_point` (release points plus
    /// one-past each key's last predicted write).
    release_set: HashSet<usize>,
}

/// One transaction's full concurrent state: the core behind its own small
/// mutex, the abort generation as an atomic (checked far more often than
/// the core is mutated), and the event its blocked reads park on.
#[derive(Debug)]
struct TxState {
    generation: AtomicU32,
    core: Mutex<TxCore>,
    event: Event,
    /// Set when the deadlock breaker aborts this transaction's own blocked
    /// read: subsequent re-admissions enter at the lowest-priority lane so
    /// the ready work the breaker yielded to actually runs first.
    demoted: AtomicBool,
}

/// Monotonic counters shared by all workers (see [`ExecutorStats`]).
#[derive(Debug, Default)]
struct AtomicStats {
    publishes: AtomicU64,
    targeted_wakeups: AtomicU64,
    wakeups_avoided: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    rank_inversions: AtomicU64,
    publish_batches: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ExecutorStats {
        ExecutorStats {
            attempts: 0, // filled from the per-tx cores by the caller
            publishes: self.publishes.load(Ordering::Relaxed),
            targeted_wakeups: self.targeted_wakeups.load(Ordering::Relaxed),
            wakeups_avoided: self.wakeups_avoided.load(Ordering::Relaxed),
            broadcast_wakeups: 0,
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            symbolic_bindings: 0,        // filled from the C-SAGs by the caller
            loop_summarized_bindings: 0, // likewise
            interprocedural_bindings: 0, // likewise
            bounded_dynamic_bindings: 0, // likewise
            summary_cache_hits: 0,       // filled by the refining caller
            speculative_fallbacks: 0,    // likewise
            critical_path_gas: 0,        // filled from the BlockDag by the caller
            predicted_gas: 0,            // likewise
            rank_inversions: self.rank_inversions.load(Ordering::Relaxed),
            refine_nanos: 0,            // filled by execute_block
            alloc_bytes_saved: 0,       // filled from the block arena by the caller
            shard_lock_acquisitions: 0, // filled from ShardedSequences by the caller
            publish_batches: self.publish_batches.load(Ordering::Relaxed),
            validations: 0,         // STM executor only
            validation_failures: 0, // likewise
            optimistic_txs: 0,      // filled by the STM/hybrid dispatchers
        }
    }
}

/// A queued admission: `(tx, generation, lane)`. The lane the entry was
/// pushed to travels with it so dequeue-side occupancy accounting stays
/// exact even when a transaction's lane changes between pushes (breaker
/// demotion).
type ReadyEntry = (usize, u32, usize);

struct Shared<'a> {
    sequences: ShardedSequences,
    states: Vec<TxState>,
    injector: Injector<ReadyEntry>,
    stealers: Vec<Stealer<ReadyEntry>>,
    /// Critical-path ranks of the block (always built: the stats report
    /// critical-path gas and inversions under either policy).
    dag: &'a BlockDag,
    /// Rank-bucketed sharded priority injectors, drained lane 0 first
    /// (used only under [`SchedulerPolicy::CriticalPath`]).
    lanes: Vec<Injector<ReadyEntry>>,
    /// Entries currently queued per lane, under either policy — the
    /// rank-inversion probe ("is a higher lane non-empty?") needs the
    /// occupancy even when dispatch itself is FIFO.
    lane_counts: Vec<AtomicUsize>,
    /// Transactions currently in phase `Finished` whose finalization
    /// completed (incremented/decremented strictly under the tx's core
    /// lock, so `finished == n` implies a quiescent, fully-executed block).
    finished: AtomicUsize,
    /// Workers currently sleeping inside a blocked read.
    blocked: AtomicUsize,
    /// Workers currently parked with nothing to run.
    idle: AtomicUsize,
    /// Entries currently sitting in the ready deques (stale ones included).
    ready_count: AtomicUsize,
    aborts: AtomicU64,
    stats: AtomicStats,
    /// Parked idle workers wait here; signaled when work is admitted or
    /// the block completes.
    idle_event: Event,
    snapshot: &'a Snapshot,
    csags: &'a [CSag],
    /// Interned per-transaction metadata (reads, publishable pcs, release
    /// bounds), built once per block.
    metas: Vec<TxMeta>,
    txs: &'a [Transaction],
    config: ParallelConfig,
    /// Optional scheduling hook (`None` in production; see
    /// [`crate::SchedHook`]).
    hook: Option<Arc<dyn SchedHook>>,
}

impl Shared<'_> {
    /// The installed hook, if any — every call site branches on this
    /// `Option`, so the disabled path has no dynamic dispatch.
    #[inline]
    fn hook(&self) -> Option<&dyn SchedHook> {
        self.hook.as_deref()
    }

    fn generation_of(&self, tx: usize) -> u32 {
        self.states[tx].generation.load(Ordering::SeqCst)
    }

    /// Enqueues a ready transaction and wakes a parked worker if any.
    ///
    /// FIFO policy: onto the admitting worker's own deque when there is
    /// one (locality), otherwise the shared injector. Critical-path
    /// policy: into the transaction's rank lane — re-admissions after an
    /// abort therefore re-enter at their rank, not at the back.
    fn push_ready(&self, tx: usize, generation: u32, local: Option<&Worker<ReadyEntry>>) {
        // Breaker-demoted transactions enter at the lowest priority: the
        // breaker's self-abort exists to yield the worker to other queued
        // ready work, and a re-admission at the victim's own (higher) rank
        // would starve that work forever — the worker's lane scan keeps
        // finding the victim first, it blocks on the same unpublished
        // write, and the block storms to `max_attempts` (priority-
        // inversion livelock, found by DST schedule fuzzing).
        let lane = if self.states[tx].demoted.load(Ordering::SeqCst) {
            NUM_LANES - 1
        } else {
            self.dag.lane_of(tx)
        };
        let entry: ReadyEntry = (tx, generation, lane);
        self.ready_count.fetch_add(1, Ordering::SeqCst);
        self.lane_counts[lane].fetch_add(1, Ordering::SeqCst);
        match self.config.scheduler {
            SchedulerPolicy::Fifo => match local {
                Some(worker) => worker.push(entry),
                None => self.injector.push(entry),
            },
            SchedulerPolicy::CriticalPath => {
                self.lanes[lane].push(entry);
            }
        }
        if self.idle.load(Ordering::SeqCst) > 0 {
            self.idle_event.signal();
        }
    }

    /// Bookkeeping for a popped entry: lane occupancy down; if the entry
    /// actually runs while a strictly higher-priority lane still has
    /// queued work, that is a rank inversion.
    fn note_dequeue(&self, lane: usize, runs: bool) {
        self.lane_counts[lane].fetch_sub(1, Ordering::SeqCst);
        if runs
            && self.lane_counts[..lane]
                .iter()
                .any(|count| count.load(Ordering::SeqCst) > 0)
        {
            self.stats.rank_inversions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Checks whether all predicted reads of `tx` resolve right now,
    /// taking one shard lock at a time.
    fn is_ready(&self, tx: usize) -> bool {
        for &(id, ref key) in &self.metas[tx].reads {
            let mut shard = self.sequences.shard_for(id);
            if matches!(
                shard.resolve_value(id, tx, key, self.snapshot),
                FastResolution::Blocked { .. }
            ) {
                return false;
            }
        }
        true
    }

    /// Admits `tx` to the ready queue if it is waiting and its predicted
    /// reads resolve. The readiness check runs without the core lock, so a
    /// version appearing concurrently can cause a *spurious* admission —
    /// harmless, the attempt just blocks (or aborts) like any mispredicted
    /// read — but never a missed one.
    fn try_admit(&self, tx: usize, local: Option<&Worker<ReadyEntry>>) -> bool {
        if self.states[tx].core.lock().phase != Phase::Waiting {
            return false;
        }
        if !self.is_ready(tx) {
            return false;
        }
        let generation = {
            let mut core = self.states[tx].core.lock();
            if core.phase != Phase::Waiting {
                return false;
            }
            core.phase = Phase::Ready;
            // Generation read under the core lock: an abort (which holds
            // this lock to bump it) cannot interleave, so the queue entry
            // is coherent.
            self.generation_of(tx)
        };
        self.push_ready(tx, generation, local);
        true
    }

    /// Aborts `root` (Algorithm 4) and cascades to readers of its
    /// versions. Per victim: bump the generation and demote to `Waiting`
    /// under the core lock *first* (any in-flight attempt now fails its
    /// next staleness check), then reset the victim's entries shard by
    /// shard, feeding newly-stale readers back into the worklist.
    fn abort_cascade(&self, root: usize, local: Option<&Worker<ReadyEntry>>) {
        let mut worklist = vec![root];
        let mut seen = HashSet::new();
        let mut admit_candidates: Vec<usize> = Vec::new();
        while let Some(victim) = worklist.pop() {
            if !seen.insert(victim) {
                continue;
            }
            if let Some(hook) = self.hook() {
                hook.on_abort(root, victim);
            }
            let (touched, aborted_generation): (Vec<KeyId>, u32) = {
                let mut core = self.states[victim].core.lock();
                if core.phase == Phase::Finished {
                    self.finished.fetch_sub(1, Ordering::SeqCst);
                }
                let generation = self.states[victim].generation.load(Ordering::SeqCst);
                let next = generation.wrapping_add(1);
                self.states[victim].generation.store(next, Ordering::SeqCst);
                // Park the victim in a *non-admissible* phase while its
                // entries are reset below: `try_admit` only admits
                // `Waiting` transactions, so no new attempt can start (and
                // publish) until this cascade's resets are done. Demoting
                // straight to `Waiting` here loses writes: a concurrent
                // admission (idle self-heal, an `allowed` effect) can run
                // the new attempt to completion between our generation
                // bump and a straggling reset, which then silently
                // re-pends the new attempt's published version — nothing
                // ever restores it (found by DST schedule fuzzing).
                core.phase = Phase::Running;
                core.status = None;
                core.published.clear();
                let mut touched: Vec<KeyId> = core.touched.iter().collect();
                // Batch the resets below by shard: one lock hold per shard
                // instead of one per key.
                touched.sort_unstable_by_key(|&id| self.sequences.shard_index_of(id));
                (touched, next)
            };
            self.aborts.fetch_add(1, Ordering::Relaxed);
            let mut to_wake: Vec<usize> = Vec::new();
            let mut effects: Vec<VersionWriteEffect> = Vec::new();
            'groups: for group in touched.chunk_by(|a, b| {
                self.sequences.shard_index_of(*a) == self.sequences.shard_index_of(*b)
            }) {
                let mut shard = self.sequences.shard_for(group[0]);
                // A newer cascade owns the victim now. Its `touched`
                // snapshot is a superset of ours (the set only grows),
                // so its resets cover the rest — and resetting here
                // could clobber a version published by the attempt it
                // re-admits.
                if self.generation_of(victim) != aborted_generation {
                    break 'groups;
                }
                for &id in group {
                    // Predicted writes re-pend (the new attempt re-announces
                    // them); dynamically discovered writes roll back to
                    // `Dropped` — the new attempt may never write the key
                    // again, and a pending entry nothing fulfills wedges
                    // every later reader.
                    let seq = shard.sequence_mut(id);
                    effects.push(
                        if self.metas[victim].predicted_wa.binary_search(&id).is_ok() {
                            seq.reset(victim)
                        } else {
                            seq.rollback_unpredicted(victim)
                        },
                    );
                    // A reset only re-pends the entry, but waiters are
                    // drained and signaled anyway: one of them may be the
                    // victim's own in-flight attempt, which must wake to
                    // observe its stale generation and unwind.
                    to_wake.extend(shard.drain_waiters(id));
                }
            }
            for effect in effects {
                for reader in effect.aborted {
                    if reader != victim && !seen.contains(&reader) {
                        worklist.push(reader);
                    }
                }
                for reader in effect.allowed {
                    admit_candidates.push(reader);
                }
            }
            for waiter in to_wake {
                self.states[waiter].event.signal();
            }
            // Resets done: make the victim admissible again — unless a
            // newer cascade superseded us, in which case its own flip
            // re-opens admission after *its* resets.
            {
                let mut core = self.states[victim].core.lock();
                if self.generation_of(victim) == aborted_generation && core.phase == Phase::Running
                {
                    core.phase = Phase::Waiting;
                }
            }
        }
        // Re-admit everything the cascade touched or unblocked.
        for victim in seen {
            self.try_admit(victim, local);
        }
        for reader in admit_candidates {
            self.try_admit(reader, local);
        }
    }

    /// Applies a version-write/drop effect: aborts stale readers, admits
    /// the newly unblocked. Must be called with no shard lock held.
    fn apply_effect(&self, effect: VersionWriteEffect, local: Option<&Worker<ReadyEntry>>) {
        for reader in effect.aborted {
            self.abort_cascade(reader, local);
        }
        for reader in effect.allowed {
            self.try_admit(reader, local);
        }
    }

    /// Signals the waiters drained from a key after a version change.
    fn wake_waiters(&self, waiters: Vec<usize>) {
        if waiters.is_empty() {
            self.stats.wakeups_avoided.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats
            .targeted_wakeups
            .fetch_add(waiters.len() as u64, Ordering::Relaxed);
        for waiter in waiters {
            self.states[waiter].event.signal();
        }
    }

    /// Marks `tx` finished with `status`. The counter increment happens
    /// under the core lock so `finished` never exceeds the number of
    /// transactions whose phase is `Finished`.
    fn finish(&self, tx: usize, generation: u32, status: ExecStatus) {
        // Commit decision point — observed before the core lock so a
        // stalling hook delays this commit, never other transactions.
        if let Some(hook) = self.hook() {
            hook.on_commit(tx);
        }
        let mut core = self.states[tx].core.lock();
        if self.generation_of(tx) != generation {
            return; // aborted concurrently; the new attempt supersedes us
        }
        core.phase = Phase::Finished;
        core.status = Some(status);
        let done = self.finished.fetch_add(1, Ordering::SeqCst) + 1;
        if done == self.txs.len() {
            self.idle_event.signal();
        }
    }
}

/// One key's entry in a publish batch: id, value, and whether the value is
/// a commutative delta (ω̄) rather than a full write.
type PublishEntry = (KeyId, U256, bool);

/// Host bridging one VM execution onto the sharded sequences.
struct ThreadHost<'a, 'b> {
    shared: &'a Shared<'b>,
    local: Option<&'a Worker<ReadyEntry>>,
    tx: usize,
    generation: u32,
    /// Buffered full writes and commutative deltas of this attempt, keyed
    /// by interned id.
    writes: SmallMap,
    adds: SmallMap,
    /// `true` once a release point passed with sufficient gas.
    released: bool,
    /// Interned metadata: release bounds, publishable pcs, predictions.
    meta: &'a TxMeta,
    /// Reusable publish-batch buffer (capacity survives release points).
    scratch: Vec<PublishEntry>,
}

impl ThreadHost<'_, '_> {
    fn stale(&self) -> bool {
        self.shared.generation_of(self.tx) != self.generation
    }

    /// Records `id` in this tx's touched set (so an abort resets it) —
    /// must happen *before* the corresponding sequence mutation, so a
    /// concurrent abort either sees the key or invalidates us first.
    fn touch(&self, id: KeyId) -> Result<(), HostError> {
        let mut core = self.shared.states[self.tx].core.lock();
        if self.stale() {
            return Err(HostError::Aborted);
        }
        core.touched.insert(id);
        Ok(())
    }

    /// The last predicted write pc for `id`, if predicted.
    fn last_write_pc(&self, id: KeyId) -> Option<usize> {
        self.meta
            .last_write_pc
            .binary_search_by_key(&id, |&(k, _)| k)
            .ok()
            .map(|i| self.meta.last_write_pc[i].1)
    }

    /// Publishes a batch of buffered keys (write versioning, Algorithm 3),
    /// taking each involved shard lock **once**: entries are sorted by
    /// shard, each shard's run is versioned and its waiters drained under a
    /// single lock hold, and wakeups/effects are applied after unlocking —
    /// the flat lock discipline is untouched, there are just fewer
    /// acquisitions. Errors mean the generation went stale; the caller
    /// unwinds and the abort's resets cover whatever was already written.
    fn publish_batch(&self, entries: &mut [PublishEntry]) -> Result<(), HostError> {
        if entries.is_empty() {
            return Ok(());
        }
        let shared = self.shared;
        // Publish decision points — observed before any lock so a stalling
        // hook models a delayed publish without blocking other workers.
        if let Some(hook) = shared.hook() {
            for &(id, _, delta) in entries.iter() {
                let key = shared.sequences.interner().resolve(id);
                hook.on_publish(self.tx, &key, delta);
            }
        }
        {
            let mut core = shared.states[self.tx].core.lock();
            if self.stale() {
                return Err(HostError::Aborted);
            }
            for &(id, _, _) in entries.iter() {
                core.touched.insert(id);
                core.published.insert(id);
            }
        }
        // Stable sort: same-shard keys keep their buffer order, so the
        // publication order is deterministic given a deterministic schedule.
        entries.sort_by_key(|&(id, _, _)| shared.sequences.shard_index_of(id));
        let mut staged: Vec<(VersionWriteEffect, Vec<usize>)> = Vec::with_capacity(entries.len());
        for group in entries.chunk_by(|a, b| {
            shared.sequences.shard_index_of(a.0) == shared.sequences.shard_index_of(b.0)
        }) {
            {
                let mut shard = shared.sequences.shard_for(group[0].0);
                // Re-check under the shard lock: if an abort got in
                // between, writing now would leak a version the abort's
                // reset already passed over.
                if self.stale() {
                    return Err(HostError::Aborted);
                }
                for &(id, value, delta) in group {
                    let effect = shard.sequence_mut(id).version_write(self.tx, value, delta);
                    staged.push((effect, shard.drain_waiters(id)));
                }
            }
            shared.stats.publish_batches.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .publishes
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            // Wakeups and effects strictly after the shard unlock (the
            // effects may take core locks and other shard locks).
            for (effect, waiters) in staged.drain(..) {
                shared.wake_waiters(waiters);
                shared.apply_effect(effect, self.local);
            }
        }
        Ok(())
    }

    /// Drops this tx's versions of a batch of keys (misprediction or
    /// deterministic abort), one shard lock per involved shard, unblocking
    /// and re-admitting downstream readers.
    fn drop_batch(&self, ids: &mut [KeyId]) -> Result<(), HostError> {
        if ids.is_empty() {
            return Ok(());
        }
        let shared = self.shared;
        ids.sort_unstable_by_key(|&id| shared.sequences.shard_index_of(id));
        let mut staged: Vec<(VersionWriteEffect, Vec<usize>)> = Vec::with_capacity(ids.len());
        for group in ids.chunk_by(|a, b| {
            shared.sequences.shard_index_of(*a) == shared.sequences.shard_index_of(*b)
        }) {
            {
                let mut shard = shared.sequences.shard_for(group[0]);
                // Re-check under the shard lock, exactly like publishes: if
                // an abort cascade got in between, a new attempt of this tx
                // may already have re-published these keys — dropping now
                // would erase the new attempt's version, which nothing
                // would ever restore (found by DST schedule fuzzing).
                if self.stale() {
                    return Err(HostError::Aborted);
                }
                for &id in group {
                    let effect = shard.sequence_mut(id).drop_version(self.tx);
                    staged.push((effect, shard.drain_waiters(id)));
                }
            }
            shared.stats.publish_batches.fetch_add(1, Ordering::Relaxed);
            for (effect, waiters) in staged.drain(..) {
                shared.wake_waiters(waiters);
                shared.apply_effect(effect, self.local);
            }
        }
        Ok(())
    }
}

impl Host for ThreadHost<'_, '_> {
    fn sload(&mut self, key: StateKey) -> Result<U256, HostError> {
        let id = self.shared.sequences.intern(key);
        // Own writes win (read-your-writes inside the attempt).
        if let Some(v) = self.writes.get(id) {
            let merged = v.wrapping_add(self.adds.get(id).unwrap_or(U256::ZERO));
            return Ok(merged);
        }
        let own_delta = self.adds.get(id).unwrap_or(U256::ZERO);
        self.touch(id)?;
        // Fast path: no epoch sampling, one shard lock, the slot's cached
        // snapshot value. The epoch only matters before *parking*, so it is
        // sampled exclusively on the blocked path below.
        {
            let mut shard = self.shared.sequences.shard_for(id);
            if self.stale() {
                return Err(HostError::Aborted);
            }
            if let FastResolution::Ready(value) =
                shard.resolve_value(id, self.tx, &key, self.shared.snapshot)
            {
                shard.mark_read(id, self.tx);
                return Ok(value.wrapping_add(own_delta));
            }
        }
        // Consecutive parks whose timeout elapsed with no event signal —
        // the stuckness measure the deadlock breaker below keys off.
        let mut stuck_parks = 0u32;
        loop {
            // Sample our event's epoch before resolving: a publish signal
            // racing the registration below then prevents the sleep.
            let seen_epoch = self.shared.states[self.tx].event.epoch();
            let value = {
                let mut shard = self.shared.sequences.shard_for(id);
                if self.stale() {
                    return Err(HostError::Aborted);
                }
                match shard.resolve_value(id, self.tx, &key, self.shared.snapshot) {
                    FastResolution::Ready(value) => {
                        shard.mark_read(id, self.tx);
                        Some(value)
                    }
                    FastResolution::Blocked { .. } => {
                        // Register in the reverse waiter index under the
                        // same lock hold as the failed resolve.
                        shard.register_waiter(id, self.tx);
                        None
                    }
                }
            };
            if let Some(value) = value {
                return Ok(value.wrapping_add(own_delta));
            }
            let blocked = self.shared.blocked.fetch_add(1, Ordering::SeqCst) + 1;
            // Deadlock breaker, last resort only. Reads wait exclusively on
            // *earlier* transactions, so the wait-for graph is acyclic: if
            // any worker is idle (not blocked), it alone guarantees
            // progress, and if our writer is running it will publish.
            // Intervention is needed only when every worker is asleep,
            // runnable work exists that none of them can reach, and our own
            // event has been silent across several full park timeouts
            // (`stuck_parks`). Aborting eagerly instead livelocks: the
            // re-admitted transaction is itself the "runnable work" the
            // next blocked reader sees, and the block storms with
            // self-aborts until someone trips `max_attempts` (found by DST
            // schedule fuzzing).
            if blocked + self.shared.idle.load(Ordering::SeqCst) >= self.shared.config.threads {
                if self.shared.ready_count.load(Ordering::SeqCst) == 0 {
                    for i in 0..self.shared.txs.len() {
                        self.shared.try_admit(i, self.local);
                    }
                }
                if stuck_parks >= STUCK_PARKS && self.shared.ready_count.load(Ordering::SeqCst) > 0
                {
                    self.shared.blocked.fetch_sub(1, Ordering::SeqCst);
                    self.shared
                        .sequences
                        .shard_for(id)
                        .unregister_waiter(id, self.tx);
                    // Re-admissions go to the shared injector (`local:
                    // None`) and, under critical-path scheduling, to the
                    // lowest-priority lane: this worker's next pop must
                    // find the stuck writer, not our own just-re-admitted
                    // transaction.
                    self.shared.states[self.tx]
                        .demoted
                        .store(true, Ordering::SeqCst);
                    self.shared.abort_cascade(self.tx, None);
                    return Err(HostError::Aborted);
                }
            }
            self.shared.stats.parks.fetch_add(1, Ordering::Relaxed);
            if let Some(hook) = self.shared.hook() {
                hook.on_park(Some(self.tx));
            }
            self.shared.states[self.tx]
                .event
                .wait_while(seen_epoch, BLOCKED_PARK);
            self.shared.blocked.fetch_sub(1, Ordering::SeqCst);
            if self.shared.states[self.tx].event.epoch() == seen_epoch {
                stuck_parks += 1;
            } else {
                stuck_parks = 0;
            }
            if let Some(hook) = self.shared.hook() {
                hook.on_wake(Some(self.tx));
            }
        }
    }

    fn sstore(&mut self, key: StateKey, value: U256) -> Result<(), HostError> {
        let id = self.shared.sequences.intern(key);
        self.adds.remove(id);
        self.writes.insert(id, value);
        Ok(())
    }

    fn sadd(&mut self, key: StateKey, delta: U256) -> Result<(), HostError> {
        let id = self.shared.sequences.intern(key);
        if let Some(v) = self.writes.get_mut(id) {
            *v = v.wrapping_add(delta);
        } else {
            self.adds.add(id, delta);
        }
        Ok(())
    }

    fn on_release_point(&mut self, pc: usize, gas_left: u64) {
        if let Ok(i) = self
            .meta
            .release_bounds
            .binary_search_by_key(&pc, |&(p, _)| p)
        {
            let bound = self.meta.release_bounds[i].1;
            let passed = match self.shared.hook() {
                Some(hook) => hook.release_gate(self.tx, pc, gas_left, bound),
                None => gas_left >= bound,
            };
            if passed {
                self.released = true;
            }
        }
        if !self.released {
            return;
        }
        // Publish buffered keys whose last predicted write is behind us
        // (Algorithm 2: "no write of I in successor nodes"), batched so
        // each involved shard lock is taken once.
        let mut batch = std::mem::take(&mut self.scratch);
        batch.clear();
        batch.extend(
            self.writes
                .iter()
                .map(|(id, v)| (id, v, false))
                .chain(self.adds.iter().map(|(id, v)| (id, v, true)))
                .filter(|&(id, _, _)| self.last_write_pc(id).is_some_and(|last| last < pc)),
        );
        let result = self.publish_batch(&mut batch);
        if result.is_ok() {
            for &(id, _, _) in &batch {
                self.writes.remove(id);
                self.adds.remove(id);
            }
        }
        // Stale generation: keep the buffers; the VM unwinds at the next
        // access and the abort's resets cover whatever was published.
        batch.clear();
        self.scratch = batch;
    }
}

/// The multi-threaded DMVCC block executor (sharded locks, targeted
/// wakeups, work-stealing scheduling — see the module docs).
///
/// # Examples
///
/// ```
/// use dmvcc_primitives::{Address, U256};
/// use dmvcc_state::{Snapshot, StateKey};
/// use dmvcc_vm::{CodeRegistry, Transaction};
/// use dmvcc_analysis::Analyzer;
/// use dmvcc_core::{ParallelConfig, ParallelExecutor};
///
/// let analyzer = Analyzer::new(CodeRegistry::default());
/// let executor = ParallelExecutor::new(analyzer, ParallelConfig::default());
/// let a = Address::from_u64(1);
/// let snapshot = Snapshot::from_entries([(StateKey::balance(a), U256::from(10u64))]);
/// let block = vec![Transaction::transfer(a, Address::from_u64(2), U256::ONE)];
/// let outcome = executor.execute_block(&block, &snapshot, &Default::default());
/// assert_eq!(outcome.final_writes.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    analyzer: Analyzer,
    config: ParallelConfig,
    hook: Option<Arc<dyn SchedHook>>,
    /// The executor-level block arena: buffers of the last finished block,
    /// recycled into the next one (shared across clones on purpose — a
    /// pipeline's executor clones all feed one pool).
    pool: Arc<Mutex<BlockPool>>,
}

/// Recyclable per-block allocations (see the `arena` module docs): the
/// shard storage and the per-transaction scheduling states of a finished
/// block, reset in place and reused by the next call.
#[derive(Debug, Default)]
struct BlockPool {
    storage: Option<ShardStorage>,
    states: Vec<TxState>,
}

/// Resets a recycled [`TxState`] for a fresh block, returning the heap
/// bytes whose allocation the reuse avoided.
fn recycle_state(state: &mut TxState) -> u64 {
    state.generation = AtomicU32::new(0);
    let core = state.core.get_mut();
    let saved = core.published.retained_bytes()
        + core.touched.retained_bytes()
        + std::mem::size_of::<TxState>() as u64;
    core.phase = Phase::Waiting;
    core.attempts = 0;
    core.status = None;
    core.published.clear();
    core.touched.clear();
    *state.event.epoch.get_mut() = 0;
    *state.demoted.get_mut() = false;
    saved
}

impl ParallelExecutor {
    /// Creates an executor over the given analyzer (contract registry).
    pub fn new(analyzer: Analyzer, config: ParallelConfig) -> Self {
        ParallelExecutor {
            analyzer,
            config,
            hook: None,
            pool: Arc::new(Mutex::new(BlockPool::default())),
        }
    }

    /// Installs a [`SchedHook`] consulted at every scheduling decision
    /// point (DST only; executors without a hook skip all hook branches).
    pub fn with_hook(mut self, hook: Arc<dyn SchedHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// The analyzer in use.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Executes a block in parallel, returning the final write set (equal
    /// to the serial one, per Theorem 1) plus abort statistics.
    pub fn execute_block(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
    ) -> ParallelOutcome {
        let refine_start = std::time::Instant::now();
        let hits_before = self.analyzer.registry().summaries().hits();
        let csags = crate::pipeline::refine_csags(
            &self.analyzer,
            txs,
            snapshot,
            block_env,
            self.config.threads,
        );
        let refine_nanos = refine_start.elapsed().as_nanos() as u64;
        let summary_hits = self.analyzer.registry().summaries().hits() - hits_before;
        let mut outcome = self.execute_block_with_csags(txs, snapshot, block_env, &csags);
        outcome.stats.refine_nanos = refine_nanos;
        outcome.stats.summary_cache_hits = summary_hits;
        outcome
    }

    /// Executes a block with precomputed C-SAGs.
    ///
    /// # Panics
    ///
    /// Panics if `csags.len() != txs.len()`.
    pub fn execute_block_with_csags(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
        csags: &[CSag],
    ) -> ParallelOutcome {
        assert_eq!(csags.len(), txs.len(), "one C-SAG per transaction");
        let n = txs.len();
        if n == 0 {
            return ParallelOutcome {
                final_writes: WriteSet::new(),
                statuses: Vec::new(),
                aborts: 0,
                stats: ExecutorStats::default(),
            };
        }

        // Block arena: reclaim the previous block's buffers from the pool.
        let (recycled_storage, mut recycled_states) = {
            let mut pool = self.pool.lock();
            (pool.storage.take(), std::mem::take(&mut pool.states))
        };
        let mut bytes_saved = 0u64;

        // Intern every predicted key once. The ids are dense, the frozen
        // tier is probe-free for the rest of the block, and everything
        // downstream (shards, waiter index, DAG, metas) indexes by u32
        // instead of hashing 40-byte keys.
        let mut interner = KeyInterner::new();
        for csag in csags {
            for key in csag
                .reads
                .iter()
                .chain(csag.writes.iter())
                .chain(csag.adds.iter())
                .chain(csag.last_write_pc.keys())
            {
                interner.preintern(*key);
            }
        }
        let interner = Arc::new(interner);

        // Per-transaction interned metadata, built once — attempts after an
        // abort re-run with zero rebuild cost.
        let metas: Vec<TxMeta> = csags
            .iter()
            .map(|csag| {
                let lookup =
                    |key: &StateKey| interner.lookup(key).expect("predicted key preinterned");
                let mut last_write_pc: Vec<(KeyId, usize)> = csag
                    .last_write_pc
                    .iter()
                    .map(|(key, &pc)| (lookup(key), pc))
                    .collect();
                last_write_pc.sort_unstable_by_key(|&(id, _)| id);
                let mut release_bounds: Vec<(usize, u64)> = csag
                    .release_points
                    .iter()
                    .map(|rp| (rp.pc, rp.gas_bound))
                    .collect();
                release_bounds.sort_unstable_by_key(|&(pc, _)| pc);
                release_bounds.dedup_by_key(|&mut (pc, _)| pc);
                // Fire callbacks at release points and right after each
                // key's last predicted write, so publication happens as
                // early as Algorithm 2 allows.
                let mut release_set: HashSet<usize> =
                    release_bounds.iter().map(|&(pc, _)| pc).collect();
                for &(_, pc) in &last_write_pc {
                    release_set.insert(pc.saturating_add(1));
                }
                let mut predicted_wa: Vec<KeyId> =
                    csag.writes.union(&csag.adds).map(lookup).collect();
                // Sorted so the abort cascade can binary-search membership
                // (predicted vs dynamically discovered writes roll back
                // differently).
                predicted_wa.sort_unstable();
                TxMeta {
                    reads: csag.reads.iter().map(|key| (lookup(key), *key)).collect(),
                    predicted_wa,
                    last_write_pc,
                    release_bounds,
                    release_set,
                }
            })
            .collect();

        // Build predicted sequences (the preprocessing of §IV-A) —
        // single-threaded, but already in their shards, which are recycled
        // from the previous block when available.
        let (sequences, storage_bytes) = ShardedSequences::for_block(
            Arc::clone(&interner),
            DEFAULT_SHARDS,
            recycled_storage,
            self.hook.clone(),
        );
        bytes_saved += storage_bytes;
        for (i, (csag, meta)) in csags.iter().zip(&metas).enumerate() {
            for &(id, _) in &meta.reads {
                sequences.predict_id(id, i, AccessOp::Read);
            }
            for key in &csag.writes {
                sequences.predict_id(
                    interner.lookup(key).expect("preinterned"),
                    i,
                    AccessOp::Write,
                );
            }
            for key in &csag.adds {
                sequences.predict_id(interner.lookup(key).expect("preinterned"), i, AccessOp::Add);
            }
        }
        recycled_states.truncate(n);
        let mut states: Vec<TxState> = recycled_states;
        for state in &mut states {
            bytes_saved += recycle_state(state);
        }
        while states.len() < n {
            states.push(TxState {
                generation: AtomicU32::new(0),
                core: Mutex::new(TxCore {
                    phase: Phase::Waiting,
                    attempts: 0,
                    status: None,
                    published: IdSet::new(),
                    touched: IdSet::new(),
                }),
                event: Event::default(),
                demoted: AtomicBool::new(false),
            });
        }
        for (state, meta) in states.iter_mut().zip(&metas) {
            let touched = &mut state.core.get_mut().touched;
            for &(id, _) in &meta.reads {
                touched.insert(id);
            }
            for &id in &meta.predicted_wa {
                touched.insert(id);
            }
        }

        let workers: Vec<Worker<ReadyEntry>> = (0..self.config.threads)
            .map(|_| Worker::new_fifo())
            .collect();
        let stealers = workers.iter().map(Worker::stealer).collect();

        let dag = BlockDag::build_with_interner(csags, &interner);
        let shared = Shared {
            sequences,
            states,
            injector: Injector::new(),
            stealers,
            dag: &dag,
            lanes: (0..NUM_LANES).map(|_| Injector::new()).collect(),
            lane_counts: (0..NUM_LANES).map(|_| AtomicUsize::new(0)).collect(),
            finished: AtomicUsize::new(0),
            blocked: AtomicUsize::new(0),
            idle: AtomicUsize::new(0),
            ready_count: AtomicUsize::new(0),
            aborts: AtomicU64::new(0),
            stats: AtomicStats::default(),
            idle_event: Event::default(),
            snapshot,
            csags,
            metas,
            txs,
            config: self.config,
            hook: self.hook.clone(),
        };
        // Initial admission (Algorithm 1 line 1) — into the injector; the
        // first workers to start will spread the entries by stealing.
        for i in 0..n {
            shared.try_admit(i, None);
        }

        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let pin = self.config.pin_cores;
        std::thread::scope(|scope| {
            for (index, local) in workers.into_iter().enumerate() {
                let shared = &shared;
                scope.spawn(move || {
                    if pin {
                        crate::affinity::pin_current_thread(index % cores);
                    }
                    self.worker(shared, block_env, local, index)
                });
            }
        });

        let final_writes = shared.sequences.final_writes(snapshot);
        let mut stats = shared.stats.snapshot();
        (
            stats.symbolic_bindings,
            stats.loop_summarized_bindings,
            stats.interprocedural_bindings,
            stats.bounded_dynamic_bindings,
            stats.speculative_fallbacks,
        ) = tier_counts(csags);
        stats.critical_path_gas = dag.critical_path_gas;
        stats.predicted_gas = dag.total_gas;
        stats.alloc_bytes_saved = bytes_saved;
        stats.shard_lock_acquisitions = shared.sequences.lock_acquisitions();
        let Shared {
            sequences,
            mut states,
            aborts,
            ..
        } = shared;
        let mut statuses = Vec::with_capacity(n);
        for state in &mut states {
            let core = state.core.get_mut();
            stats.attempts += core.attempts as u64;
            statuses.push(core.status.clone().unwrap_or(ExecStatus::Interrupted));
        }
        // Return the block's buffers to the arena for the next call.
        {
            let mut pool = self.pool.lock();
            pool.storage = Some(sequences.into_storage());
            pool.states = states;
        }
        ParallelOutcome {
            final_writes,
            statuses,
            aborts: aborts.into_inner(),
            stats,
        }
    }

    /// Pops the next ready entry. Critical-path policy: scan the rank
    /// lanes highest-priority first (lane 0 holds the heaviest downstream
    /// chains). FIFO policy: own deque first, then the injector, then
    /// stealing from the other workers.
    fn next_entry(
        &self,
        shared: &Shared<'_>,
        local: &Worker<ReadyEntry>,
        index: usize,
    ) -> Option<ReadyEntry> {
        if self.config.scheduler == SchedulerPolicy::CriticalPath {
            for lane in &shared.lanes {
                loop {
                    match lane.steal() {
                        Steal::Success(entry) => return Some(entry),
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                }
            }
            return None;
        }
        if let Some(entry) = local.pop() {
            return Some(entry);
        }
        loop {
            match shared.injector.steal() {
                Steal::Success(entry) => return Some(entry),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        for (i, stealer) in shared.stealers.iter().enumerate() {
            if i == index {
                continue;
            }
            if let Steal::Success(entry) = stealer.steal() {
                shared.stats.steals.fetch_add(1, Ordering::Relaxed);
                return Some(entry);
            }
        }
        None
    }

    fn worker(
        &self,
        shared: &Shared<'_>,
        block_env: &BlockEnv,
        local: Worker<ReadyEntry>,
        index: usize,
    ) {
        let n = shared.txs.len();
        loop {
            if shared.finished.load(Ordering::SeqCst) == n {
                shared.idle_event.signal();
                return;
            }
            if let Some((tx, generation, lane)) = self.next_entry(shared, &local, index) {
                shared.ready_count.fetch_sub(1, Ordering::SeqCst);
                let run: Option<u32> = {
                    let mut core = shared.states[tx].core.lock();
                    if shared.generation_of(tx) != generation || core.phase != Phase::Ready {
                        None // stale queue entry
                    } else {
                        core.phase = Phase::Running;
                        core.attempts += 1;
                        if core.attempts > self.config.max_attempts {
                            // Bug guard: finalize as interrupted rather
                            // than spinning forever. Increment under the
                            // core lock, like every finish.
                            core.phase = Phase::Finished;
                            core.status = Some(ExecStatus::Interrupted);
                            let done = shared.finished.fetch_add(1, Ordering::SeqCst) + 1;
                            if done == n {
                                shared.idle_event.signal();
                            }
                            None
                        } else {
                            Some(core.attempts)
                        }
                    }
                };
                shared.note_dequeue(lane, run.is_some());
                if let Some(attempt) = run {
                    if let Some(hook) = shared.hook() {
                        hook.on_dequeue(tx, attempt);
                        // Fault injection: abort storms on demand. The
                        // cascade demotes the transaction back to Waiting
                        // and re-admits it, exactly like a real abort that
                        // lands between dequeue and first read.
                        if hook.inject_abort(tx, attempt) {
                            shared.abort_cascade(tx, Some(&local));
                            continue;
                        }
                    }
                    self.run_attempt(shared, block_env, tx, generation, &local);
                }
                continue;
            }
            // Self-heal: re-check all waiting transactions before idling
            // (covers admissions whose `allowed` effect never fired, e.g.
            // dynamically discovered keys).
            let mut admitted = false;
            for i in 0..n {
                admitted |= shared.try_admit(i, Some(&local));
            }
            if admitted {
                continue;
            }
            let seen = shared.idle_event.epoch();
            // Re-check for work after sampling the epoch: a push between
            // the failed pop above and here would otherwise be sleepable.
            if shared.ready_count.load(Ordering::SeqCst) > 0
                || shared.finished.load(Ordering::SeqCst) == n
            {
                continue;
            }
            shared.idle.fetch_add(1, Ordering::SeqCst);
            shared.stats.parks.fetch_add(1, Ordering::Relaxed);
            if let Some(hook) = shared.hook() {
                hook.on_park(None);
            }
            shared.idle_event.wait_while(seen, IDLE_PARK);
            shared.idle.fetch_sub(1, Ordering::SeqCst);
            if let Some(hook) = shared.hook() {
                hook.on_wake(None);
            }
        }
    }

    fn run_attempt(
        &self,
        shared: &Shared<'_>,
        block_env: &BlockEnv,
        tx: usize,
        generation: u32,
        local: &Worker<ReadyEntry>,
    ) {
        let transaction = &shared.txs[tx];
        let csag = &shared.csags[tx];
        let meta = &shared.metas[tx];

        let mut host = ThreadHost {
            shared,
            local: Some(local),
            tx,
            generation,
            writes: SmallMap::new(),
            adds: SmallMap::new(),
            released: false,
            meta,
            scratch: Vec::new(),
        };
        // Entry release point: the transaction cannot abort at all.
        if let Some(rp) = csag.release_points.first() {
            if rp.pc == 0 {
                let gas_left = transaction
                    .env
                    .gas_limit
                    .saturating_sub(dmvcc_vm::INTRINSIC_GAS);
                let passed = match shared.hook() {
                    Some(hook) => hook.release_gate(tx, rp.pc, gas_left, rp.gas_bound),
                    None => gas_left >= rp.gas_bound,
                };
                if passed {
                    host.released = true;
                }
            }
        }

        let status = match transaction.kind {
            TxKind::Transfer => self.run_transfer(&mut host, transaction),
            TxKind::Call => match self.analyzer.registry().code(&transaction.to()) {
                Some(code) => {
                    let params = ExecParams {
                        code: &code,
                        tx: &transaction.env,
                        block: block_env,
                        release_points: Some(&meta.release_set),
                        registry: Some(self.analyzer.registry()),
                    };
                    execute(&params, &mut host).status
                }
                // Unknown contract: nothing to execute, trivial success.
                None => ExecStatus::Success,
            },
        };

        if host.stale() {
            // Aborted while running: nothing to finalize; the abort
            // already rolled back any published versions.
            return;
        }
        match status {
            ExecStatus::Success => finalize_success(&mut host),
            ExecStatus::Interrupted => {
                // The host returned Aborted (stale generation or deadlock
                // yield); abort_cascade already handled the bookkeeping.
            }
            deterministic => finalize_deterministic_abort(&mut host, deterministic),
        }
    }

    /// Pure Ether transfer executed directly against the sequences.
    fn run_transfer(&self, host: &mut ThreadHost<'_, '_>, tx: &Transaction) -> ExecStatus {
        let from = StateKey::balance(tx.sender());
        let to = StateKey::balance(tx.to());
        let balance = match host.sload(from) {
            Ok(v) => v,
            Err(HostError::Aborted) => return ExecStatus::Interrupted,
        };
        if balance < tx.env.value {
            return ExecStatus::Reverted;
        }
        if host.sstore(from, balance - tx.env.value).is_err()
            || host.sadd(to, tx.env.value).is_err()
        {
            return ExecStatus::Interrupted;
        }
        ExecStatus::Success
    }
}

/// Publishes remaining writes, drops unfulfilled predictions, marks done.
fn finalize_success(host: &mut ThreadHost<'_, '_>) {
    let shared = host.shared;
    let tx = host.tx;
    let mut batch: Vec<PublishEntry> = host
        .writes
        .iter()
        .map(|(id, v)| (id, v, false))
        .chain(host.adds.iter().map(|(id, v)| (id, v, true)))
        .collect();
    if host.publish_batch(&mut batch).is_err() {
        return;
    }
    host.writes.clear();
    host.adds.clear();
    // Predicted writes that never materialized: drop so readers pass
    // through (mispredicted branch).
    let mut to_drop: Vec<KeyId> = {
        let core = shared.states[tx].core.lock();
        if host.stale() {
            return;
        }
        host.meta
            .predicted_wa
            .iter()
            .copied()
            .filter(|&id| !core.published.contains(id))
            .collect()
    };
    if host.drop_batch(&mut to_drop).is_err() {
        return;
    }
    shared.finish(tx, host.generation, ExecStatus::Success);
}

/// Rolls back a deterministic abort (revert / out-of-gas / code fault):
/// buffered writes are discarded; versions already published early are
/// dropped, cascading aborts to their readers (paper §IV-F case 2).
fn finalize_deterministic_abort(host: &mut ThreadHost<'_, '_>, status: ExecStatus) {
    let shared = host.shared;
    let tx = host.tx;
    host.writes.clear();
    host.adds.clear();
    let published: Vec<KeyId> = {
        let mut core = shared.states[tx].core.lock();
        if host.stale() {
            return;
        }
        let ids: Vec<KeyId> = core.published.iter().collect();
        core.published.clear();
        ids
    };
    // Mutation testing: `skip_rollback` (always false in production) leaks
    // the keys the hook names — they stay `Done` in their sequences and
    // reach the final write set even though the transaction failed.
    let mut leaked = IdSet::new();
    if let Some(hook) = shared.hook() {
        for &id in published.iter() {
            let key = shared.sequences.interner().resolve(id);
            if hook.skip_rollback(tx, &key) {
                leaked.insert(id);
            }
        }
    }
    let mut to_drop: Vec<KeyId> = published
        .into_iter()
        .filter(|&id| !leaked.contains(id))
        .collect();
    if host.drop_batch(&mut to_drop).is_err() {
        return;
    }
    // Unfulfilled predictions unblock readers.
    let mut predicted: Vec<KeyId> = host
        .meta
        .predicted_wa
        .iter()
        .copied()
        .filter(|&id| !leaked.contains(id))
        .collect();
    if host.drop_batch(&mut predicted).is_err() {
        return;
    }
    shared.finish(tx, host.generation, status);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;
    use dmvcc_vm::{calldata, contracts, CodeRegistry, TxEnv};

    const TOKEN: u64 = 800;
    const COUNTER: u64 = 801;

    fn registry() -> CodeRegistry {
        CodeRegistry::builder()
            .deploy(Address::from_u64(TOKEN), contracts::token())
            .deploy(Address::from_u64(COUNTER), contracts::counter())
            .build()
    }

    fn executor(threads: usize) -> ParallelExecutor {
        executor_with(threads, SchedulerPolicy::CriticalPath)
    }

    fn executor_with(threads: usize, scheduler: SchedulerPolicy) -> ParallelExecutor {
        ParallelExecutor::new(
            Analyzer::new(registry()),
            ParallelConfig {
                threads,
                max_attempts: 64,
                scheduler,
                pin_cores: false,
            },
        )
    }

    fn mint(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::MINT,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn transfer(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::TRANSFER,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn serial_writes(txs: &[Transaction], snapshot: &Snapshot) -> WriteSet {
        let analyzer = Analyzer::new(registry());
        crate::oracle::execute_block_serial(txs, snapshot, &analyzer, &BlockEnv::default())
            .final_writes
    }

    fn check_equivalence(txs: Vec<Transaction>, snapshot: Snapshot, threads: usize) {
        let expected = serial_writes(&txs, &snapshot);
        let outcome = executor(threads).execute_block(&txs, &snapshot, &BlockEnv::default());
        assert_eq!(
            outcome.final_writes, expected,
            "parallel result diverged from serial"
        );
    }

    #[test]
    fn empty_block() {
        let outcome = executor(2).execute_block(&[], &Snapshot::empty(), &BlockEnv::default());
        assert!(outcome.final_writes.is_empty());
        assert_eq!(outcome.aborts, 0);
    }

    #[test]
    fn independent_mints_match_serial() {
        let txs: Vec<_> = (0..16).map(|i| mint(900 + i, 10 + i, 5)).collect();
        check_equivalence(txs, Snapshot::empty(), 4);
    }

    #[test]
    fn dependent_chain_matches_serial() {
        let txs = vec![
            mint(900, 1, 100),
            transfer(1, 2, 30),
            transfer(2, 3, 10),
            transfer(3, 4, 5),
        ];
        check_equivalence(txs, Snapshot::empty(), 4);
    }

    #[test]
    fn reverting_transfer_matches_serial() {
        // tx1 tries to over-spend and reverts; the rest proceed.
        let txs = vec![mint(900, 1, 10), transfer(1, 2, 50), transfer(1, 3, 5)];
        check_equivalence(txs, Snapshot::empty(), 3);
    }

    #[test]
    fn ether_transfers_match_serial() {
        let a = Address::from_u64(1);
        let snapshot = Snapshot::from_entries([(StateKey::balance(a), U256::from(100u64))]);
        let txs: Vec<_> = (0..10)
            .map(|i| Transaction::transfer(a, Address::from_u64(10 + i), U256::from(3u64)))
            .collect();
        check_equivalence(txs, snapshot, 4);
    }

    #[test]
    fn hot_counter_contention_matches_serial() {
        let txs: Vec<_> = (0..20)
            .map(|i| {
                Transaction::call(TxEnv::call(
                    Address::from_u64(900 + i),
                    Address::from_u64(COUNTER),
                    calldata(
                        if i % 2 == 0 {
                            contracts::counter_fn::INCREMENT
                        } else {
                            contracts::counter_fn::INCREMENT_CHECKED
                        },
                        &[],
                    ),
                ))
            })
            .collect();
        check_equivalence(txs, Snapshot::empty(), 4);
    }

    #[test]
    fn single_thread_works() {
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30)];
        check_equivalence(txs, Snapshot::empty(), 1);
    }

    #[test]
    fn hidden_analysis_still_serializable() {
        // With analysis hidden entirely, execution degrades to OCC-style
        // but must stay deterministically serializable.
        let analyzer = Analyzer::with_config(
            registry(),
            dmvcc_analysis::AnalysisConfig {
                hide_fraction: 1.0,
                seed: 11,
                ..Default::default()
            },
        );
        let txs = vec![
            mint(900, 1, 100),
            transfer(1, 2, 30),
            transfer(2, 3, 10),
            mint(901, 2, 7),
        ];
        let expected = serial_writes(&txs, &Snapshot::empty());
        let exec = ParallelExecutor::new(
            analyzer,
            ParallelConfig {
                threads: 4,
                max_attempts: 64,
                scheduler: SchedulerPolicy::CriticalPath,
                pin_cores: false,
            },
        );
        let outcome = exec.execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        assert_eq!(outcome.final_writes, expected);
    }

    #[test]
    fn statuses_reported() {
        let txs = vec![mint(900, 1, 10), transfer(1, 2, 50)];
        let outcome = executor(2).execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        assert_eq!(outcome.statuses[0], ExecStatus::Success);
        assert_eq!(outcome.statuses[1], ExecStatus::Reverted);
    }

    #[test]
    fn arena_reset_reexecutes_identically() {
        // Arena-reset safety: one executor re-running the same block must
        // produce identical final writes — the second run executes entirely
        // on recycled shard storage and tx states, so any state leaking
        // across the block boundary (stale versions, uncleared waiter
        // lists, cached snapshot values) would corrupt the result.
        let txs = vec![
            mint(900, 1, 100),
            transfer(1, 2, 30),
            transfer(2, 3, 10),
            mint(901, 2, 7),
        ];
        let expected = serial_writes(&txs, &Snapshot::empty());
        let exec = executor(4);
        let first = exec.execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        let second = exec.execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        assert_eq!(first.final_writes, expected);
        assert_eq!(second.final_writes, expected);
        assert_eq!(first.statuses, second.statuses);
        // The first block starts cold; the second must report recycled
        // bytes (shard storage at minimum).
        assert_eq!(first.stats.alloc_bytes_saved, 0);
        assert!(second.stats.alloc_bytes_saved > 0);
        // Lock accounting is wired through.
        assert!(second.stats.shard_lock_acquisitions > 0);
        assert!(second.stats.publish_batches > 0);
    }

    #[test]
    fn pinned_execution_matches_serial() {
        // `pin_cores` must not change semantics (and must not fail when the
        // host rejects affinity calls — pinning failure is a soft no-op).
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30), transfer(2, 3, 10)];
        let expected = serial_writes(&txs, &Snapshot::empty());
        let exec = ParallelExecutor::new(
            Analyzer::new(registry()),
            ParallelConfig {
                threads: 2,
                max_attempts: 64,
                scheduler: SchedulerPolicy::CriticalPath,
                pin_cores: true,
            },
        );
        let outcome = exec.execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        assert_eq!(outcome.final_writes, expected);
    }

    #[test]
    fn repeated_runs_are_deterministic_in_result() {
        let txs = vec![
            mint(900, 1, 100),
            transfer(1, 2, 30),
            mint(901, 2, 5),
            transfer(2, 3, 20),
        ];
        let first = executor(4)
            .execute_block(&txs, &Snapshot::empty(), &BlockEnv::default())
            .final_writes;
        for _ in 0..5 {
            let again = executor(4)
                .execute_block(&txs, &Snapshot::empty(), &BlockEnv::default())
                .final_writes;
            assert_eq!(again, first);
        }
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        let config = ParallelConfig::default();
        let expected = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        assert_eq!(config.threads, expected);
        assert!(config.threads >= 1);
    }

    #[test]
    fn stats_track_attempts_and_publishes() {
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30)];
        let outcome = executor(2).execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        // At least one attempt per transaction, plus one re-execution per
        // abort.
        assert!(outcome.stats.attempts >= txs.len() as u64);
        assert!(outcome.stats.publishes > 0);
        // The sharded executor never broadcasts.
        assert_eq!(outcome.stats.broadcast_wakeups, 0);
    }

    #[test]
    fn matches_global_lock_executor() {
        // Differential test between the two executor generations.
        let txs: Vec<_> = (0..12)
            .map(|i| {
                if i % 3 == 0 {
                    mint(900 + i, 1 + i % 4, 50)
                } else {
                    transfer(1 + (i + 1) % 4, 1 + i % 4, 3)
                }
            })
            .collect();
        let sharded = executor(4).execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        let global = crate::GlobalLockParallelExecutor::new(
            Analyzer::new(registry()),
            ParallelConfig {
                threads: 4,
                max_attempts: 64,
                scheduler: SchedulerPolicy::CriticalPath,
                pin_cores: false,
            },
        )
        .execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        assert_eq!(sharded.final_writes, global.final_writes);
        assert_eq!(sharded.statuses, global.statuses);
    }

    #[test]
    fn fifo_policy_still_matches_serial() {
        let txs = vec![
            mint(900, 1, 100),
            transfer(1, 2, 30),
            transfer(2, 3, 10),
            mint(901, 2, 7),
        ];
        let expected = serial_writes(&txs, &Snapshot::empty());
        let outcome = executor_with(4, SchedulerPolicy::Fifo).execute_block(
            &txs,
            &Snapshot::empty(),
            &BlockEnv::default(),
        );
        assert_eq!(outcome.final_writes, expected);
    }

    #[test]
    fn stats_expose_critical_path_and_refine_time() {
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30), transfer(2, 3, 10)];
        let outcome = executor(2).execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        // A dependent chain has a critical path spanning more than one tx
        // but less than the whole block's gas, so the bound sits in
        // (1.0, n].
        assert!(outcome.stats.critical_path_gas > 0);
        assert!(outcome.stats.predicted_gas >= outcome.stats.critical_path_gas);
        assert!(outcome.stats.speedup_bound() >= 1.0);
        // `execute_block` refines C-SAGs itself and must time that phase.
        assert!(outcome.stats.refine_nanos > 0);
    }

    #[test]
    fn both_policies_agree_on_contended_block() {
        let txs: Vec<_> = (0..20)
            .map(|i| {
                if i % 4 == 0 {
                    mint(900 + i, 1 + i % 5, 40)
                } else {
                    transfer(1 + (i + 2) % 5, 1 + i % 5, 2)
                }
            })
            .collect();
        let expected = serial_writes(&txs, &Snapshot::empty());
        for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::CriticalPath] {
            let outcome = executor_with(4, policy).execute_block(
                &txs,
                &Snapshot::empty(),
                &BlockEnv::default(),
            );
            assert_eq!(
                outcome.final_writes, expected,
                "{policy:?} diverged from serial"
            );
        }
    }
}
