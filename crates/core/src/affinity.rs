//! Opt-in worker-thread core pinning (`ParallelConfig::pin_cores`).
//!
//! With more workers than cores — or a scheduler that migrates threads —
//! each worker's view of "its" shard mutexes and deque bounces between L1/L2
//! domains. Pinning worker *i* to core `i % cores` keeps a worker's
//! shard-lock cache lines and local deque resident, which is where the
//! sharded executor's hot path lives.
//!
//! Implemented directly over `sched_setaffinity(2)` — std already links
//! libc on Linux, so the raw syscall binding needs no new dependency. On
//! non-Linux targets pinning is a no-op that reports failure.

/// Maximum CPUs representable in the affinity mask (matches glibc's
/// default `cpu_set_t` of 1024 bits).
const CPU_SET_WORDS: usize = 1024 / 64;

/// Pins the calling thread to `core` (modulo the mask width). Returns
/// `true` if the kernel accepted the mask.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(core: usize) -> bool {
    extern "C" {
        // `sched_setaffinity(2)`: pid 0 = calling thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; CPU_SET_WORDS];
    let bit = core % (CPU_SET_WORDS * 64);
    mask[bit / 64] |= 1u64 << (bit % 64);
    // SAFETY: the mask buffer outlives the call and its size is passed
    // explicitly; sched_setaffinity only reads it.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux fallback: no pinning support, always reports failure.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_core: usize) -> bool {
    let _ = CPU_SET_WORDS;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_an_existing_core_succeeds() {
        // Core 0 always exists; out-of-range cores wrap via modulo, so any
        // index is accepted as long as the target core is online. Pin from
        // a scratch thread so the test runner's thread keeps its affinity.
        let ok = std::thread::spawn(|| pin_current_thread(0)).join().unwrap();
        assert!(ok);
    }
}
