//! Access sequences with write versioning and commutative merges.
//!
//! An *access sequence* `L_I` (paper Definition 4) records, per state item
//! `I` and in block order, which transactions read (ρ), write (ω), do both
//! (θ), or commutatively increment (ω̄) the item, together with each
//! operation's status ("F") and value ("Val"). It is the buffer between
//! concurrent EVM instances and the StateDB:
//!
//! - **Write versioning** (§IV-D, Algorithm 3): every write is kept as its
//!   own version, so write-write pairs never conflict; a read resolves to
//!   the version of the closest preceding transaction.
//! - **Commutative writes**: ω̄ entries store deltas that are merged onto
//!   the closest preceding full version when a read needs the value.
//! - **Aborts** (§IV-E): inserting a write that post-dates completed reads
//!   returns those readers for cascading abort; dropping a version does the
//!   same for its readers.

use std::collections::BTreeMap;

use dmvcc_primitives::U256;
use dmvcc_state::{Snapshot, StateKey, WriteSet};

/// The access type of an entry: ρ, ω, θ, or the commutative ω̄.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOp {
    /// ρ — read only.
    Read,
    /// ω — write only.
    Write,
    /// θ — both read and write.
    ReadWrite,
    /// ω̄ — commutative increment (delta merged at read/commit time).
    Add,
}

/// Lifecycle of an entry's pending operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Predicted but not yet performed ("F = N").
    Pending,
    /// Performed; `value` is valid for writes/adds ("F = true").
    Done,
    /// Resolved as never-happening (deterministic abort of the owner, or a
    /// misprediction); readers pass through to earlier versions.
    Dropped,
}

/// One entry of an access sequence.
#[derive(Debug, Clone)]
pub struct AccessEntry {
    /// Index of the owning transaction within the block.
    pub tx: usize,
    /// ρ / ω / θ / ω̄.
    pub op: AccessOp,
    /// Written value (ω, θ) or accumulated delta (ω̄) once `state == Done`.
    pub value: Option<U256>,
    /// Status of the write side.
    pub state: EntryState,
    /// Whether the read side has been performed (ρ, θ); a completed read
    /// that becomes stale triggers an abort.
    pub read_done: bool,
}

impl AccessEntry {
    fn predicted(tx: usize, op: AccessOp) -> Self {
        AccessEntry {
            tx,
            op,
            value: None,
            state: EntryState::Pending,
            read_done: false,
        }
    }

    /// `true` if this entry's write side can serve readers.
    fn is_write_like(&self) -> bool {
        matches!(self.op, AccessOp::Write | AccessOp::ReadWrite)
    }
}

/// Number of source transactions stored inline in a [`SourceList`] before
/// spilling to the heap. Reads rarely merge more than a base version plus a
/// couple of ω̄ deltas, so four slots cover the hot path allocation-free.
const INLINE_SOURCES: usize = 4;

/// The transactions whose versions a read consumed.
///
/// A small-vector replacement for the `Vec<usize>` that used to ride along
/// every [`ReadResolution::Ready`]: the first [`INLINE_SOURCES`] entries
/// live inline (no allocation — `Vec::new` for the spill buffer is free),
/// and only longer merge chains touch the heap.
#[derive(Clone, Default)]
pub struct SourceList {
    len: usize,
    inline: [usize; INLINE_SOURCES],
    spill: Vec<usize>,
}

impl SourceList {
    /// Creates an empty list (allocation-free).
    pub fn new() -> Self {
        SourceList::default()
    }

    /// Appends a source transaction index. The first spill past the inline
    /// slots draws its buffer from the block arena's spill pool
    /// ([`crate::arena::take_spill`]) instead of the allocator.
    pub fn push(&mut self, tx: usize) {
        if self.len < INLINE_SOURCES {
            self.inline[self.len] = tx;
        } else {
            if self.len == INLINE_SOURCES && self.spill.capacity() == 0 {
                self.spill = crate::arena::take_spill();
            }
            self.spill.push(tx);
        }
        self.len += 1;
    }

    /// Number of recorded sources.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no version contributed (snapshot-only read).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the sources in push order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.inline[..self.len.min(INLINE_SOURCES)]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }
}

impl Drop for SourceList {
    fn drop(&mut self) {
        if self.spill.capacity() > 0 {
            crate::arena::recycle_spill(std::mem::take(&mut self.spill));
        }
    }
}

impl std::fmt::Debug for SourceList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for SourceList {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for SourceList {}

impl PartialEq<Vec<usize>> for SourceList {
    fn eq(&self, other: &Vec<usize>) -> bool {
        self.len == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl FromIterator<usize> for SourceList {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut list = SourceList::new();
        for tx in iter {
            list.push(tx);
        }
        list
    }
}

/// How a read resolves against a sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadResolution {
    /// The value is available: base version (or snapshot) plus merged
    /// deltas. `sources` lists the transactions whose versions were
    /// consumed (base writer and add-ers), for dependency tracking.
    Ready {
        /// The merged value the reader observes.
        value: U256,
        /// Transactions whose versions contributed (empty = snapshot only).
        sources: SourceList,
    },
    /// A preceding predicted write (or delta) is not yet available; the
    /// reader must wait for `writer`.
    Blocked {
        /// The transaction whose pending version blocks this read.
        writer: usize,
    },
}

/// How a read resolves on the sharded executor's fast path: the merged
/// value only, without the [`SourceList`] dependency record.
///
/// The sharded executor tracks dependencies through the waiter index and
/// abort generations, never through `sources`, so its reads skip building
/// the list entirely ([`AccessSequence::resolve_read_value`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastResolution {
    /// The merged value the reader observes.
    Ready(U256),
    /// A preceding predicted write (or delta) is not yet available.
    Blocked {
        /// The transaction whose pending version blocks this read.
        writer: usize,
    },
}

/// Outcome of [`AccessSequence::version_write`] — the paper's Algorithm 3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionWriteEffect {
    /// Readers of this version that had not yet read: they may now proceed.
    pub allowed: Vec<usize>,
    /// Readers that already consumed a now-stale version: abort them.
    pub aborted: Vec<usize>,
}

/// The access sequence of a single state item.
#[derive(Debug, Clone, Default)]
pub struct AccessSequence {
    /// Entries sorted by transaction index (at most one per transaction).
    entries: Vec<AccessEntry>,
}

impl AccessSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        AccessSequence::default()
    }

    /// The entries in block order (read-only view).
    pub fn entries(&self) -> &[AccessEntry] {
        &self.entries
    }

    fn position(&self, tx: usize) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&tx, |e| e.tx)
    }

    /// Registers a predicted access from a C-SAG. Merges with an existing
    /// prediction for the same transaction (read + write → θ).
    pub fn predict(&mut self, tx: usize, op: AccessOp) {
        match self.position(tx) {
            Ok(i) => {
                let existing = &mut self.entries[i];
                existing.op = merge_ops(existing.op, op);
            }
            Err(i) => self.entries.insert(i, AccessEntry::predicted(tx, op)),
        }
    }

    /// Resolves the value transaction `tx` should read (paper §III-B2):
    /// the closest preceding finished write (or the snapshot), plus all
    /// finished ω̄ deltas in between.
    ///
    /// Does **not** mark the read as done — call [`Self::mark_read`] once
    /// the reader actually consumes the value.
    pub fn resolve_read(&self, tx: usize, key: &StateKey, snapshot: &Snapshot) -> ReadResolution {
        let upper = match self.position(tx) {
            Ok(i) => i,
            Err(i) => i,
        };
        let mut delta = U256::ZERO;
        let mut sources = SourceList::new();
        for entry in self.entries[..upper].iter().rev() {
            match entry.op {
                AccessOp::Read => continue,
                AccessOp::Add => match entry.state {
                    EntryState::Done => {
                        delta = delta.wrapping_add(entry.value.unwrap_or(U256::ZERO));
                        sources.push(entry.tx);
                    }
                    EntryState::Pending => {
                        return ReadResolution::Blocked { writer: entry.tx };
                    }
                    EntryState::Dropped => continue,
                },
                AccessOp::Write | AccessOp::ReadWrite => match entry.state {
                    EntryState::Done => {
                        let base = entry.value.unwrap_or(U256::ZERO);
                        sources.push(entry.tx);
                        return ReadResolution::Ready {
                            value: base.wrapping_add(delta),
                            sources,
                        };
                    }
                    EntryState::Pending => {
                        return ReadResolution::Blocked { writer: entry.tx };
                    }
                    EntryState::Dropped => continue,
                },
            }
        }
        ReadResolution::Ready {
            value: snapshot.get(key).wrapping_add(delta),
            sources,
        }
    }

    /// Allocation-free variant of [`Self::resolve_read`]: identical walk and
    /// blocking behavior, but returns only the merged value. `base` supplies
    /// the snapshot value lazily so snapshot-miss reads that resolve to a
    /// version never probe the snapshot at all.
    pub fn resolve_read_value(&self, tx: usize, base: impl FnOnce() -> U256) -> FastResolution {
        let upper = match self.position(tx) {
            Ok(i) => i,
            Err(i) => i,
        };
        let mut delta = U256::ZERO;
        for entry in self.entries[..upper].iter().rev() {
            match entry.op {
                AccessOp::Read => continue,
                AccessOp::Add => match entry.state {
                    EntryState::Done => {
                        delta = delta.wrapping_add(entry.value.unwrap_or(U256::ZERO));
                    }
                    EntryState::Pending => {
                        return FastResolution::Blocked { writer: entry.tx };
                    }
                    EntryState::Dropped => continue,
                },
                AccessOp::Write | AccessOp::ReadWrite => match entry.state {
                    EntryState::Done => {
                        let base = entry.value.unwrap_or(U256::ZERO);
                        return FastResolution::Ready(base.wrapping_add(delta));
                    }
                    EntryState::Pending => {
                        return FastResolution::Blocked { writer: entry.tx };
                    }
                    EntryState::Dropped => continue,
                },
            }
        }
        FastResolution::Ready(base().wrapping_add(delta))
    }

    /// Empties the sequence, keeping the entry buffer's capacity — block
    /// arena reuse ([`crate::ShardedSequences`] recycles shard storage
    /// across blocks).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Heap bytes retained by the entry buffer (arena accounting).
    pub fn retained_bytes(&self) -> u64 {
        (self.entries.capacity() * std::mem::size_of::<AccessEntry>()) as u64
    }

    /// Marks transaction `tx`'s read side as performed (inserting a ρ entry
    /// if the read was not predicted).
    pub fn mark_read(&mut self, tx: usize) {
        match self.position(tx) {
            Ok(i) => self.entries[i].read_done = true,
            Err(i) => {
                let mut entry = AccessEntry::predicted(tx, AccessOp::Read);
                entry.read_done = true;
                self.entries.insert(i, entry);
            }
        }
    }

    /// The paper's Algorithm 3 (`Version_Write`): records the value written
    /// by `tx` (inserting an ω entry if unpredicted, upgrading ρ → θ), and
    /// returns which later readers of this version may proceed (`allowed`)
    /// and which already read a stale version (`aborted`).
    ///
    /// Pass `delta = true` for a commutative ω̄ value.
    pub fn version_write(&mut self, tx: usize, value: U256, delta: bool) -> VersionWriteEffect {
        let pos = match self.position(tx) {
            Ok(i) => {
                let entry = &mut self.entries[i];
                if delta {
                    // A delta folds onto whatever version this transaction
                    // already holds (repeated adds accumulate; an add after
                    // the transaction's own full write extends that write).
                    // A dropped version is void: the delta starts fresh.
                    if entry.op == AccessOp::Read || entry.state == EntryState::Dropped {
                        entry.op = AccessOp::Add;
                    }
                    let current = match entry.state {
                        EntryState::Done => entry.value.unwrap_or(U256::ZERO),
                        _ => U256::ZERO,
                    };
                    entry.value = Some(current.wrapping_add(value));
                } else {
                    entry.op = merge_ops(entry.op, AccessOp::Write);
                    entry.value = Some(value);
                }
                entry.state = EntryState::Done;
                i
            }
            Err(i) => {
                let mut entry = AccessEntry::predicted(
                    tx,
                    if delta {
                        AccessOp::Add
                    } else {
                        AccessOp::Write
                    },
                );
                entry.value = Some(value);
                entry.state = EntryState::Done;
                self.entries.insert(i, entry);
                i
            }
        };
        self.downstream_effect(pos)
    }

    /// Drops transaction `tx`'s version (deterministic abort, rollback of a
    /// misprediction, or the `null` write of the paper's Algorithm 4),
    /// returning readers that consumed it and must abort.
    pub fn drop_version(&mut self, tx: usize) -> VersionWriteEffect {
        let Ok(pos) = self.position(tx) else {
            return VersionWriteEffect::default();
        };
        self.entries[pos].state = EntryState::Dropped;
        self.entries[pos].value = None;
        self.downstream_effect(pos)
    }

    /// Resets `tx`'s entry to pending (re-execution of an aborted
    /// transaction re-announces its predicted accesses), returning affected
    /// downstream readers.
    pub fn reset(&mut self, tx: usize) -> VersionWriteEffect {
        let Ok(pos) = self.position(tx) else {
            return VersionWriteEffect::default();
        };
        let entry = &mut self.entries[pos];
        entry.state = EntryState::Pending;
        entry.value = None;
        entry.read_done = false;
        if entry.is_write_like() || entry.op == AccessOp::Add {
            self.downstream_effect(pos)
        } else {
            VersionWriteEffect::default()
        }
    }

    /// Rolls back `tx`'s entry for a key whose write was *not* predicted:
    /// the dynamically published version (if any) becomes `Dropped` rather
    /// than `Pending` — the re-executed attempt may never write this key
    /// again, and a pending entry nothing will ever fulfill wedges every
    /// later reader (found by DST schedule fuzzing). A consumed read on
    /// the entry is cleared exactly like [`Self::reset`]; if the re-run
    /// does write the key again, [`Self::version_write`] revives the
    /// dropped entry in place.
    pub fn rollback_unpredicted(&mut self, tx: usize) -> VersionWriteEffect {
        let Ok(pos) = self.position(tx) else {
            return VersionWriteEffect::default();
        };
        let entry = &mut self.entries[pos];
        entry.read_done = false;
        if entry.is_write_like() || entry.op == AccessOp::Add {
            entry.state = EntryState::Dropped;
            entry.value = None;
            self.downstream_effect(pos)
        } else {
            VersionWriteEffect::default()
        }
    }

    /// Scans forward from `pos` classifying affected readers: readers whose
    /// resolution includes the version at `pos` are `allowed` (if still
    /// waiting) or `aborted` (if they already read). The scan stops at the
    /// next full write (its readers observe that version instead); ω̄
    /// entries are transparent.
    ///
    /// The stale-read check keys on `read_done` for *every* entry op, not
    /// just ρ/θ: [`Self::mark_read`] records unpredicted reads on existing
    /// ω/ω̄ entries without changing their op, so a pure-write or add entry
    /// can carry a consumed read that this version invalidates.
    fn downstream_effect(&self, pos: usize) -> VersionWriteEffect {
        let mut effect = VersionWriteEffect::default();
        for entry in &self.entries[pos + 1..] {
            if entry.read_done {
                effect.aborted.push(entry.tx);
            } else if matches!(entry.op, AccessOp::Read | AccessOp::ReadWrite) {
                effect.allowed.push(entry.tx);
            }
            // A non-dropped full write takes over for later readers.
            if matches!(entry.op, AccessOp::Write | AccessOp::ReadWrite)
                && entry.state != EntryState::Dropped
            {
                break;
            }
        }
        effect
    }

    /// The committed value of this item after all transactions finish: the
    /// last non-dropped full write merged with subsequent deltas, or
    /// `None` if only the snapshot value (plus deltas) applies — in which
    /// case the merged delta is returned separately.
    pub(crate) fn final_value(&self, key: &StateKey, snapshot: &Snapshot) -> Option<U256> {
        let mut delta = U256::ZERO;
        let mut any = false;
        for entry in self.entries.iter().rev() {
            match entry.op {
                AccessOp::Read => continue,
                AccessOp::Add => {
                    if entry.state == EntryState::Done {
                        delta = delta.wrapping_add(entry.value.unwrap_or(U256::ZERO));
                        any = true;
                    }
                }
                AccessOp::Write | AccessOp::ReadWrite => {
                    if entry.state == EntryState::Done {
                        return Some(entry.value.unwrap_or(U256::ZERO).wrapping_add(delta));
                    }
                }
            }
        }
        if any {
            Some(snapshot.get(key).wrapping_add(delta))
        } else {
            None
        }
    }
}

fn merge_ops(a: AccessOp, b: AccessOp) -> AccessOp {
    use AccessOp::*;
    match (a, b) {
        (Read, Read) => Read,
        (Read, Write) | (Write, Read) | (ReadWrite, _) | (_, ReadWrite) => ReadWrite,
        (Write, Write) => Write,
        // A full write subsumes deltas for ordering purposes.
        (Add, Write) | (Write, Add) => ReadWrite,
        (Add, Add) => Add,
        (Add, Read) | (Read, Add) => ReadWrite,
    }
}

/// All access sequences of one block (`M_l` in the paper).
#[derive(Debug, Clone, Default)]
pub struct AccessSequences {
    sequences: BTreeMap<StateKey, AccessSequence>,
}

impl AccessSequences {
    /// Creates an empty set.
    pub fn new() -> Self {
        AccessSequences::default()
    }

    /// The sequence for `key`, creating it on first use.
    pub fn sequence_mut(&mut self, key: StateKey) -> &mut AccessSequence {
        self.sequences.entry(key).or_default()
    }

    /// The sequence for `key`, if any access was recorded or predicted.
    pub fn sequence(&self, key: &StateKey) -> Option<&AccessSequence> {
        self.sequences.get(key)
    }

    /// Iterates over all (key, sequence) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&StateKey, &AccessSequence)> {
        self.sequences.iter()
    }

    /// Number of distinct state items.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// `true` if no state item was touched.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// The commit-phase flush (paper Algorithm 1 line 20): the final write
    /// of every sequence, merged with trailing deltas, as a [`WriteSet`].
    ///
    /// Writes whose value equals the snapshot value are omitted — they are
    /// no-ops for both the snapshot map and the trie, and omitting them
    /// keeps this flush byte-identical with the serial executor's.
    pub fn final_writes(&self, snapshot: &Snapshot) -> WriteSet {
        let mut writes = WriteSet::new();
        for (key, sequence) in &self.sequences {
            if let Some(value) = sequence.final_value(key, snapshot) {
                if value != snapshot.get(key) {
                    writes.insert(*key, value);
                }
            }
        }
        writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;

    fn key() -> StateKey {
        StateKey::storage(Address::from_u64(1), U256::from(7u64))
    }

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    #[test]
    fn read_with_no_writes_resolves_to_snapshot() {
        let seq = AccessSequence::new();
        let snapshot = Snapshot::from_entries([(key(), u(55))]);
        match seq.resolve_read(3, &key(), &snapshot) {
            ReadResolution::Ready { value, sources } => {
                assert_eq!(value, u(55));
                assert!(sources.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_blocks_on_pending_predicted_write() {
        let mut seq = AccessSequence::new();
        seq.predict(1, AccessOp::Write);
        seq.predict(3, AccessOp::Read);
        assert_eq!(
            seq.resolve_read(3, &key(), &Snapshot::empty()),
            ReadResolution::Blocked { writer: 1 }
        );
    }

    #[test]
    fn read_sees_closest_preceding_finished_write() {
        let mut seq = AccessSequence::new();
        seq.predict(1, AccessOp::Write);
        seq.predict(5, AccessOp::Write);
        seq.version_write(1, u(10), false);
        seq.version_write(5, u(50), false);
        // tx 3 reads tx 1's version, not tx 5's (versioning!).
        match seq.resolve_read(3, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, sources } => {
                assert_eq!(value, u(10));
                assert_eq!(sources, vec![1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // tx 7 reads tx 5's version.
        match seq.resolve_read(7, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, u(50)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn own_write_is_not_read_back() {
        // resolve_read(tx) looks strictly before tx: the executor handles
        // read-own-write via its local buffer W, as in Algorithm 1.
        let mut seq = AccessSequence::new();
        seq.version_write(3, u(30), false);
        match seq.resolve_read(3, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, U256::ZERO),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adds_merge_onto_base_version() {
        let mut seq = AccessSequence::new();
        seq.version_write(1, u(100), false);
        seq.version_write(2, u(5), true);
        seq.version_write(4, u(7), true);
        match seq.resolve_read(6, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, sources } => {
                assert_eq!(value, u(112));
                assert_eq!(sources.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A reader between the adds sees only the first delta.
        match seq.resolve_read(3, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, u(105)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adds_merge_onto_snapshot_when_no_write() {
        let mut seq = AccessSequence::new();
        seq.version_write(2, u(5), true);
        let snapshot = Snapshot::from_entries([(key(), u(100))]);
        match seq.resolve_read(4, &key(), &snapshot) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, u(105)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn read_blocks_on_pending_add() {
        let mut seq = AccessSequence::new();
        seq.predict(2, AccessOp::Add);
        assert_eq!(
            seq.resolve_read(4, &key(), &Snapshot::empty()),
            ReadResolution::Blocked { writer: 2 }
        );
    }

    #[test]
    fn version_write_allows_waiting_readers() {
        let mut seq = AccessSequence::new();
        seq.predict(1, AccessOp::Write);
        seq.predict(3, AccessOp::Read);
        seq.predict(4, AccessOp::Read);
        let effect = seq.version_write(1, u(10), false);
        assert_eq!(effect.allowed, vec![3, 4]);
        assert!(effect.aborted.is_empty());
    }

    #[test]
    fn version_write_aborts_completed_stale_reads() {
        // The Fig. 5 scenario: T1 writes, T3 reads it, then T2's write
        // appears (undetected before) → T3 must abort.
        let mut seq = AccessSequence::new();
        seq.version_write(1, u(10), false);
        seq.mark_read(3);
        let effect = seq.version_write(2, u(20), false);
        assert_eq!(effect.aborted, vec![3]);
        assert!(effect.allowed.is_empty());
    }

    #[test]
    fn version_write_scan_stops_at_next_write() {
        let mut seq = AccessSequence::new();
        seq.predict(3, AccessOp::Read);
        seq.predict(5, AccessOp::Write);
        seq.predict(7, AccessOp::Read);
        let effect = seq.version_write(1, u(10), false);
        // Reader 3 is mine; reader 7 belongs to writer 5.
        assert_eq!(effect.allowed, vec![3]);
    }

    #[test]
    fn version_write_scan_passes_adds_and_dropped() {
        let mut seq = AccessSequence::new();
        seq.predict(2, AccessOp::Add);
        seq.predict(4, AccessOp::Write);
        seq.predict(6, AccessOp::Read);
        seq.drop_version(4);
        let effect = seq.version_write(1, u(10), false);
        // The dropped write at 4 is transparent; 6 reads my version.
        assert_eq!(effect.allowed, vec![6]);
    }

    #[test]
    fn version_write_aborts_stale_read_on_write_entry() {
        // The seed-82 shape: tx 8 holds a predicted ω entry but its read
        // was unpredicted (`mark_read` flags it without changing the op).
        // When tx 3's unpredicted write surfaces upstream, tx 8's consumed
        // read is stale and must abort — the scan cannot simply stop at
        // tx 8's write barrier.
        let mut seq = AccessSequence::new();
        seq.predict(8, AccessOp::Write);
        seq.mark_read(8);
        seq.version_write(8, u(2), false);
        let effect = seq.version_write(3, u(26), false);
        assert_eq!(effect.aborted, vec![8]);
        assert!(effect.allowed.is_empty());
    }

    #[test]
    fn version_write_aborts_stale_read_on_add_entry() {
        // Same with an ω̄ entry: a check-then-increment transaction reads
        // the key it adds to; a new upstream version invalidates the read
        // even though the add itself is commutative.
        let mut seq = AccessSequence::new();
        seq.predict(5, AccessOp::Add);
        seq.mark_read(5);
        seq.version_write(5, u(1), true);
        let effect = seq.version_write(2, u(40), false);
        assert_eq!(effect.aborted, vec![5]);
    }

    #[test]
    fn version_write_scan_still_stops_at_stale_write_barrier() {
        // The stale writer aborts, but its (about-to-be-reset) write still
        // bounds the scan: readers past it belong to that version and are
        // handled by the cascade's own reset effect.
        let mut seq = AccessSequence::new();
        seq.predict(4, AccessOp::Write);
        seq.mark_read(4);
        seq.version_write(4, u(7), false);
        seq.mark_read(6);
        let effect = seq.version_write(1, u(3), false);
        assert_eq!(effect.aborted, vec![4]);
    }

    #[test]
    fn theta_upgrade_on_read_then_write() {
        let mut seq = AccessSequence::new();
        seq.predict(2, AccessOp::Read);
        seq.version_write(2, u(9), false);
        assert_eq!(seq.entries()[0].op, AccessOp::ReadWrite);
        assert_eq!(seq.entries()[0].value, Some(u(9)));
    }

    #[test]
    fn theta_read_side_aborts_like_reads() {
        let mut seq = AccessSequence::new();
        seq.version_write(1, u(10), false);
        seq.predict(3, AccessOp::ReadWrite);
        seq.mark_read(3);
        seq.version_write(3, u(30), false);
        // tx 2's late write invalidates tx 3's read.
        let effect = seq.version_write(2, u(20), false);
        assert_eq!(effect.aborted, vec![3]);
    }

    #[test]
    fn drop_version_aborts_consumers() {
        let mut seq = AccessSequence::new();
        seq.version_write(1, u(10), false);
        seq.mark_read(2);
        let effect = seq.drop_version(1);
        assert_eq!(effect.aborted, vec![2]);
        // After the drop, reads pass through to the snapshot.
        let snapshot = Snapshot::from_entries([(key(), u(99))]);
        match seq.resolve_read(2, &key(), &snapshot) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, u(99)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reset_returns_entry_to_pending() {
        let mut seq = AccessSequence::new();
        seq.predict(1, AccessOp::Write);
        seq.version_write(1, u(10), false);
        seq.reset(1);
        assert_eq!(
            seq.resolve_read(3, &key(), &Snapshot::empty()),
            ReadResolution::Blocked { writer: 1 }
        );
    }

    #[test]
    fn rollback_unpredicted_drops_instead_of_pending() {
        // A dynamically discovered write (no prediction) aborts: the entry
        // must not return to Pending — the re-run may never write the key
        // again, and nothing else would ever fulfill or drop it.
        let mut seq = AccessSequence::new();
        seq.version_write(1, u(10), false);
        seq.rollback_unpredicted(1);
        match seq.resolve_read(3, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, U256::ZERO),
            blocked => panic!("reader wedged on rolled-back dynamic write: {blocked:?}"),
        }
        // If the re-run does write again, the dropped entry revives.
        seq.version_write(1, u(20), false);
        match seq.resolve_read(3, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, u(20)),
            blocked => panic!("revived write not visible: {blocked:?}"),
        }
    }

    #[test]
    fn rollback_unpredicted_clears_consumed_read() {
        let mut seq = AccessSequence::new();
        seq.predict(2, AccessOp::Read);
        seq.mark_read(2);
        seq.rollback_unpredicted(2);
        // The cleared read is no longer a stale-read abort candidate.
        let effect = seq.version_write(1, u(5), false);
        assert!(effect.aborted.is_empty());
        assert_eq!(effect.allowed, vec![2]);
    }

    #[test]
    fn repeated_adds_by_same_tx_accumulate() {
        let mut seq = AccessSequence::new();
        seq.version_write(1, u(5), true);
        seq.version_write(1, u(7), true);
        match seq.resolve_read(2, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, .. } => assert_eq!(value, u(12)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn final_writes_take_last_version_plus_deltas() {
        let mut sequences = AccessSequences::new();
        let k = key();
        let seq = sequences.sequence_mut(k);
        seq.version_write(1, u(10), false);
        seq.version_write(3, u(30), false);
        seq.version_write(5, u(4), true);
        let snapshot = Snapshot::empty();
        let writes = sequences.final_writes(&snapshot);
        assert_eq!(writes.get(&k), Some(&u(34)));
    }

    #[test]
    fn final_writes_deltas_only_use_snapshot_base() {
        let mut sequences = AccessSequences::new();
        let k = key();
        sequences.sequence_mut(k).version_write(2, u(5), true);
        let snapshot = Snapshot::from_entries([(k, u(100))]);
        let writes = sequences.final_writes(&snapshot);
        assert_eq!(writes.get(&k), Some(&u(105)));
    }

    #[test]
    fn final_writes_skip_read_only_and_dropped() {
        let mut sequences = AccessSequences::new();
        let k = key();
        {
            let seq = sequences.sequence_mut(k);
            seq.mark_read(1);
            seq.version_write(2, u(20), false);
            seq.drop_version(2);
        }
        let writes = sequences.final_writes(&Snapshot::empty());
        assert!(writes.is_empty());
    }

    #[test]
    fn unpredicted_read_inserts_entry() {
        let mut seq = AccessSequence::new();
        seq.mark_read(4);
        assert_eq!(seq.entries().len(), 1);
        assert_eq!(seq.entries()[0].op, AccessOp::Read);
        assert!(seq.entries()[0].read_done);
    }

    #[test]
    fn source_list_spills_past_inline_slots_via_pool() {
        // Regression for the 5+-source case: a base write plus five deltas
        // overflows the four inline slots; the spill buffer must come from
        // (and return to) the block arena's pool, and iteration order must
        // cover every source exactly once.
        crate::arena::recycle_spill(Vec::with_capacity(8));
        let mut seq = AccessSequence::new();
        seq.version_write(0, u(100), false);
        for tx in 1..=5 {
            seq.version_write(tx, u(1), true);
        }
        let pool_before = crate::arena::spill_pool_len();
        match seq.resolve_read(9, &key(), &Snapshot::empty()) {
            ReadResolution::Ready { value, sources } => {
                assert_eq!(value, u(105));
                assert_eq!(sources.len(), 6);
                let mut seen: Vec<usize> = sources.iter().collect();
                seen.sort_unstable();
                assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
                // The spill drew from the pool...
                assert_eq!(crate::arena::spill_pool_len(), pool_before - 1);
                drop(sources);
            }
            other => panic!("unexpected {other:?}"),
        }
        // ...and went back on drop.
        assert_eq!(crate::arena::spill_pool_len(), pool_before);
    }

    #[test]
    fn fast_resolve_matches_resolve_read() {
        // resolve_read_value must agree with resolve_read on every state a
        // sequence can reach: pending/done/dropped writes, adds, resets.
        let snapshot = Snapshot::from_entries([(key(), u(1000))]);
        let mut seq = AccessSequence::new();
        let check = |seq: &AccessSequence, tx: usize| {
            let slow = seq.resolve_read(tx, &key(), &snapshot);
            let fast = seq.resolve_read_value(tx, || snapshot.get(&key()));
            match (slow, fast) {
                (ReadResolution::Ready { value, .. }, FastResolution::Ready(fast_value)) => {
                    assert_eq!(value, fast_value)
                }
                (
                    ReadResolution::Blocked { writer },
                    FastResolution::Blocked {
                        writer: fast_writer,
                    },
                ) => assert_eq!(writer, fast_writer),
                (slow, fast) => panic!("diverged: {slow:?} vs {fast:?}"),
            }
        };
        for tx in 0..10 {
            check(&seq, tx);
        }
        seq.predict(1, AccessOp::Write);
        seq.predict(3, AccessOp::Add);
        seq.predict(6, AccessOp::Write);
        for tx in 0..10 {
            check(&seq, tx);
        }
        seq.version_write(1, u(10), false);
        seq.version_write(3, u(5), true);
        for tx in 0..10 {
            check(&seq, tx);
        }
        seq.version_write(6, u(60), false);
        seq.drop_version(1);
        for tx in 0..10 {
            check(&seq, tx);
        }
        seq.reset(6);
        for tx in 0..10 {
            check(&seq, tx);
        }
    }

    #[test]
    fn clear_keeps_capacity_for_reuse() {
        let mut seq = AccessSequence::new();
        for tx in 0..8 {
            seq.predict(tx, AccessOp::Read);
        }
        let bytes = seq.retained_bytes();
        assert!(bytes >= (8 * std::mem::size_of::<AccessEntry>()) as u64);
        seq.clear();
        assert!(seq.entries().is_empty());
        assert_eq!(seq.retained_bytes(), bytes);
    }

    #[test]
    fn predict_merges_ops() {
        let mut seq = AccessSequence::new();
        seq.predict(1, AccessOp::Read);
        seq.predict(1, AccessOp::Write);
        assert_eq!(seq.entries()[0].op, AccessOp::ReadWrite);
        let mut seq2 = AccessSequence::new();
        seq2.predict(1, AccessOp::Add);
        seq2.predict(1, AccessOp::Add);
        assert_eq!(seq2.entries()[0].op, AccessOp::Add);
        assert_eq!(seq2.entries().len(), 1);
    }
}
