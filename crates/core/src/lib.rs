//! DMVCC — deterministic multi-version concurrency control for smart
//! contract execution (the paper's core contribution).
//!
//! The crate provides:
//!
//! - [`AccessSequence`]/[`AccessSequences`]: the per-state-item version
//!   buffers with write versioning and commutative merges (Definition 4,
//!   Algorithm 3).
//! - [`execute_block_serial`]: the reference serial executor, which doubles
//!   as the trace oracle for virtual-time scheduling.
//! - [`simulate_dmvcc`]: the DMVCC scheduler in virtual time (gas), with
//!   feature toggles for early-write visibility, commutative writes and
//!   write versioning — the quantities behind the paper's figures.
//! - [`ParallelExecutor`]: a real multi-threaded executor implementing
//!   Algorithms 1–4 over [`ShardedSequences`] (per-shard locks, a reverse
//!   waiter index for targeted wakeups, and a work-stealing ready queue),
//!   validated against the serial state root.
//! - [`GlobalLockParallelExecutor`]: the first-generation executor (one
//!   global mutex plus condvar broadcasts), kept as a differential-testing
//!   partner and as the "before" side of the scaling benchmarks.
//! - [`StmExecutor`]: a Block-STM-style optimistic executor (multi-version
//!   map over interned keys, optimistic execution, value-based validation
//!   in serial order) that needs no access predictions at all, plus
//!   [`HybridExecutor`], which routes well-predicted transactions through
//!   the sharded predictive engine and strips the predictions of
//!   speculative/unanalyzable ones so they run optimistically inside the
//!   same block execution.
//! - [`SchedHook`]: the observation/perturbation surface both threaded
//!   executors expose at every scheduling decision point, used by the
//!   `dmvcc-dst` crate for deterministic schedule fuzzing and fault
//!   injection (no-op and branch-predicted-away in production).
//!
//! # Examples
//!
//! ```
//! use dmvcc_primitives::{Address, U256};
//! use dmvcc_state::Snapshot;
//! use dmvcc_vm::{CodeRegistry, Transaction};
//! use dmvcc_analysis::Analyzer;
//! use dmvcc_core::{build_csags, execute_block_serial, simulate_dmvcc, DmvccConfig};
//!
//! let analyzer = Analyzer::new(CodeRegistry::default());
//! let a = Address::from_u64(1);
//! let snapshot = Snapshot::from_entries([
//!     (dmvcc_state::StateKey::balance(a), U256::from(100u64)),
//! ]);
//! let block: Vec<Transaction> = (0..4)
//!     .map(|i| Transaction::transfer(a, Address::from_u64(2 + i), U256::ONE))
//!     .collect();
//! let env = Default::default();
//! let trace = execute_block_serial(&block, &snapshot, &analyzer, &env);
//! let csags = build_csags(&block, &snapshot, &analyzer, &env);
//! let report = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(4));
//! assert!(report.speedup() >= 1.0);
//! ```

#![warn(missing_docs)]

mod access;
mod affinity;
mod arena;
mod hook;
mod oracle;
mod parallel;
mod parallel_global;
mod parallel_stm;
mod pipeline;
mod rank;
mod sharded;
mod sim;
mod simulator;

pub use access::{
    AccessEntry, AccessOp, AccessSequence, AccessSequences, EntryState, FastResolution,
    ReadResolution, SourceList, VersionWriteEffect,
};
pub use affinity::pin_current_thread;
pub use arena::{recycle_spill, spill_pool_len, take_spill, IdSet, SmallMap};
pub use hook::{NoopHook, SchedHook};
pub use oracle::{build_csags, execute_block_serial, BlockTrace, ReadRecord, TxTrace};
pub use parallel::{ExecutorStats, ParallelConfig, ParallelExecutor, ParallelOutcome};
pub use parallel_global::GlobalLockParallelExecutor;
pub use parallel_stm::{HybridExecutor, StmExecutor};
pub use pipeline::{refine_csags, BlockPipeline, PipelineStats};
pub use rank::{BlockDag, SchedulerPolicy, TxRank, NUM_LANES};
pub use sharded::{Shard, ShardedSequences, DEFAULT_SHARDS};
pub use sim::{SimReport, ThreadTimeline};
pub use simulator::{simulate_dmvcc, DmvccConfig};
