//! Block-arena memory recycling for the hot execution path.
//!
//! The sharded executor used to pay the allocator on every block: fresh
//! shard tables, fresh per-transaction scheduling state, fresh spill
//! vectors for long [`crate::SourceList`] merge chains, and fresh
//! `HashSet`s for touched/published key tracking. This module provides the
//! recycled replacements:
//!
//! - a process-wide **spill-buffer pool** ([`take_spill`]/[`recycle_spill`])
//!   that `SourceList` draws from when a read merges more than its four
//!   inline sources, returning buffers on drop instead of freeing them;
//! - [`IdSet`], a growable bitset over dense [`dmvcc_state::KeyId`]s that
//!   replaces the `HashSet<StateKey>` touched/published sets (insert and
//!   contains are a shift and a mask, clear keeps capacity);
//! - [`SmallMap`], a sorted id→value vector replacing the `BTreeMap`
//!   write/add buffers of a running transaction (blocks touch a handful of
//!   keys per tx; binary search on a dense vector beats tree nodes).
//!
//! The executor-level pools (shard storage, per-tx states) live next to
//! their types in `sharded.rs` / `parallel.rs`; together with this module
//! they form the "block arena": allocations made for block *N* are reset
//! wholesale and serve block *N+1*. The bytes served from recycled memory
//! are reported as `ExecutorStats::alloc_bytes_saved`.

use std::cell::RefCell;

use dmvcc_primitives::U256;
use dmvcc_state::KeyId;

/// Upper bound on pooled spill buffers per thread; beyond this, buffers are
/// genuinely freed (a block with thousands of long merge chains should not
/// pin that memory forever).
const SPILL_POOL_CAP: usize = 64;

thread_local! {
    static SPILL_POOL: RefCell<Vec<Vec<usize>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a recycled spill buffer from the thread-local pool (empty, but with
/// its previous capacity), or a fresh `Vec` if the pool is dry.
pub fn take_spill() -> Vec<usize> {
    SPILL_POOL.with(|pool| pool.borrow_mut().pop().unwrap_or_default())
}

/// Returns a spill buffer to the thread-local pool for reuse.
pub fn recycle_spill(mut buffer: Vec<usize>) {
    if buffer.capacity() == 0 {
        return;
    }
    buffer.clear();
    SPILL_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < SPILL_POOL_CAP {
            pool.push(buffer);
        }
    });
}

/// Number of spill buffers currently pooled on this thread (test/bench
/// visibility).
pub fn spill_pool_len() -> usize {
    SPILL_POOL.with(|pool| pool.borrow().len())
}

/// A growable bitset over dense [`KeyId`]s.
///
/// Replaces `HashSet<StateKey>` for per-transaction touched/published
/// tracking: O(1) insert/contains without hashing, and `clear` retains the
/// word buffer so re-executions and recycled blocks allocate nothing.
#[derive(Debug, Default, Clone)]
pub struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IdSet::default()
    }

    /// Inserts `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: KeyId) -> bool {
        let index = id.index();
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (index % 64);
        if self.words[word] & bit != 0 {
            return false;
        }
        self.words[word] |= bit;
        self.len += 1;
        true
    }

    /// `true` if `id` is in the set.
    pub fn contains(&self, id: KeyId) -> bool {
        let index = id.index();
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no id has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the set, keeping the word buffer for reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Heap bytes retained by the word buffer (arena accounting).
    pub fn retained_bytes(&self) -> u64 {
        (self.words.capacity() * std::mem::size_of::<u64>()) as u64
    }

    /// Iterates the contained ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = KeyId> + '_ {
        self.words.iter().enumerate().flat_map(|(word_idx, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(KeyId::from_index(word_idx * 64 + bit))
            })
        })
    }
}

/// A sorted `KeyId → U256` map backed by a single vector.
///
/// The per-attempt write/add buffers of a running transaction hold a
/// handful of entries; binary search over a dense vector is faster than a
/// `BTreeMap` and `clear` keeps capacity across attempts.
#[derive(Debug, Default, Clone)]
pub struct SmallMap {
    entries: Vec<(KeyId, U256)>,
}

impl SmallMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        SmallMap::default()
    }

    fn position(&self, id: KeyId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&id, |(k, _)| *k)
    }

    /// The value for `id`, if present.
    pub fn get(&self, id: KeyId) -> Option<U256> {
        self.position(id).ok().map(|i| self.entries[i].1)
    }

    /// Mutable access to the value for `id`, if present.
    pub fn get_mut(&mut self, id: KeyId) -> Option<&mut U256> {
        self.position(id).ok().map(|i| &mut self.entries[i].1)
    }

    /// Sets `id` to `value`, replacing any existing entry.
    pub fn insert(&mut self, id: KeyId, value: U256) {
        match self.position(id) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (id, value)),
        }
    }

    /// Adds `delta` onto the entry for `id` (missing entries start at zero).
    pub fn add(&mut self, id: KeyId, delta: U256) {
        match self.position(id) {
            Ok(i) => self.entries[i].1 = self.entries[i].1.wrapping_add(delta),
            Err(i) => self.entries.insert(i, (id, delta)),
        }
    }

    /// Removes the entry for `id`, returning its value.
    pub fn remove(&mut self, id: KeyId) -> Option<U256> {
        self.position(id).ok().map(|i| self.entries.remove(i).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Empties the map, keeping capacity for the next attempt.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeyId, U256)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_pool_recycles_buffers() {
        let mut buf = take_spill();
        buf.reserve(16);
        let cap = buf.capacity();
        buf.extend([1, 2, 3]);
        recycle_spill(buf);
        let reused = take_spill();
        assert!(reused.is_empty());
        assert_eq!(reused.capacity(), cap);
        recycle_spill(reused);
    }

    #[test]
    fn spill_pool_ignores_unallocated_buffers() {
        let before = spill_pool_len();
        recycle_spill(Vec::new());
        assert_eq!(spill_pool_len(), before);
    }

    #[test]
    fn id_set_insert_contains_iter() {
        let mut set = IdSet::new();
        assert!(set.insert(KeyId::from_index(3)));
        assert!(set.insert(KeyId::from_index(200)));
        assert!(!set.insert(KeyId::from_index(3)));
        assert_eq!(set.len(), 2);
        assert!(set.contains(KeyId::from_index(3)));
        assert!(!set.contains(KeyId::from_index(4)));
        assert!(!set.contains(KeyId::from_index(10_000)));
        let ids: Vec<usize> = set.iter().map(|id| id.index()).collect();
        assert_eq!(ids, vec![3, 200]);
        set.clear();
        assert!(set.is_empty());
        assert!(!set.contains(KeyId::from_index(3)));
    }

    #[test]
    fn small_map_insert_add_remove() {
        let mut map = SmallMap::new();
        map.insert(KeyId::from_index(5), U256::from(50u64));
        map.insert(KeyId::from_index(1), U256::from(10u64));
        map.add(KeyId::from_index(5), U256::from(2u64));
        map.add(KeyId::from_index(9), U256::from(9u64));
        assert_eq!(map.get(KeyId::from_index(5)), Some(U256::from(52u64)));
        assert_eq!(map.get(KeyId::from_index(9)), Some(U256::from(9u64)));
        let ids: Vec<usize> = map.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![1, 5, 9]);
        assert_eq!(map.remove(KeyId::from_index(1)), Some(U256::from(10u64)));
        assert_eq!(map.len(), 2);
        map.clear();
        assert!(map.is_empty());
    }
}
