//! Critical-path ranks over a block's C-SAGs.
//!
//! The access sequences already encode the block's dependency DAG: a read
//! (or, for RMW purposes, nothing else — adds are commutative) of key `k`
//! by transaction `j` hangs off every earlier transaction `i < j` with `k`
//! in its predicted write/add set. Write-write pairs do not conflict
//! (write versioning, Algorithm 3) and add-add pairs do not conflict
//! (commutative merges, §IV-D), so those contribute no edges.
//!
//! [`BlockDag::build`] weights that DAG by predicted gas and computes each
//! transaction's *rank*: its own gas plus the heaviest gas path through its
//! downstream readers (classic list-scheduling priority). The longest rank
//! is the block's **critical-path gas** — no schedule, on any number of
//! threads, finishes the block in less virtual time — and
//! `total_gas / critical_path_gas` is the achievable speedup bound the
//! executors report in [`crate::ExecutorStats`].
//!
//! Because every edge goes from a lower to a higher transaction index
//! (readers depend on *earlier* writers only), reverse index order is a
//! reverse topological order, and ranks are computable in one backward
//! sweep with a per-key suffix maximum — O(total accesses), never the
//! O(n²) edge list a hot key would otherwise produce.

use dmvcc_analysis::CSag;
use dmvcc_state::KeyInterner;

/// Number of priority lanes the sharded executor's ready queue is bucketed
/// into. Lane 0 holds the highest-ranked transactions; workers drain lanes
/// in order.
pub const NUM_LANES: usize = 8;

/// Ready-queue ordering policy of the threaded executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Arrival-order dispatch (the original work-stealing FIFO deques).
    Fifo,
    /// Rank-ordered dispatch: longest downstream gas path first, dependent
    /// count as tie-break.
    #[default]
    CriticalPath,
}

impl SchedulerPolicy {
    /// Parses the CLI spelling of a policy.
    pub fn parse(name: &str) -> Option<SchedulerPolicy> {
        match name {
            "fifo" => Some(SchedulerPolicy::Fifo),
            "critical-path" => Some(SchedulerPolicy::CriticalPath),
            _ => None,
        }
    }

    /// Display label (the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerPolicy::Fifo => "fifo",
            SchedulerPolicy::CriticalPath => "critical-path",
        }
    }
}

/// One transaction's scheduling priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRank {
    /// Own predicted gas plus the heaviest downstream gas path.
    pub rank_gas: u64,
    /// Direct downstream readers across all written/added keys (the
    /// tie-break: more dependents unblock more work).
    pub dependents: u64,
    /// Priority lane (0 = highest) derived from `rank_gas`.
    pub lane: u8,
}

/// The gas-weighted dependency DAG of one block, reduced to per-transaction
/// ranks (see the module docs for the construction).
#[derive(Debug, Clone, Default)]
pub struct BlockDag {
    /// Per-transaction ranks, indexed by transaction position.
    pub ranks: Vec<TxRank>,
    /// The heaviest gas path through the block (max rank).
    pub critical_path_gas: u64,
    /// Sum of predicted gas over all transactions.
    pub total_gas: u64,
}

impl BlockDag {
    /// Builds the DAG ranks from a block's C-SAGs.
    ///
    /// A transaction with an empty C-SAG (unknown contract, OCC fallback)
    /// predicts zero gas; its weight is clamped to the intrinsic cost so
    /// ranks stay strictly positive and lane math stays meaningful.
    pub fn build(csags: &[CSag]) -> BlockDag {
        // Standalone entry point (global executor, tests): intern the
        // block's keys locally so the sweep runs on dense ids.
        let mut interner = KeyInterner::new();
        for csag in csags {
            for key in csag
                .reads
                .iter()
                .chain(csag.writes.iter())
                .chain(csag.adds.iter())
            {
                interner.preintern(*key);
            }
        }
        BlockDag::build_with_interner(csags, &interner)
    }

    /// Builds the DAG ranks from a block's C-SAGs over an interner already
    /// holding every predicted key (the sharded executor shares the block's
    /// bind-time interner). The per-key suffix maximum is a dense vector
    /// indexed by [`dmvcc_state::KeyId`], not a hash map over 52-byte keys.
    pub fn build_with_interner(csags: &[CSag], interner: &KeyInterner) -> BlockDag {
        let n = csags.len();
        let mut ranks = vec![
            TxRank {
                rank_gas: 0,
                dependents: 0,
                lane: 0,
            };
            n
        ];
        // Per key id: (max rank, count) over the *readers with a higher
        // index than the transaction currently being processed* —
        // maintained by the backward sweep.
        let mut suffix: Vec<(u64, u64)> = vec![(0, 0); interner.len()];
        let mut critical = 0u64;
        let mut total = 0u64;
        for i in (0..n).rev() {
            let gas = csags[i].predicted_gas.max(dmvcc_vm::INTRINSIC_GAS);
            total += gas;
            let mut downstream = 0u64;
            let mut dependents = 0u64;
            for key in csags[i].writes.iter().chain(csags[i].adds.iter()) {
                if let Some(id) = interner.lookup(key) {
                    let (max_rank, count) = suffix[id.index()];
                    downstream = downstream.max(max_rank);
                    dependents += count;
                }
            }
            let rank = gas + downstream;
            critical = critical.max(rank);
            ranks[i].rank_gas = rank;
            ranks[i].dependents = dependents;
            // Register this transaction's reads *after* computing its own
            // rank, so an RMW transaction never depends on itself.
            for key in &csags[i].reads {
                if let Some(id) = interner.lookup(key) {
                    let entry = &mut suffix[id.index()];
                    entry.0 = entry.0.max(rank);
                    entry.1 += 1;
                }
            }
        }
        for rank in &mut ranks {
            rank.lane = lane_for(rank.rank_gas, critical);
        }
        BlockDag {
            ranks,
            critical_path_gas: critical,
            total_gas: total,
        }
    }

    /// Priority lane of a transaction (0 = dispatch first).
    #[inline]
    pub fn lane_of(&self, tx: usize) -> usize {
        self.ranks.get(tx).map_or(0, |r| r.lane as usize)
    }

    /// Exact dispatch order: higher is served first. Rank gas dominates,
    /// dependent count breaks ties, and the *lower* transaction index wins
    /// remaining ties (deterministic, and index order is always a valid
    /// topological order here).
    #[inline]
    pub fn priority(&self, tx: usize) -> (u64, u64, std::cmp::Reverse<usize>) {
        let rank = &self.ranks[tx];
        (rank.rank_gas, rank.dependents, std::cmp::Reverse(tx))
    }

    /// Upper bound on achievable speedup: total gas over critical-path gas
    /// (1.0 for an empty block).
    pub fn speedup_bound(&self) -> f64 {
        if self.critical_path_gas == 0 {
            1.0
        } else {
            self.total_gas as f64 / self.critical_path_gas as f64
        }
    }
}

/// Buckets a rank into a lane: the critical path lands in lane 0, ranks
/// near zero in the last lane, proportionally in between.
fn lane_for(rank_gas: u64, critical: u64) -> u8 {
    if critical == 0 {
        return 0;
    }
    let lane = ((critical - rank_gas.min(critical)) as u128 * NUM_LANES as u128
        / (critical as u128 + 1)) as u64;
    lane.min(NUM_LANES as u64 - 1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;
    use dmvcc_state::StateKey;

    fn key(id: u64) -> StateKey {
        StateKey::balance(Address::from_u64(id))
    }

    /// A C-SAG with explicit key sets and predicted gas.
    fn sag(reads: &[u64], writes: &[u64], adds: &[u64], gas: u64) -> CSag {
        let mut c = CSag {
            predicted_gas: gas,
            ..CSag::default()
        };
        c.reads.extend(reads.iter().map(|&k| key(k)));
        c.writes.extend(writes.iter().map(|&k| key(k)));
        c.adds.extend(adds.iter().map(|&k| key(k)));
        c
    }

    const G: u64 = 50_000;

    #[test]
    fn empty_block_is_trivial() {
        let dag = BlockDag::build(&[]);
        assert_eq!(dag.critical_path_gas, 0);
        assert_eq!(dag.total_gas, 0);
        assert!((dag.speedup_bound() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_ranks_accumulate() {
        // 0 writes a, 1 reads a writes b, 2 reads b: a pure chain.
        let csags = vec![
            sag(&[], &[1], &[], G),
            sag(&[1], &[2], &[], G),
            sag(&[2], &[], &[], G),
        ];
        let dag = BlockDag::build(&csags);
        assert_eq!(dag.ranks[2].rank_gas, G);
        assert_eq!(dag.ranks[1].rank_gas, 2 * G);
        assert_eq!(dag.ranks[0].rank_gas, 3 * G);
        assert_eq!(dag.critical_path_gas, 3 * G);
        assert_eq!(dag.total_gas, 3 * G);
        // One direct reader each, none for the tail.
        assert_eq!(dag.ranks[0].dependents, 1);
        assert_eq!(dag.ranks[1].dependents, 1);
        assert_eq!(dag.ranks[2].dependents, 0);
        // The chain head is the critical path: lane 0; the tail is the
        // lightest transaction in the block.
        assert_eq!(dag.ranks[0].lane, 0);
        assert!(dag.ranks[2].lane > dag.ranks[1].lane || dag.ranks[1].lane > 0);
        assert!((dag.speedup_bound() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_takes_heavier_shoulder() {
        // 0 writes a; 1 and 2 both read a and write b/c; 3 reads b and c.
        // Shoulder 1 is heavier than shoulder 2.
        let csags = vec![
            sag(&[], &[1], &[], G),
            sag(&[1], &[2], &[], 4 * G),
            sag(&[1], &[3], &[], G),
            sag(&[2, 3], &[], &[], G),
        ];
        let dag = BlockDag::build(&csags);
        assert_eq!(dag.ranks[3].rank_gas, G);
        assert_eq!(dag.ranks[1].rank_gas, 5 * G); // heavy shoulder + sink
        assert_eq!(dag.ranks[2].rank_gas, 2 * G); // light shoulder + sink
        assert_eq!(dag.ranks[0].rank_gas, 6 * G); // source through shoulder 1
        assert_eq!(dag.critical_path_gas, 6 * G);
        assert_eq!(dag.total_gas, 7 * G);
        // The source feeds both shoulders.
        assert_eq!(dag.ranks[0].dependents, 2);
        // Both shoulders feed only the sink.
        assert_eq!(dag.ranks[1].dependents, 1);
        assert_eq!(dag.ranks[2].dependents, 1);
        assert!(dag.speedup_bound() > 1.0);
    }

    #[test]
    fn hot_key_fans_out_without_quadratic_edges() {
        // One writer of a hot key, many readers: the writer's rank tops
        // every reader's, and its dependent count equals the fan-out.
        let mut csags = vec![sag(&[], &[7], &[], G)];
        for _ in 0..64 {
            csags.push(sag(&[7], &[], &[], G));
        }
        let dag = BlockDag::build(&csags);
        assert_eq!(dag.ranks[0].rank_gas, 2 * G);
        assert_eq!(dag.ranks[0].dependents, 64);
        for reader in 1..=64 {
            assert_eq!(dag.ranks[reader].rank_gas, G);
            assert_eq!(dag.ranks[reader].dependents, 0);
            assert!(dag.ranks[reader].lane >= dag.ranks[0].lane);
        }
        assert_eq!(dag.critical_path_gas, 2 * G);
        assert_eq!(dag.total_gas, 65 * G);
    }

    #[test]
    fn rmw_transaction_does_not_self_depend() {
        // A single read-modify-write of one key: rank is its own gas, no
        // dependents, no infinite self-edge.
        let csags = vec![sag(&[5], &[5], &[], G)];
        let dag = BlockDag::build(&csags);
        assert_eq!(dag.ranks[0].rank_gas, G);
        assert_eq!(dag.ranks[0].dependents, 0);
    }

    #[test]
    fn write_write_and_add_add_do_not_conflict() {
        // Two writers of the same key (versioned), two adders of another
        // (commutative): no edges, all ranks standalone.
        let csags = vec![
            sag(&[], &[1], &[], G),
            sag(&[], &[1], &[], G),
            sag(&[], &[], &[2], G),
            sag(&[], &[], &[2], G),
        ];
        let dag = BlockDag::build(&csags);
        for rank in &dag.ranks {
            assert_eq!(rank.rank_gas, G);
            assert_eq!(rank.dependents, 0);
        }
        assert_eq!(dag.critical_path_gas, G);
        assert!((dag.speedup_bound() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn adds_block_readers_like_writes() {
        // A read of a key some earlier transaction *adds* to depends on
        // that adder (the merged value must be visible).
        let csags = vec![sag(&[], &[], &[9], G), sag(&[9], &[], &[], G)];
        let dag = BlockDag::build(&csags);
        assert_eq!(dag.ranks[0].rank_gas, 2 * G);
        assert_eq!(dag.ranks[0].dependents, 1);
    }

    #[test]
    fn empty_csag_gas_clamped_to_intrinsic() {
        let dag = BlockDag::build(&[CSag::default()]);
        assert_eq!(dag.ranks[0].rank_gas, dmvcc_vm::INTRINSIC_GAS);
        assert_eq!(dag.total_gas, dmvcc_vm::INTRINSIC_GAS);
    }

    #[test]
    fn priority_orders_rank_then_dependents_then_index() {
        // 0 and 2: same rank, but 0 has a dependent; 1 is heaviest.
        let csags = vec![
            sag(&[], &[], &[4], G),
            sag(&[], &[1], &[], 3 * G),
            sag(&[], &[], &[], G),
            sag(&[4], &[], &[], G),
        ];
        let dag = BlockDag::build(&csags);
        let mut order: Vec<usize> = (0..4).collect();
        order.sort_by_key(|&tx| std::cmp::Reverse(dag.priority(tx)));
        assert_eq!(order, vec![1, 0, 2, 3]);
    }

    #[test]
    fn policy_parses_and_labels() {
        assert_eq!(SchedulerPolicy::parse("fifo"), Some(SchedulerPolicy::Fifo));
        assert_eq!(
            SchedulerPolicy::parse("critical-path"),
            Some(SchedulerPolicy::CriticalPath)
        );
        assert_eq!(SchedulerPolicy::parse("priority"), None);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::CriticalPath);
        assert_eq!(SchedulerPolicy::Fifo.label(), "fifo");
        assert_eq!(SchedulerPolicy::CriticalPath.label(), "critical-path");
    }

    #[test]
    fn lanes_cover_the_range() {
        // A long chain spreads ranks from G to n*G: the head must land in
        // lane 0 and the tail in the last lane.
        let n = 32;
        let csags: Vec<CSag> = (0..n)
            .map(|i| {
                let r: Vec<u64> = if i == 0 { vec![] } else { vec![i as u64] };
                sag(&r, &[i as u64 + 1], &[], G)
            })
            .collect();
        let dag = BlockDag::build(&csags);
        assert_eq!(dag.ranks[0].lane, 0);
        assert_eq!(dag.ranks[n - 1].lane, (NUM_LANES - 1) as u8);
        // Lanes are monotone along the chain.
        for pair in dag.ranks.windows(2) {
            assert!(pair[0].lane <= pair[1].lane);
        }
    }
}
