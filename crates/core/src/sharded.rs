//! Sharded access sequences: per-key locking for the threaded executor.
//!
//! The first-generation executor kept every [`AccessSequence`] behind one
//! global mutex, so two transactions touching disjoint state items still
//! serialized on the same lock. This module spreads the sequences over `N`
//! power-of-two shards, each a `parking_lot::Mutex` over a dense slot
//! array. Transactions touching different shards proceed fully in
//! parallel; the global lock only reappears for keys that genuinely
//! collide.
//!
//! Since the raw-speed pass, shards are addressed by interned [`KeyId`]s
//! instead of hashed [`StateKey`]s: the block's [`KeyInterner`] assigns
//! dense u32 ids at C-SAG bind time, the shard is `id & (shards-1)` and
//! the slot within the shard is `id >> log2(shards)` — a direct vector
//! index, no 52-byte hash per probe. Shard storage is recycled across
//! blocks ([`ShardedSequences::for_block`]): slots are cleared in place,
//! keeping every entry buffer's capacity, and the bytes served from
//! recycled memory are reported as `ExecutorStats::alloc_bytes_saved`.
//!
//! Each slot also carries the *reverse waiter index* for its key: the set
//! of transactions whose read is currently blocked on a pending version of
//! that key. A publisher drains exactly those waiters under the same lock
//! hold that makes the version visible, which is what lets the executor
//! wake only the transactions that can actually make progress instead of
//! broadcasting on a global condition variable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use dmvcc_primitives::U256;
use dmvcc_state::{KeyId, KeyInterner, Snapshot, StateKey, WriteSet};

use crate::access::{AccessOp, AccessSequence, FastResolution};
use crate::hook::SchedHook;

/// Default shard count. Sixteen shards keep the collision probability low
/// for realistic working sets (a few hundred hot keys) while the array of
/// mutexes still fits comfortably in cache.
pub const DEFAULT_SHARDS: usize = 16;

/// Per-key state within a shard: the access sequence, the blocked readers,
/// and a one-value snapshot cache (the block snapshot is immutable, so the
/// first overlay-chain probe answers every later snapshot-base read).
#[derive(Debug, Default)]
struct SeqSlot {
    seq: AccessSequence,
    waiters: Vec<usize>,
    snap: Option<U256>,
}

impl SeqSlot {
    /// Clears for block reuse, returning the heap bytes kept alive.
    fn reset(&mut self) -> u64 {
        let bytes = self.seq.retained_bytes()
            + (self.waiters.capacity() * std::mem::size_of::<usize>()) as u64;
        self.seq.clear();
        self.waiters.clear();
        self.snap = None;
        bytes
    }
}

/// One shard: the slots of the key ids that map here.
#[derive(Debug, Default)]
pub struct Shard {
    /// log2(shard count) — slot index = `id >> bits`.
    bits: u32,
    slots: Vec<SeqSlot>,
}

impl Shard {
    #[inline]
    fn slot_index(&self, id: KeyId) -> usize {
        id.index() >> self.bits
    }

    #[inline]
    fn slot_mut(&mut self, id: KeyId) -> &mut SeqSlot {
        let index = self.slot_index(id);
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, SeqSlot::default);
        }
        &mut self.slots[index]
    }

    /// The sequence for `id`, creating its slot on first use.
    pub fn sequence_mut(&mut self, id: KeyId) -> &mut AccessSequence {
        &mut self.slot_mut(id).seq
    }

    /// The sequence for `id`, if its slot exists. A missing slot means no
    /// access was recorded or predicted — reads resolve to the snapshot.
    pub fn sequence(&self, id: KeyId) -> Option<&AccessSequence> {
        self.slots.get(self.slot_index(id)).map(|slot| &slot.seq)
    }

    /// Fast-path read resolve: [`AccessSequence::resolve_read_value`] with
    /// the slot's cached snapshot value as the base (probing the snapshot's
    /// overlay chain at most once per key per block). Does **not** mark the
    /// read — call [`Self::mark_read`] once the value is consumed.
    pub fn resolve_value(
        &mut self,
        id: KeyId,
        tx: usize,
        key: &StateKey,
        snapshot: &Snapshot,
    ) -> FastResolution {
        let slot = self.slot_mut(id);
        let snap = &mut slot.snap;
        slot.seq
            .resolve_read_value(tx, || *snap.get_or_insert_with(|| snapshot.get(key)))
    }

    /// Marks `tx`'s read on `id` as performed.
    pub fn mark_read(&mut self, id: KeyId, tx: usize) {
        self.slot_mut(id).seq.mark_read(tx);
    }

    /// Records that `tx`'s read is blocked on `id`. The registration must
    /// happen under the same lock hold as the failed resolve, so a
    /// concurrent publisher either sees the waiter or has already made the
    /// version visible to the retry.
    pub fn register_waiter(&mut self, id: KeyId, tx: usize) {
        let list = &mut self.slot_mut(id).waiters;
        if !list.contains(&tx) {
            list.push(tx);
        }
    }

    /// Removes and returns the transactions blocked on `id`, if any.
    pub fn drain_waiters(&mut self, id: KeyId) -> Vec<usize> {
        let index = self.slot_index(id);
        match self.slots.get_mut(index) {
            Some(slot) => std::mem::take(&mut slot.waiters),
            None => Vec::new(),
        }
    }

    /// Drops a waiter registration (the reader gave up, e.g. self-abort).
    pub fn unregister_waiter(&mut self, id: KeyId, tx: usize) {
        let index = self.slot_index(id);
        if let Some(slot) = self.slots.get_mut(index) {
            slot.waiters.retain(|&t| t != tx);
        }
    }

    /// `true` if any transaction is blocked on `id`.
    pub fn has_waiters(&self, id: KeyId) -> bool {
        self.slots
            .get(self.slot_index(id))
            .is_some_and(|slot| !slot.waiters.is_empty())
    }
}

/// Recycled shard storage: the mutexes and slot arrays of a finished
/// block, handed back to the executor's block arena
/// ([`ShardedSequences::into_storage`]) and reused by the next
/// [`ShardedSequences::for_block`] with every buffer's capacity intact.
#[derive(Debug, Default)]
pub struct ShardStorage {
    shards: Vec<Mutex<Shard>>,
}

/// All access sequences of one block, spread over id-addressed shards.
#[derive(Debug)]
pub struct ShardedSequences {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    bits: u32,
    interner: Arc<KeyInterner>,
    locks: AtomicU64,
    /// Optional scheduling hook, consulted inside the shard critical
    /// section (`None` in production — one predicted-not-taken branch).
    hook: Option<Arc<dyn SchedHook>>,
}

impl ShardedSequences {
    /// Creates an empty set with [`DEFAULT_SHARDS`] shards and a fresh
    /// interner.
    pub fn new() -> Self {
        ShardedSequences::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty set with at least `shards` shards (rounded up to a
    /// power of two so the shard index is a mask, not a modulo) and a fresh
    /// interner.
    pub fn with_shards(shards: usize) -> Self {
        ShardedSequences::for_block(Arc::new(KeyInterner::new()), shards, None, None).0
    }

    /// Builds the sequence set for one block: `interner` carries the
    /// block's predicted keys, `recycled` is the previous block's storage
    /// (reused in place when the shard count matches). Returns the set and
    /// the heap bytes served from recycled buffers instead of the
    /// allocator.
    pub fn for_block(
        interner: Arc<KeyInterner>,
        shards: usize,
        recycled: Option<ShardStorage>,
        hook: Option<Arc<dyn SchedHook>>,
    ) -> (Self, u64) {
        let count = shards.max(1).next_power_of_two();
        let bits = count.trailing_zeros();
        let mut bytes_saved = 0u64;
        let shards = match recycled {
            Some(mut storage) if storage.shards.len() == count => {
                for shard in &mut storage.shards {
                    let shard = shard.get_mut();
                    shard.bits = bits;
                    bytes_saved += (shard.slots.capacity() * std::mem::size_of::<SeqSlot>()) as u64;
                    for slot in &mut shard.slots {
                        bytes_saved += slot.reset();
                    }
                }
                storage.shards
            }
            _ => (0..count)
                .map(|_| {
                    Mutex::new(Shard {
                        bits,
                        slots: Vec::new(),
                    })
                })
                .collect(),
        };
        (
            ShardedSequences {
                shards,
                mask: count - 1,
                bits,
                interner,
                locks: AtomicU64::new(0),
                hook,
            },
            bytes_saved,
        )
    }

    /// Tears the set down into recyclable storage for the next block.
    pub fn into_storage(self) -> ShardStorage {
        ShardStorage {
            shards: self.shards,
        }
    }

    /// Installs a [`SchedHook`] whose [`SchedHook::on_shard_lock`] fires on
    /// every shard-lock acquisition (DST only: stalling there forces
    /// shard-lock contention).
    pub fn with_hook(mut self, hook: Arc<dyn SchedHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The block's key interner.
    pub fn interner(&self) -> &Arc<KeyInterner> {
        &self.interner
    }

    /// Interns `key`, assigning a dense id if it was not predicted.
    #[inline]
    pub fn intern(&self, key: StateKey) -> KeyId {
        self.interner.intern(key)
    }

    /// The shard index owning `id` — a mask, not a hash.
    #[inline]
    pub fn shard_index_of(&self, id: KeyId) -> usize {
        id.index() & self.mask
    }

    /// Locks shard `index` directly (batched publishes group ids by shard
    /// and take each lock once). Callers must not acquire a second shard
    /// lock while holding the guard.
    pub fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        let guard = self.shards[index].lock();
        self.locks.fetch_add(1, Ordering::Relaxed);
        if let Some(hook) = &self.hook {
            hook.on_shard_lock(index);
        }
        guard
    }

    /// Locks and returns the shard owning `id`.
    pub fn shard_for(&self, id: KeyId) -> MutexGuard<'_, Shard> {
        self.lock_shard(self.shard_index_of(id))
    }

    /// `true` when `a` and `b` live in the same shard (and thus contend on
    /// the same lock even though the keys differ).
    pub fn same_shard(&self, a: KeyId, b: KeyId) -> bool {
        self.shard_index_of(a) == self.shard_index_of(b)
    }

    /// Total shard-lock acquisitions so far (`ExecutorStats::
    /// shard_lock_acquisitions`).
    pub fn lock_acquisitions(&self) -> u64 {
        self.locks.load(Ordering::Relaxed)
    }

    /// Registers a predicted access (preprocessing; single-threaded).
    pub fn predict(&self, key: StateKey, tx: usize, op: AccessOp) -> KeyId {
        let id = self.intern(key);
        self.predict_id(id, tx, op);
        id
    }

    /// Registers a predicted access for an already-interned key.
    pub fn predict_id(&self, id: KeyId, tx: usize, op: AccessOp) {
        self.shard_for(id).sequence_mut(id).predict(tx, op);
    }

    /// The commit-phase flush: the final write of every sequence across all
    /// shards, merged into one sorted [`WriteSet`]. Semantically identical
    /// to [`crate::AccessSequences::final_writes`].
    pub fn final_writes(&self, snapshot: &Snapshot) -> WriteSet {
        let mut writes = WriteSet::new();
        for (shard_index, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock();
            for (slot_index, slot) in shard.slots.iter().enumerate() {
                if slot.seq.entries().is_empty() {
                    continue;
                }
                let id = KeyId::from_index((slot_index << self.bits) | shard_index);
                let key = self.interner.resolve(id);
                if let Some(value) = slot.seq.final_value(&key, snapshot) {
                    if value != snapshot.get(&key) {
                        writes.insert(key, value);
                    }
                }
            }
        }
        writes
    }
}

impl Default for ShardedSequences {
    fn default() -> Self {
        ShardedSequences::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessSequences;
    use dmvcc_primitives::{Address, U256};
    use proptest::prelude::*;

    fn key(i: u64) -> StateKey {
        StateKey::storage(Address::from_u64(1 + i % 3), U256::from(i))
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedSequences::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedSequences::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedSequences::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn ids_partition_without_collisions() {
        // The id→(shard, slot) mapping is bijective: distinct ids never
        // share a slot, and the same id always routes identically.
        let sharded = ShardedSequences::with_shards(4);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64 {
            let id = sharded.intern(key(i));
            let shard = sharded.shard_index_of(id);
            let slot = id.index() >> 2;
            assert!(seen.insert((shard, slot)), "collision at id {id:?}");
            assert!(sharded.same_shard(id, sharded.intern(key(i))));
        }
    }

    #[test]
    fn waiters_register_dedup_and_drain() {
        let sharded = ShardedSequences::new();
        let k = sharded.intern(key(1));
        {
            let mut shard = sharded.shard_for(k);
            shard.register_waiter(k, 3);
            shard.register_waiter(k, 5);
            shard.register_waiter(k, 3);
            assert!(shard.has_waiters(k));
        }
        {
            let mut shard = sharded.shard_for(k);
            shard.unregister_waiter(k, 5);
            assert_eq!(shard.drain_waiters(k), vec![3]);
            assert!(!shard.has_waiters(k));
            assert!(shard.drain_waiters(k).is_empty());
        }
        assert!(sharded.lock_acquisitions() >= 2);
    }

    #[test]
    fn recycled_storage_reuses_buffers_and_resets_state() {
        let sharded = ShardedSequences::with_shards(4);
        let id = sharded.predict(key(1), 0, AccessOp::Write);
        sharded
            .shard_for(id)
            .sequence_mut(id)
            .version_write(0, U256::from(9u64), false);
        let storage = sharded.into_storage();
        // Rebuild for a "next block": same shard count → buffers reused,
        // all sequence state gone.
        let (next, bytes) =
            ShardedSequences::for_block(Arc::new(KeyInterner::new()), 4, Some(storage), None);
        assert!(bytes > 0, "recycling should report reused bytes");
        let id = next.intern(key(1));
        assert!(next
            .shard_for(id)
            .sequence(id)
            .is_none_or(|seq| seq.entries().is_empty()));
        assert!(next.final_writes(&Snapshot::empty()).is_empty());
    }

    #[test]
    fn snapshot_cache_serves_repeated_reads() {
        let sharded = ShardedSequences::with_shards(2);
        let snapshot = Snapshot::from_entries([(key(5), U256::from(77u64))]);
        let id = sharded.intern(key(5));
        for tx in 0..3 {
            let got = sharded
                .shard_for(id)
                .resolve_value(id, tx, &key(5), &snapshot);
            assert_eq!(got, FastResolution::Ready(U256::from(77u64)));
        }
    }

    /// One random operation against both representations.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Predict(u8),
        MarkRead,
        VersionWrite(u64, bool),
        DropVersion,
        Reset,
    }

    fn apply(op: Op, tx: usize, seq: &mut AccessSequence) {
        match op {
            Op::Predict(o) => {
                let op = match o % 4 {
                    0 => AccessOp::Read,
                    1 => AccessOp::Write,
                    2 => AccessOp::ReadWrite,
                    _ => AccessOp::Add,
                };
                seq.predict(tx, op);
            }
            Op::MarkRead => seq.mark_read(tx),
            Op::VersionWrite(v, delta) => {
                seq.version_write(tx, U256::from(v), delta);
            }
            Op::DropVersion => {
                seq.drop_version(tx);
            }
            Op::Reset => {
                seq.reset(tx);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 64,
            .. ProptestConfig::default()
        })]

        /// Sharding is a pure partitioning of the key space: replaying any
        /// operation stream against [`ShardedSequences`] and the flat
        /// [`AccessSequences`] yields identical final write sets and
        /// identical per-key read resolutions (both the allocating and the
        /// fast-path resolver).
        #[test]
        fn sharded_equals_unsharded(
            ops in prop::collection::vec(
                (0u64..12, 0usize..8, 0u8..5, 0u8..4, 0u64..100, any::<bool>()),
                1..80,
            ),
        ) {
            let snapshot = Snapshot::from_entries(
                (0..12).map(|i| (key(i), U256::from(1000 + i))),
            );
            let mut flat = AccessSequences::new();
            let sharded = ShardedSequences::with_shards(4);
            for (k, tx, opcode, predict_op, value, delta) in ops {
                let op = match opcode {
                    0 => Op::Predict(predict_op),
                    1 => Op::MarkRead,
                    2 => Op::VersionWrite(value, delta),
                    3 => Op::DropVersion,
                    _ => Op::Reset,
                };
                let state_key = key(k);
                let id = sharded.intern(state_key);
                apply(op, tx, flat.sequence_mut(state_key));
                apply(op, tx, sharded.shard_for(id).sequence_mut(id));
            }
            prop_assert_eq!(sharded.final_writes(&snapshot), flat.final_writes(&snapshot));
            for k in 0..12 {
                let state_key = key(k);
                let id = sharded.intern(state_key);
                for tx in 0..8 {
                    let flat_resolution = flat
                        .sequence(&state_key)
                        .map(|s| s.resolve_read(tx, &state_key, &snapshot));
                    let sharded_resolution = sharded
                        .shard_for(id)
                        .sequence(id)
                        .map(|s| s.resolve_read(tx, &state_key, &snapshot));
                    // The sharded side materializes empty sequences for
                    // interned-but-untouched ids; both mean "snapshot".
                    match (&flat_resolution, &sharded_resolution) {
                        (None, Some(resolution)) => {
                            let expected = crate::access::ReadResolution::Ready {
                                value: snapshot.get(&state_key),
                                sources: crate::access::SourceList::new(),
                            };
                            prop_assert_eq!(resolution, &expected);
                        }
                        _ => prop_assert_eq!(&flat_resolution, &sharded_resolution),
                    }
                    // Fast path agrees with the allocating path.
                    let fast = sharded
                        .shard_for(id)
                        .resolve_value(id, tx, &state_key, &snapshot);
                    match (fast, flat_resolution) {
                        (FastResolution::Ready(value), Some(crate::access::ReadResolution::Ready { value: slow, .. })) =>
                            prop_assert_eq!(value, slow),
                        (FastResolution::Ready(value), None) =>
                            prop_assert_eq!(value, snapshot.get(&state_key)),
                        (FastResolution::Blocked { writer }, Some(crate::access::ReadResolution::Blocked { writer: slow })) =>
                            prop_assert_eq!(writer, slow),
                        (fast, slow) => prop_assert!(false, "diverged: {:?} vs {:?}", fast, slow),
                    }
                }
            }
        }
    }
}
