//! Sharded access sequences: per-key locking for the threaded executor.
//!
//! The first-generation executor kept every [`AccessSequence`] behind one
//! global mutex, so two transactions touching disjoint state items still
//! serialized on the same lock. This module spreads the sequences over `N`
//! power-of-two shards, each a `parking_lot::Mutex` over a plain `HashMap`,
//! with the shard chosen by the [`StateKey`] hash. Transactions touching
//! different shards proceed fully in parallel; the global lock only
//! reappears for keys that genuinely collide.
//!
//! Each shard also carries the *reverse waiter index* for its keys: the set
//! of transactions whose read is currently blocked on a pending version of
//! that key. A publisher drains exactly those waiters under the same lock
//! hold that makes the version visible, which is what lets the executor
//! wake only the transactions that can actually make progress instead of
//! broadcasting on a global condition variable.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use dmvcc_state::{Snapshot, StateKey, WriteSet};

use crate::access::{AccessOp, AccessSequence};
use crate::hook::SchedHook;

/// Default shard count. Sixteen shards keep the collision probability low
/// for realistic working sets (a few hundred hot keys) while the array of
/// mutexes still fits comfortably in cache.
pub const DEFAULT_SHARDS: usize = 16;

/// One shard: the sequences of the keys that hash here, plus the blocked
/// readers per key.
#[derive(Debug, Default)]
pub struct Shard {
    sequences: HashMap<StateKey, AccessSequence>,
    waiters: HashMap<StateKey, Vec<usize>>,
}

impl Shard {
    /// The sequence for `key`, creating it on first use.
    pub fn sequence_mut(&mut self, key: StateKey) -> &mut AccessSequence {
        self.sequences.entry(key).or_default()
    }

    /// The sequence for `key`, if any access was recorded or predicted.
    pub fn sequence(&self, key: &StateKey) -> Option<&AccessSequence> {
        self.sequences.get(key)
    }

    /// Records that `tx`'s read is blocked on `key`. The registration must
    /// happen under the same lock hold as the failed resolve, so a
    /// concurrent publisher either sees the waiter or has already made the
    /// version visible to the retry.
    pub fn register_waiter(&mut self, key: StateKey, tx: usize) {
        let list = self.waiters.entry(key).or_default();
        if !list.contains(&tx) {
            list.push(tx);
        }
    }

    /// Removes and returns the transactions blocked on `key`, if any.
    pub fn drain_waiters(&mut self, key: &StateKey) -> Vec<usize> {
        self.waiters.remove(key).unwrap_or_default()
    }

    /// Drops a waiter registration (the reader gave up, e.g. self-abort).
    pub fn unregister_waiter(&mut self, key: &StateKey, tx: usize) {
        if let Some(list) = self.waiters.get_mut(key) {
            list.retain(|&t| t != tx);
            if list.is_empty() {
                self.waiters.remove(key);
            }
        }
    }

    /// `true` if any transaction is blocked on `key`.
    pub fn has_waiters(&self, key: &StateKey) -> bool {
        self.waiters.get(key).is_some_and(|l| !l.is_empty())
    }
}

/// All access sequences of one block, spread over hash-addressed shards.
#[derive(Debug)]
pub struct ShardedSequences {
    shards: Vec<Mutex<Shard>>,
    mask: usize,
    /// Optional scheduling hook, consulted inside the shard critical
    /// section (`None` in production — one predicted-not-taken branch).
    hook: Option<Arc<dyn SchedHook>>,
}

impl ShardedSequences {
    /// Creates an empty set with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        ShardedSequences::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an empty set with at least `shards` shards (rounded up to a
    /// power of two so the shard index is a mask, not a modulo).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        ShardedSequences {
            shards: (0..count).map(|_| Mutex::new(Shard::default())).collect(),
            mask: count - 1,
            hook: None,
        }
    }

    /// Installs a [`SchedHook`] whose [`SchedHook::on_shard_lock`] fires on
    /// every shard-lock acquisition (DST only: stalling there forces
    /// shard-lock contention).
    pub fn with_hook(mut self, hook: Arc<dyn SchedHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: &StateKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        hasher.finish() as usize & self.mask
    }

    /// Locks and returns the shard owning `key`. Callers must not acquire
    /// a second shard lock while holding the guard.
    pub fn shard(&self, key: &StateKey) -> MutexGuard<'_, Shard> {
        let index = self.shard_index(key);
        let guard = self.shards[index].lock();
        if let Some(hook) = &self.hook {
            hook.on_shard_lock(index);
        }
        guard
    }

    /// `true` when `a` and `b` live in the same shard (and thus contend on
    /// the same lock even though the keys differ).
    pub fn same_shard(&self, a: &StateKey, b: &StateKey) -> bool {
        self.shard_index(a) == self.shard_index(b)
    }

    /// Registers a predicted access (preprocessing; single-threaded).
    pub fn predict(&self, key: StateKey, tx: usize, op: AccessOp) {
        self.shard(&key).sequence_mut(key).predict(tx, op);
    }

    /// The commit-phase flush: the final write of every sequence across all
    /// shards, merged into one sorted [`WriteSet`]. Semantically identical
    /// to [`crate::AccessSequences::final_writes`].
    pub fn final_writes(&self, snapshot: &Snapshot) -> WriteSet {
        let mut writes = WriteSet::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, sequence) in &shard.sequences {
                if let Some(value) = sequence.final_value(key, snapshot) {
                    if value != snapshot.get(key) {
                        writes.insert(*key, value);
                    }
                }
            }
        }
        writes
    }
}

impl Default for ShardedSequences {
    fn default() -> Self {
        ShardedSequences::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessSequences;
    use dmvcc_primitives::{Address, U256};
    use proptest::prelude::*;

    fn key(i: u64) -> StateKey {
        StateKey::storage(Address::from_u64(1 + i % 3), U256::from(i))
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedSequences::with_shards(1).shard_count(), 1);
        assert_eq!(ShardedSequences::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedSequences::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn same_key_always_same_shard() {
        let sharded = ShardedSequences::new();
        for i in 0..64 {
            assert!(sharded.same_shard(&key(i), &key(i)));
        }
    }

    #[test]
    fn waiters_register_dedup_and_drain() {
        let sharded = ShardedSequences::new();
        let k = key(1);
        {
            let mut shard = sharded.shard(&k);
            shard.register_waiter(k, 3);
            shard.register_waiter(k, 5);
            shard.register_waiter(k, 3);
            assert!(shard.has_waiters(&k));
        }
        {
            let mut shard = sharded.shard(&k);
            shard.unregister_waiter(&k, 5);
            assert_eq!(shard.drain_waiters(&k), vec![3]);
            assert!(!shard.has_waiters(&k));
            assert!(shard.drain_waiters(&k).is_empty());
        }
    }

    /// One random operation against both representations.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Predict(u8),
        MarkRead,
        VersionWrite(u64, bool),
        DropVersion,
        Reset,
    }

    fn apply(op: Op, tx: usize, seq: &mut AccessSequence) {
        match op {
            Op::Predict(o) => {
                let op = match o % 4 {
                    0 => AccessOp::Read,
                    1 => AccessOp::Write,
                    2 => AccessOp::ReadWrite,
                    _ => AccessOp::Add,
                };
                seq.predict(tx, op);
            }
            Op::MarkRead => seq.mark_read(tx),
            Op::VersionWrite(v, delta) => {
                seq.version_write(tx, U256::from(v), delta);
            }
            Op::DropVersion => {
                seq.drop_version(tx);
            }
            Op::Reset => {
                seq.reset(tx);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 64,
            .. ProptestConfig::default()
        })]

        /// Sharding is a pure partitioning of the key space: replaying any
        /// operation stream against [`ShardedSequences`] and the flat
        /// [`AccessSequences`] yields identical final write sets and
        /// identical per-key read resolutions.
        #[test]
        fn sharded_equals_unsharded(
            ops in prop::collection::vec(
                (0u64..12, 0usize..8, 0u8..5, 0u8..4, 0u64..100, any::<bool>()),
                1..80,
            ),
        ) {
            let snapshot = Snapshot::from_entries(
                (0..12).map(|i| (key(i), U256::from(1000 + i))),
            );
            let mut flat = AccessSequences::new();
            let sharded = ShardedSequences::with_shards(4);
            for (k, tx, opcode, predict_op, value, delta) in ops {
                let op = match opcode {
                    0 => Op::Predict(predict_op),
                    1 => Op::MarkRead,
                    2 => Op::VersionWrite(value, delta),
                    3 => Op::DropVersion,
                    _ => Op::Reset,
                };
                let state_key = key(k);
                apply(op, tx, flat.sequence_mut(state_key));
                apply(op, tx, sharded.shard(&state_key).sequence_mut(state_key));
            }
            prop_assert_eq!(sharded.final_writes(&snapshot), flat.final_writes(&snapshot));
            for k in 0..12 {
                let state_key = key(k);
                for tx in 0..8 {
                    let flat_resolution = flat
                        .sequence(&state_key)
                        .map(|s| s.resolve_read(tx, &state_key, &snapshot));
                    let sharded_resolution = sharded
                        .shard(&state_key)
                        .sequence(&state_key)
                        .map(|s| s.resolve_read(tx, &state_key, &snapshot));
                    prop_assert_eq!(&flat_resolution, &sharded_resolution);
                }
            }
        }
    }
}
