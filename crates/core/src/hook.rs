//! Scheduler hooks: the observation and perturbation surface of the
//! threaded executors.
//!
//! Both [`crate::ParallelExecutor`] and
//! [`crate::GlobalLockParallelExecutor`] consult an optional
//! [`SchedHook`] at every scheduling decision point — dequeue, publish,
//! park/wake, abort, commit, the shard critical section, and the
//! release-point gate. Production runs install no hook: every call site is
//! an `Option` that is `None`, so the disabled path costs one predicted
//! branch and no virtual dispatch.
//!
//! The hook exists for *deterministic-simulation testing* (the `dmvcc-dst`
//! crate): a seeded implementation can delay a publish, preempt a worker,
//! hold a shard lock hot, force a transaction to abort, or deliberately
//! break the release-point invariant to prove the fuzz driver catches the
//! resulting divergence. Two kinds of methods coexist:
//!
//! - **Observation points** (`on_*`): called around a decision; the
//!   implementation may record the event and/or stall the calling thread to
//!   perturb the schedule. Any interleaving a hook can produce is an
//!   interleaving the OS scheduler could legally produce on its own, so a
//!   hook can never make a correct executor wrong — that is what makes
//!   hook-driven schedule fuzzing sound.
//! - **Decision overrides** (`release_gate`, `inject_abort`,
//!   `skip_rollback`): the default bodies compute the production behavior;
//!   DST implementations override them to inject the paper's failure modes
//!   (out-of-gas after a release point, abort storms) or, for mutation
//!   testing only, to break an invariant on purpose.
//!
//! # Locking caveats
//!
//! `on_shard_lock` is called *inside* the shard critical section — stalling
//! there is the documented way to force shard-lock contention. In the
//! sharded executor every other `on_*` call site is outside the executor's
//! locks (publishes and parks stage their effects first), so a slow hook
//! costs latency, not progress. The global-lock executor by contrast calls
//! most hooks under its one mutex — a stalling hook serializes it, which
//! matches the contention profile that executor exists to model.

use dmvcc_state::StateKey;

/// Observation and perturbation hooks for the threaded executors.
///
/// All methods have no-op (or production-behavior) defaults, so an
/// implementation only overrides the points it cares about. Methods take
/// `&self` and are called concurrently from every worker thread.
///
/// Transactions are identified by their index in the block; `attempt` is
/// the 1-based execution attempt (re-executions increment it).
pub trait SchedHook: Send + Sync + std::fmt::Debug {
    /// A worker dequeued `tx` and is about to run its `attempt`-th attempt
    /// (Algorithm 1 pop).
    fn on_dequeue(&self, _tx: usize, _attempt: u32) {}

    /// `tx` is about to make a version of `key` visible (Algorithm 3;
    /// `delta` marks a commutative ω̄ publish). Stalling here models a
    /// delayed publish.
    fn on_publish(&self, _tx: usize, _key: &StateKey, _delta: bool) {}

    /// A worker is about to park: blocked on a pending version read
    /// (`tx = Some(reader)`) or idle with nothing to run (`None`).
    fn on_park(&self, _tx: Option<usize>) {}

    /// A parked worker resumed (same `tx` convention as [`Self::on_park`]).
    fn on_wake(&self, _tx: Option<usize>) {}

    /// `victim` is being aborted by a cascade rooted at `root`
    /// (Algorithm 4; `root == victim` for the cascade root itself).
    fn on_abort(&self, _root: usize, _victim: usize) {}

    /// `tx` reached its commit decision point (about to be marked
    /// finished).
    fn on_commit(&self, _tx: usize) {}

    /// The sharded executor entered the critical section of shard `index`.
    /// Called with the shard lock held: stalling here is the way to force
    /// shard-lock contention.
    fn on_shard_lock(&self, _index: usize) {}

    /// The optimistic (STM) executor resolved a multi-version read for
    /// `tx` on `key`. `blocked` is `true` when the resolution had to spin
    /// past an ESTIMATE marker (a lower transaction mid-re-execution).
    /// Stalling here widens the window in which an optimistic read can
    /// observe a value that later fails validation.
    fn on_stm_read(&self, _tx: usize, _key: &StateKey, _blocked: bool) {}

    /// The optimistic (STM) executor validated `tx`'s recorded read set at
    /// its commit turn (`attempt` counts executions of the transaction so
    /// far; `ok` is the verdict). Called with the commit lock held — the
    /// validate/re-execute/commit sequence is atomic with respect to other
    /// committers, so stalling here serializes the commit tail on purpose.
    fn on_validate(&self, _tx: usize, _attempt: u32, _ok: bool) {}

    /// The release-point gate (Algorithm 2): may `tx` treat the release
    /// point at `pc` as passed with `gas_left` remaining against the
    /// C-SAG's worst-case `bound`? The default is the paper's rule; DST
    /// overrides force early release (out-of-gas-after-release faults) or
    /// break the gate entirely for mutation testing.
    fn release_gate(&self, _tx: usize, _pc: usize, gas_left: u64, bound: u64) -> bool {
        gas_left >= bound
    }

    /// Fault injection: forcibly abort `tx` before running `attempt`
    /// (returns `true` to abort). Implementations must stop injecting after
    /// a bounded number of attempts or the executor's `max_attempts` guard
    /// will surface `Interrupted` statuses.
    fn inject_abort(&self, _tx: usize, _attempt: u32) -> bool {
        false
    }

    /// Mutation testing only: skip rolling back `tx`'s already-published
    /// version of `key` when the transaction deterministically aborts.
    /// Production behavior (`false`) always rolls back; returning `true`
    /// models an implementation that trusts the release-point invariant
    /// ("published ⇒ cannot abort") while [`Self::release_gate`] is broken,
    /// which leaks the writes of failed transactions into the final state.
    fn skip_rollback(&self, _tx: usize, _key: &StateKey) -> bool {
        false
    }
}

/// The production hook: every observation is a no-op and every decision
/// override keeps the default rule. Installing `NoopHook` is semantically
/// identical to installing no hook at all (it exists for tests that need a
/// concrete `Arc<dyn SchedHook>`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl SchedHook for NoopHook {}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;

    #[test]
    fn noop_hook_keeps_production_decisions() {
        let hook = NoopHook;
        let key = StateKey::balance(Address::from_u64(1));
        assert!(hook.release_gate(0, 4, 100, 100));
        assert!(!hook.release_gate(0, 4, 99, 100));
        assert!(!hook.inject_abort(0, 1));
        assert!(!hook.skip_rollback(0, &key));
        // Observation points are callable no-ops.
        hook.on_dequeue(0, 1);
        hook.on_publish(0, &key, false);
        hook.on_park(Some(0));
        hook.on_wake(None);
        hook.on_abort(0, 0);
        hook.on_commit(0);
        hook.on_shard_lock(3);
        hook.on_stm_read(0, &key, true);
        hook.on_validate(0, 1, false);
    }
}
