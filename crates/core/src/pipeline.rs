//! The pipelined block front-end.
//!
//! Two Amdahl bottlenecks sit in front of the workers: refining a block's
//! C-SAGs is serial in `execute_block`, and it happens *after* the
//! previous block committed, so analysis and execution never overlap.
//! This module removes both:
//!
//! - [`refine_csags`] fans the per-transaction `analyzer.csag` calls
//!   across a thread pool. Refinement of one transaction never looks at
//!   another's C-SAG, and the analyzer's hide/tier decisions are pure
//!   per-key hashes, so the result is byte-identical to the serial loop
//!   regardless of completion order.
//! - [`BlockPipeline`] overlaps stages across blocks: while block N
//!   executes, block N+1's C-SAGs are refined against the snapshot that
//!   *preceded* block N (the latest committed state at the time the stage
//!   starts). Predictions are therefore one block stale; any key block N
//!   actually changed shows up as a misprediction and lands in the
//!   executor's existing abort path — the same machinery the DST layer
//!   exercises with its `stale_every` scenarios, so pipelining buys
//!   overlap without new correctness surface.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use dmvcc_analysis::{Analyzer, CSag};
use dmvcc_state::Snapshot;
use dmvcc_vm::{BlockEnv, Transaction};

use crate::parallel::{ParallelExecutor, ParallelOutcome};

/// Below this block size the per-thread spawn cost outweighs the win;
/// refine serially.
const PARALLEL_REFINE_MIN: usize = 8;

/// Refines one C-SAG per transaction, fanning the `analyzer.csag` calls
/// across up to `threads` OS threads. Falls back to the plain serial loop
/// for one thread or tiny blocks. The output is index-aligned with `txs`
/// and identical to the serial loop's output.
pub fn refine_csags(
    analyzer: &Analyzer,
    txs: &[Transaction],
    snapshot: &Snapshot,
    block_env: &BlockEnv,
    threads: usize,
) -> Vec<CSag> {
    let threads = threads.min(txs.len());
    if threads <= 1 || txs.len() < PARALLEL_REFINE_MIN {
        return txs
            .iter()
            .map(|tx| analyzer.csag(tx, snapshot, block_env))
            .collect();
    }
    // Claim indices from a shared counter: cheap dynamic load balancing
    // (speculative fallbacks are far more expensive than symbolic
    // bindings, so static chunking would straggle).
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<CSag>> = vec![None; txs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut mine: Vec<(usize, CSag)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= txs.len() {
                        return mine;
                    }
                    mine.push((i, analyzer.csag(&txs[i], snapshot, block_env)));
                }
            }));
        }
        for handle in handles {
            for (i, csag) in handle.join().expect("refine worker panicked") {
                slots[i] = Some(csag);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

/// Wall-clock accounting of a pipelined run, for the refine-vs-execute
/// overlap the stats surface.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Blocks executed.
    pub blocks: u64,
    /// Total nanoseconds spent refining C-SAGs (all blocks).
    pub refine_nanos: u64,
    /// Total nanoseconds spent inside `execute_block_with_csags`.
    pub execute_nanos: u64,
    /// Refinement nanoseconds that ran concurrently with execution —
    /// `min(refine of block N+1, execute of block N)` summed over the
    /// chain. With pipelining off this is zero; fully hidden refinement
    /// drives it toward `refine_nanos` minus the unavoidable first block.
    pub overlapped_refine_nanos: u64,
}

impl PipelineStats {
    /// Fraction of refinement wall-time hidden behind execution.
    pub fn overlap_fraction(&self) -> f64 {
        if self.refine_nanos == 0 {
            0.0
        } else {
            self.overlapped_refine_nanos as f64 / self.refine_nanos as f64
        }
    }
}

/// Executes a chain of blocks with the analysis front-end pipelined one
/// block ahead of execution.
///
/// Block N+1's C-SAGs are refined on a separate thread against the
/// snapshot committed *before* block N, concurrently with block N's
/// execution; the executor absorbs the resulting stale predictions
/// through its abort path. Final writes are applied between blocks, so
/// the committed chain state is identical to executing the blocks
/// back-to-back.
#[derive(Debug)]
pub struct BlockPipeline {
    executor: ParallelExecutor,
    /// Threads granted to the refinement stage (the executor's workers
    /// keep their own budget).
    refine_threads: usize,
}

impl BlockPipeline {
    /// Wraps an executor; refinement uses the same thread budget as
    /// execution.
    pub fn new(executor: ParallelExecutor) -> Self {
        let refine_threads = executor.config().threads;
        BlockPipeline {
            executor,
            refine_threads,
        }
    }

    /// The wrapped executor.
    pub fn executor(&self) -> &ParallelExecutor {
        &self.executor
    }

    /// Runs `blocks` in order against `snapshot`, pipelining refinement.
    /// Returns one outcome per block plus the final snapshot and the
    /// overlap accounting. `env_of` maps a block index to its
    /// [`BlockEnv`].
    pub fn run_blocks(
        &self,
        blocks: &[Vec<Transaction>],
        snapshot: &Snapshot,
        env_of: impl Fn(usize) -> BlockEnv,
    ) -> (Vec<ParallelOutcome>, Snapshot, PipelineStats) {
        self.run_blocks_with(blocks, snapshot, env_of, |_, _| {})
    }

    /// [`BlockPipeline::run_blocks`] with a per-block hook.
    ///
    /// `on_block(i, outcome)` fires after block `i`'s writes are applied
    /// to the pipeline snapshot and **before** block `i+1` executes —
    /// the seam where a chain driver launches asynchronous state
    /// commitment (`StateDb::commit_async`), so block `i`'s root hashing
    /// overlaps block `i+1`'s refinement and execution. Keep the hook
    /// cheap: it runs on the pipeline's critical path, and anything slow
    /// belongs on the background side of the handle it launches.
    pub fn run_blocks_with(
        &self,
        blocks: &[Vec<Transaction>],
        snapshot: &Snapshot,
        env_of: impl Fn(usize) -> BlockEnv,
        mut on_block: impl FnMut(usize, &ParallelOutcome),
    ) -> (Vec<ParallelOutcome>, Snapshot, PipelineStats) {
        let mut outcomes = Vec::with_capacity(blocks.len());
        let mut stats = PipelineStats {
            blocks: blocks.len() as u64,
            ..PipelineStats::default()
        };
        let mut snapshot = snapshot.clone();
        if blocks.is_empty() {
            return (outcomes, snapshot, stats);
        }

        // Block 0 has nothing to overlap with: refine it up front.
        let analyzer = self.executor.analyzer();
        let first_start = Instant::now();
        let mut csags = refine_csags(
            analyzer,
            &blocks[0],
            &snapshot,
            &env_of(0),
            self.refine_threads,
        );
        stats.refine_nanos += first_start.elapsed().as_nanos() as u64;

        for i in 0..blocks.len() {
            let env = env_of(i);
            // The refinement stage for block i+1 deliberately reads the
            // snapshot from *before* block i commits — that staleness is
            // the price of overlap, absorbed by the abort path.
            let stale_snapshot = &snapshot;
            let (outcome, next_csags, exec_nanos, refine_nanos) = std::thread::scope(|scope| {
                let ahead = blocks.get(i + 1).map(|next_txs| {
                    let next_env = env_of(i + 1);
                    scope.spawn(move || {
                        let start = Instant::now();
                        let csags = refine_csags(
                            analyzer,
                            next_txs,
                            stale_snapshot,
                            &next_env,
                            self.refine_threads,
                        );
                        (csags, start.elapsed().as_nanos() as u64)
                    })
                });
                let start = Instant::now();
                let outcome = self
                    .executor
                    .execute_block_with_csags(&blocks[i], &snapshot, &env, &csags);
                let exec_nanos = start.elapsed().as_nanos() as u64;
                let (next_csags, refine_nanos) = match ahead {
                    Some(handle) => {
                        let (csags, nanos) = handle.join().expect("refine stage panicked");
                        (Some(csags), nanos)
                    }
                    None => (None, 0),
                };
                (outcome, next_csags, exec_nanos, refine_nanos)
            });
            stats.execute_nanos += exec_nanos;
            stats.refine_nanos += refine_nanos;
            stats.overlapped_refine_nanos += refine_nanos.min(exec_nanos);
            snapshot = snapshot.apply(&outcome.final_writes);
            on_block(i, &outcome);
            outcomes.push(outcome);
            if let Some(next) = next_csags {
                csags = next;
            }
        }
        (outcomes, snapshot, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::execute_block_serial;
    use crate::parallel::ParallelConfig;
    use dmvcc_primitives::{Address, U256};
    use dmvcc_vm::{calldata, contracts, CodeRegistry, TxEnv};

    const TOKEN: u64 = 850;

    fn registry() -> CodeRegistry {
        CodeRegistry::builder()
            .deploy(Address::from_u64(TOKEN), contracts::token())
            .build()
    }

    fn mint(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::MINT,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn transfer(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::TRANSFER,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn chain_blocks() -> Vec<Vec<Transaction>> {
        // Block 1 funds the accounts block 2 spends from, and block 2
        // rewrites balances block 3 reads: every block's predictions go
        // stale for the pipelined refinement of the next one.
        vec![
            (0..12).map(|i| mint(900 + i, 1 + i % 4, 50)).collect(),
            (0..12)
                .map(|i| transfer(1 + i % 4, 1 + (i + 1) % 4, 3))
                .collect(),
            (0..12)
                .map(|i| {
                    if i % 2 == 0 {
                        transfer(1 + i % 4, 5 + i % 3, 2)
                    } else {
                        mint(950 + i, 1 + i % 4, 9)
                    }
                })
                .collect(),
        ]
    }

    #[test]
    fn parallel_refinement_matches_serial_loop() {
        let analyzer = Analyzer::new(registry());
        let txs: Vec<Transaction> = (0..24).map(|i| mint(900 + i, 1 + i % 6, 10)).collect();
        let snapshot = Snapshot::empty();
        let env = BlockEnv::default();
        let serial: Vec<CSag> = txs
            .iter()
            .map(|tx| analyzer.csag(tx, &snapshot, &env))
            .collect();
        for threads in [1, 2, 4, 8] {
            let fanned = refine_csags(&analyzer, &txs, &snapshot, &env, threads);
            assert_eq!(fanned.len(), serial.len());
            for (a, b) in fanned.iter().zip(&serial) {
                assert_eq!(a.reads, b.reads);
                assert_eq!(a.writes, b.writes);
                assert_eq!(a.adds, b.adds);
                assert_eq!(a.tier, b.tier);
                assert_eq!(a.predicted_gas, b.predicted_gas);
            }
        }
    }

    #[test]
    fn pipelined_chain_matches_sequential_execution() {
        let blocks = chain_blocks();
        let analyzer = Analyzer::new(registry());
        let env_of = |i: usize| BlockEnv::new(1 + i as u64, 1_700_000_000 + i as u64 * 12);

        // Reference: serial oracle, block by block.
        let mut expected = Snapshot::empty();
        for (i, txs) in blocks.iter().enumerate() {
            let trace = execute_block_serial(txs, &expected, &analyzer, &env_of(i));
            expected = expected.apply(&trace.final_writes);
        }

        let executor = ParallelExecutor::new(
            analyzer.clone(),
            ParallelConfig {
                threads: 4,
                max_attempts: 64,
                ..ParallelConfig::default()
            },
        );
        let pipeline = BlockPipeline::new(executor);
        let (outcomes, final_snapshot, stats) =
            pipeline.run_blocks(&blocks, &Snapshot::empty(), env_of);
        assert_eq!(outcomes.len(), blocks.len());
        assert_eq!(stats.blocks, blocks.len() as u64);
        assert!(stats.refine_nanos > 0);
        assert!(stats.execute_nanos > 0);
        assert_eq!(entries(&final_snapshot), entries(&expected));
    }

    /// A snapshot's materialized contents in a comparable form.
    fn entries(snapshot: &Snapshot) -> std::collections::BTreeMap<dmvcc_state::StateKey, U256> {
        snapshot.iter().collect()
    }

    #[test]
    fn empty_chain_is_a_no_op() {
        let pipeline = BlockPipeline::new(ParallelExecutor::new(
            Analyzer::new(registry()),
            ParallelConfig::default(),
        ));
        let (outcomes, snapshot, stats) =
            pipeline.run_blocks(&[], &Snapshot::empty(), |_| BlockEnv::default());
        assert!(outcomes.is_empty());
        assert_eq!(stats, PipelineStats::default());
        assert!(snapshot.is_empty());
    }

    #[test]
    fn overlap_fraction_bounded() {
        let blocks = chain_blocks();
        let pipeline = BlockPipeline::new(ParallelExecutor::new(
            Analyzer::new(registry()),
            ParallelConfig {
                threads: 2,
                max_attempts: 64,
                ..ParallelConfig::default()
            },
        ));
        let (_, _, stats) = pipeline.run_blocks(&blocks, &Snapshot::empty(), |i| {
            BlockEnv::new(1 + i as u64, 1_700_000_000)
        });
        let fraction = stats.overlap_fraction();
        assert!((0.0..=1.0).contains(&fraction), "fraction {fraction}");
        assert!(stats.overlapped_refine_nanos <= stats.refine_nanos);
        assert!(stats.overlapped_refine_nanos <= stats.execute_nanos);
    }
}
