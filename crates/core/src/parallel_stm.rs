//! The optimistic (Block-STM-style) threaded executor and the hybrid
//! predictive/optimistic dispatcher.
//!
//! Where [`crate::ParallelExecutor`] *predicts* state accesses (C-SAGs)
//! and blocks readers on exactly the versions they depend on, this module
//! assumes nothing: every transaction executes optimistically against a
//! **multi-version map**, records the values it read, and is validated at
//! its commit turn against the serial order (the design of Aptos
//! Block-STM, adapted to this codebase's [`KeyId`] interning and
//! commutative-add semantics):
//!
//! - **Multi-version map** ([`MvMap`]): per-key version lists keyed by the
//!   block-scoped [`KeyInterner`] ids, sharded by id so disjoint keys
//!   never contend. A version is a full `Write`, a commutative `Delta`
//!   (ω̄ — airdrop-style increments merge instead of serializing), or an
//!   `Estimate` marker while its transaction is being re-executed.
//! - **Optimistic execution**: workers claim transactions in block order
//!   from an atomic cursor and run them immediately — no readiness probe,
//!   no predicted read sets. Reads resolve to the highest version below
//!   the reader (write plus the deltas above it, or the snapshot plus all
//!   deltas) and are recorded as `(key, value)` pairs.
//! - **Lazy validation-ordered commit**: a single commit cursor walks the
//!   serial order under the commit lock. Each transaction's recorded
//!   reads are re-resolved; if every value is unchanged the execution is
//!   equivalent to a serial one and commits as-is. Otherwise its versions
//!   become `Estimate`s and it re-executes *at its commit turn* — every
//!   lower transaction is final, so the re-execution is deterministic and
//!   exactly serial. Each transaction therefore executes at most twice.
//!
//! Validation compares **values**, not version identities: a read that
//! observed the right value through the wrong interleaving commits
//! without re-execution (the classic OCC argument — a deterministic VM
//! re-run with identical reads follows the identical path).
//!
//! Lock order: commit lock → transaction slot → map shard; the interner
//! tail mutex is a leaf. Readers blocked on an `Estimate` spin-then-park
//! on the progress event; the marker's owner is the commit-lock holder,
//! which is actively re-executing, so the wait is bounded.
//!
//! [`HybridExecutor`] composes the two engines the way the paper's
//! pool-desync discussion suggests: transactions whose C-SAGs bound
//! symbolically (or loop-summarized) keep their predicted access
//! sequences and flow through the sharded predictive executor, while
//! speculative-fallback and unanalyzable transactions have their
//! predictions stripped to [`CSag::optimistic`] — inside the *same*
//! sharded execution they run exactly as empty-prediction OCC
//! transactions (buffered writes, publish at finalize, dynamic insertion
//! with stale-read aborts as validation), sharing the block's snapshot,
//! interner, arenas and [`ExecutorStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use dmvcc_primitives::U256;
use dmvcc_state::{FxBuildHasher, KeyId, KeyInterner, Snapshot, StateKey, WriteSet};
use dmvcc_vm::{execute, BlockEnv, ExecParams, ExecStatus, Host, HostError, Transaction, TxKind};

use dmvcc_analysis::{Analyzer, CSag, RefinementTier};

use crate::arena::SmallMap;
use crate::hook::SchedHook;
use crate::parallel::{Event, ExecutorStats, ParallelConfig, ParallelExecutor, ParallelOutcome};

/// Shards of the multi-version map. Power of two so the id → shard map is
/// a mask; comfortably more than the worker count so disjoint keys rarely
/// share a lock.
const MV_SHARDS: usize = 64;

/// Backstop for a reader parked on an `Estimate` or an idle worker parked
/// on the commit tail; both are signaled on every commit, so the timeout
/// only bounds the cost of a missed wakeup.
const STM_PARK: Duration = Duration::from_millis(1);

/// Spins (with `yield_now`) before a blocked reader parks on the progress
/// event — estimate windows are short (the holder is mid-re-execution).
const ESTIMATE_SPINS: u32 = 16;

/// One version in a key's version list.
#[derive(Debug, Clone, Copy)]
enum Cell {
    /// A full write: readers above see this value plus any deltas between.
    Write(U256),
    /// A commutative ω̄ delta: merged into whatever lies below.
    Delta(U256),
    /// The owning transaction failed validation and is re-executing at its
    /// commit turn; readers wait rather than consume a doomed value.
    Estimate,
}

/// A version list entry; lists are kept sorted by transaction index.
#[derive(Debug, Clone, Copy)]
struct VersionEntry {
    tx: u32,
    cell: Cell,
}

/// What a multi-version read resolved to, before snapshot layering.
enum Resolution {
    /// A write below the reader (already merged with the deltas above it).
    Value(U256),
    /// No write below the reader: the sum of deltas, to be layered onto
    /// the snapshot value.
    BaseDelta(U256),
    /// The scan hit an `Estimate` — its owner is mid-re-execution.
    Blocked,
}

/// The sharded multi-version map. Keys are dense [`KeyId`] indexes; each
/// shard is an FxHash map from key index to its sorted version list.
struct MvMap {
    shards: Vec<Mutex<HashMap<u32, Vec<VersionEntry>, FxBuildHasher>>>,
}

impl MvMap {
    fn new() -> MvMap {
        MvMap {
            shards: (0..MV_SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
        }
    }

    #[inline]
    fn shard_of(id: u32) -> usize {
        id as usize & (MV_SHARDS - 1)
    }

    /// Resolves `id` for `reader`: the nearest write below it plus the
    /// deltas between, or the delta sum alone when no write is below.
    fn read(&self, id: u32, reader: usize) -> Resolution {
        let shard = self.shards[Self::shard_of(id)].lock();
        let Some(entries) = shard.get(&id) else {
            return Resolution::BaseDelta(U256::ZERO);
        };
        let mut deltas = U256::ZERO;
        for entry in entries.iter().rev() {
            if entry.tx as usize >= reader {
                continue;
            }
            match entry.cell {
                Cell::Delta(d) => deltas = deltas.wrapping_add(d),
                Cell::Write(w) => return Resolution::Value(w.wrapping_add(deltas)),
                Cell::Estimate => return Resolution::Blocked,
            }
        }
        Resolution::BaseDelta(deltas)
    }

    /// Replaces transaction `tx`'s versions: upserts `entries` (sorted by
    /// id) and removes its versions of `stale` ids. One lock per involved
    /// shard.
    fn publish(&self, tx: usize, entries: &[(KeyId, U256, bool)], stale: &[KeyId]) {
        enum Op {
            Upsert(Cell),
            Remove,
        }
        let mut ops: Vec<(u32, Op)> = entries
            .iter()
            .map(|&(id, value, delta)| {
                let cell = if delta {
                    Cell::Delta(value)
                } else {
                    Cell::Write(value)
                };
                (id.index() as u32, Op::Upsert(cell))
            })
            .chain(stale.iter().map(|id| (id.index() as u32, Op::Remove)))
            .collect();
        ops.sort_unstable_by_key(|(id, _)| (Self::shard_of(*id), *id));
        let mut i = 0;
        while i < ops.len() {
            let shard_index = Self::shard_of(ops[i].0);
            let mut shard = self.shards[shard_index].lock();
            while i < ops.len() && Self::shard_of(ops[i].0) == shard_index {
                let (id, ref op) = ops[i];
                let list = shard.entry(id).or_default();
                let position = list.binary_search_by_key(&(tx as u32), |e| e.tx);
                match (op, position) {
                    (Op::Upsert(cell), Ok(at)) => list[at].cell = *cell,
                    (Op::Upsert(cell), Err(at)) => list.insert(
                        at,
                        VersionEntry {
                            tx: tx as u32,
                            cell: *cell,
                        },
                    ),
                    (Op::Remove, Ok(at)) => {
                        list.remove(at);
                    }
                    (Op::Remove, Err(_)) => {}
                }
                i += 1;
            }
        }
    }

    /// Marks every version `tx` has published as an [`Cell::Estimate`], so
    /// concurrent readers wait for the commit-turn re-execution instead of
    /// consuming doomed values.
    fn mark_estimates(&self, tx: usize, published: &[KeyId]) {
        let mut ids: Vec<u32> = published.iter().map(|id| id.index() as u32).collect();
        ids.sort_unstable_by_key(|id| (Self::shard_of(*id), *id));
        let mut i = 0;
        while i < ids.len() {
            let shard_index = Self::shard_of(ids[i]);
            let mut shard = self.shards[shard_index].lock();
            while i < ids.len() && Self::shard_of(ids[i]) == shard_index {
                if let Some(list) = shard.get_mut(&ids[i]) {
                    if let Ok(at) = list.binary_search_by_key(&(tx as u32), |e| e.tx) {
                        list[at].cell = Cell::Estimate;
                    }
                }
                i += 1;
            }
        }
    }

    /// Folds every key's version list into the block's final write set:
    /// the topmost write plus the deltas above it (or the snapshot value
    /// plus all deltas), skipping keys whose final value equals the
    /// snapshot — the same rule the serial oracle applies.
    fn final_writes(&self, interner: &KeyInterner, snapshot: &Snapshot) -> WriteSet {
        let mut writes = WriteSet::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&id, entries) in shard.iter() {
                if entries.is_empty() {
                    continue;
                }
                let key = interner.resolve(KeyId::from_index(id as usize));
                let mut deltas = U256::ZERO;
                let mut value = None;
                for entry in entries.iter().rev() {
                    match entry.cell {
                        Cell::Delta(d) => deltas = deltas.wrapping_add(d),
                        Cell::Write(w) => {
                            value = Some(w.wrapping_add(deltas));
                            break;
                        }
                        Cell::Estimate => {
                            unreachable!("estimate survived the commit of its transaction")
                        }
                    }
                }
                let value = value.unwrap_or_else(|| snapshot.get(&key).wrapping_add(deltas));
                if snapshot.get(&key) != value {
                    writes.insert(key, value);
                }
            }
        }
        writes
    }
}

/// Per-transaction result slot. `status` turning `Some` is the signal (to
/// the commit cursor, under the slot lock) that the optimistic execution
/// finished and its versions are published.
#[derive(Debug, Default)]
struct TxSlot {
    /// Executions so far (1 after the optimistic pass, 2 after a
    /// commit-turn re-execution).
    execs: u32,
    /// Terminal status of the latest execution.
    status: Option<ExecStatus>,
    /// External reads `(id, observed value)` of the latest execution, in
    /// order — the validation set.
    reads: Vec<(KeyId, U256)>,
    /// Ids with a live version in the multi-version map.
    published: Vec<KeyId>,
}

/// Everything the workers share for one block.
struct StmShared<'a> {
    txs: &'a [Transaction],
    snapshot: &'a Snapshot,
    block_env: &'a BlockEnv,
    analyzer: &'a Analyzer,
    interner: Arc<KeyInterner>,
    mv: MvMap,
    slots: Vec<Mutex<TxSlot>>,
    /// Next transaction to execute optimistically.
    next_execute: AtomicUsize,
    /// The commit cursor: next transaction to validate+commit, in serial
    /// order. Guarded by a mutex so exactly one worker drains the tail.
    commit_next: Mutex<usize>,
    /// Transactions committed so far (the termination condition).
    committed: AtomicUsize,
    /// Signaled on every execution finish and every commit.
    progress: Event,
    hook: Option<&'a Arc<dyn SchedHook>>,
    attempts: AtomicU64,
    publishes: AtomicU64,
    parks: AtomicU64,
    validations: AtomicU64,
    validation_failures: AtomicU64,
    aborts: AtomicU64,
}

impl StmShared<'_> {
    /// Resolves the external (non-own) component of a read, waiting out
    /// `Estimate` markers. The marker's owner is the commit-lock holder
    /// mid-re-execution, which never waits on this reader — so the spin
    /// is deadlock-free and short.
    fn resolve_external(&self, id: KeyId, key: &StateKey, reader: usize) -> U256 {
        let raw = id.index() as u32;
        let mut spins = 0u32;
        loop {
            let seen = self.progress.epoch();
            match self.mv.read(raw, reader) {
                Resolution::Value(value) => {
                    if let Some(hook) = self.hook {
                        hook.on_stm_read(reader, key, spins > 0);
                    }
                    return value;
                }
                Resolution::BaseDelta(deltas) => {
                    if let Some(hook) = self.hook {
                        hook.on_stm_read(reader, key, spins > 0);
                    }
                    return self.snapshot.get(key).wrapping_add(deltas);
                }
                Resolution::Blocked => {
                    spins += 1;
                    if spins <= ESTIMATE_SPINS {
                        std::thread::yield_now();
                    } else {
                        if let Some(hook) = self.hook {
                            hook.on_park(Some(reader));
                        }
                        self.parks.fetch_add(1, Ordering::Relaxed);
                        self.progress.wait_while(seen, STM_PARK);
                        if let Some(hook) = self.hook {
                            hook.on_wake(Some(reader));
                        }
                    }
                }
            }
        }
    }

    /// Re-resolves `tx`'s recorded reads at its commit turn. Every lower
    /// transaction is committed, so the resolution is final — equality
    /// means the optimistic execution already observed the serial values.
    fn validate(&self, tx: usize, reads: &[(KeyId, U256)]) -> bool {
        reads.iter().all(|&(id, expected)| {
            let key = self.interner.resolve(id);
            self.resolve_external(id, &key, tx) == expected
        })
    }
}

/// Host for one optimistic execution: buffers own writes and ω̄ deltas
/// (merged on read exactly like the serial oracle's host) and records the
/// external component of every read for commit-turn validation.
struct StmHost<'a, 'b> {
    shared: &'b StmShared<'a>,
    tx: usize,
    writes: SmallMap,
    adds: SmallMap,
    reads: Vec<(KeyId, U256)>,
}

impl Host for StmHost<'_, '_> {
    fn sload(&mut self, key: StateKey) -> Result<U256, HostError> {
        let id = self.shared.interner.intern(key);
        // Own buffered write wins (plus own deltas folded on top).
        if let Some(v) = self.writes.get(id) {
            let own = self.adds.get(id).unwrap_or(U256::ZERO);
            return Ok(v.wrapping_add(own));
        }
        let external = self.shared.resolve_external(id, &key, self.tx);
        self.reads.push((id, external));
        let own = self.adds.get(id).unwrap_or(U256::ZERO);
        Ok(external.wrapping_add(own))
    }

    fn sstore(&mut self, key: StateKey, value: U256) -> Result<(), HostError> {
        let id = self.shared.interner.intern(key);
        // A full write after own adds folds them in (oracle semantics).
        self.adds.remove(id);
        self.writes.insert(id, value);
        Ok(())
    }

    fn sadd(&mut self, key: StateKey, delta: U256) -> Result<(), HostError> {
        let id = self.shared.interner.intern(key);
        if let Some(v) = self.writes.get_mut(id) {
            *v = v.wrapping_add(delta);
        } else {
            self.adds.add(id, delta);
        }
        Ok(())
    }
}

/// The result of one optimistic execution.
struct TxRun {
    status: ExecStatus,
    /// The validation read set: every external `(key, value)` observed.
    reads: Vec<(KeyId, U256)>,
    /// The versions to publish (empty unless the execution succeeded);
    /// the `bool` marks commutative deltas.
    entries: Vec<(KeyId, U256, bool)>,
}

/// Executes `tx` once against the current multi-version state.
fn execute_tx(shared: &StmShared<'_>, tx_index: usize) -> TxRun {
    let tx = &shared.txs[tx_index];
    let mut host = StmHost {
        shared,
        tx: tx_index,
        writes: SmallMap::new(),
        adds: SmallMap::new(),
        reads: Vec::new(),
    };
    let status = match tx.kind {
        TxKind::Transfer => run_transfer(&mut host, tx),
        TxKind::Call => match shared.analyzer.registry().code(&tx.to()) {
            Some(code) => {
                let params = ExecParams {
                    code: &code,
                    tx: &tx.env,
                    block: shared.block_env,
                    // The optimistic engine never publishes early, so
                    // release-point callbacks have nothing to gate.
                    release_points: None,
                    registry: Some(shared.analyzer.registry()),
                };
                execute(&params, &mut host).status
            }
            // Unknown contract: trivially succeeds without touching state.
            None => ExecStatus::Success,
        },
    };
    let entries = if status.is_success() {
        host.writes
            .iter()
            .map(|(id, v)| (id, v, false))
            .chain(host.adds.iter().map(|(id, v)| (id, v, true)))
            .collect()
    } else {
        Vec::new()
    };
    TxRun {
        status,
        reads: host.reads,
        entries,
    }
}

/// A pure Ether transfer, mirroring the serial oracle's semantics: revert
/// on insufficient balance, else debit (full write) and credit (ω̄ delta).
fn run_transfer(host: &mut StmHost<'_, '_>, tx: &Transaction) -> ExecStatus {
    let from = StateKey::balance(tx.sender());
    let to = StateKey::balance(tx.to());
    let balance = host.sload(from).expect("stm host never aborts");
    if balance < tx.env.value {
        return ExecStatus::Reverted;
    }
    host.sstore(from, balance - tx.env.value)
        .expect("stm host never aborts");
    host.sadd(to, tx.env.value).expect("stm host never aborts");
    ExecStatus::Success
}

/// Publishes an execution's versions under the slot lock: upserts the new
/// entries and removes versions the new incarnation no longer produces.
fn publish(
    shared: &StmShared<'_>,
    tx: usize,
    entries: Vec<(KeyId, U256, bool)>,
    slot: &mut TxSlot,
) {
    let new_ids: Vec<KeyId> = entries.iter().map(|&(id, _, _)| id).collect();
    // Previously published ids absent from the new incarnation (both lists
    // are ascending: SmallMap iterates in id order and writes sort before
    // adds only by id disjointness — merge-diff over sorted sets).
    let stale: Vec<KeyId> = slot
        .published
        .iter()
        .filter(|id| !new_ids.contains(id))
        .copied()
        .collect();
    if !entries.is_empty() || !stale.is_empty() {
        shared.mv.publish(tx, &entries, &stale);
    }
    shared
        .publishes
        .fetch_add(entries.len() as u64, Ordering::Relaxed);
    if let Some(hook) = shared.hook {
        for &(id, _, delta) in &entries {
            hook.on_publish(tx, &shared.interner.resolve(id), delta);
        }
    }
    slot.published = new_ids;
}

/// Drains the commit tail if the commit lock is free: validate the next
/// transaction in serial order, re-execute it in place on failure, commit,
/// advance. Runs until the cursor hits an unexecuted transaction.
fn try_commit(shared: &StmShared<'_>) {
    let n = shared.txs.len();
    let Some(mut next) = shared.commit_next.try_lock() else {
        return;
    };
    while *next < n {
        let t = *next;
        let mut slot = shared.slots[t].lock();
        if slot.status.is_none() {
            return; // Not yet executed; a later pass resumes here.
        }
        let ok = shared.validate(t, &slot.reads);
        shared.validations.fetch_add(1, Ordering::Relaxed);
        if let Some(hook) = shared.hook {
            hook.on_validate(t, slot.execs, ok);
        }
        if !ok {
            shared.validation_failures.fetch_add(1, Ordering::Relaxed);
            shared.aborts.fetch_add(1, Ordering::Relaxed);
            if let Some(hook) = shared.hook {
                hook.on_abort(t, t);
            }
            // Doom the stale versions, then re-execute at the commit
            // turn: everything below is final, so this run is serial.
            shared.mv.mark_estimates(t, &slot.published);
            let run = execute_tx(shared, t);
            shared.attempts.fetch_add(1, Ordering::Relaxed);
            slot.execs += 1;
            slot.status = Some(run.status);
            slot.reads = run.reads;
            publish(shared, t, run.entries, &mut slot);
        }
        if let Some(hook) = shared.hook {
            hook.on_commit(t);
        }
        drop(slot);
        shared.committed.fetch_add(1, Ordering::Release);
        *next = t + 1;
        shared.progress.signal();
    }
}

/// One worker: alternate between draining the commit tail and claiming
/// the next transaction for optimistic execution; park when both are dry.
fn worker(shared: &StmShared<'_>, index: usize, pin_cores: bool) {
    if pin_cores {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        crate::affinity::pin_current_thread(index % cores);
    }
    let n = shared.txs.len();
    loop {
        try_commit(shared);
        if shared.committed.load(Ordering::Acquire) >= n {
            return;
        }
        let t = shared.next_execute.fetch_add(1, Ordering::Relaxed);
        if t < n {
            if let Some(hook) = shared.hook {
                hook.on_dequeue(t, 1);
            }
            let run = execute_tx(shared, t);
            shared.attempts.fetch_add(1, Ordering::Relaxed);
            let mut slot = shared.slots[t].lock();
            publish(shared, t, run.entries, &mut slot);
            slot.execs = 1;
            slot.reads = run.reads;
            // Publish-before-status: the commit cursor only looks at a
            // slot whose status is set, under the same lock.
            slot.status = Some(run.status);
            drop(slot);
            shared.progress.signal();
            continue;
        }
        // Nothing left to execute: wait for the commit tail to advance.
        let seen = shared.progress.epoch();
        if shared.committed.load(Ordering::Acquire) >= n {
            return;
        }
        if let Some(hook) = shared.hook {
            hook.on_park(None);
        }
        shared.parks.fetch_add(1, Ordering::Relaxed);
        shared.progress.wait_while(seen, STM_PARK);
        if let Some(hook) = shared.hook {
            hook.on_wake(None);
        }
    }
}

/// The Block-STM-style optimistic threaded executor.
///
/// API-compatible with [`ParallelExecutor`]: `execute_block` /
/// `execute_block_with_csags` return a [`ParallelOutcome`] whose write
/// set equals the serial oracle's for any interleaving. Unlike the
/// predictive executor it needs no C-SAGs — `execute_block` skips
/// refinement entirely, and `execute_block_with_csags` uses the supplied
/// predictions only to pre-intern keys (a performance hint; correctness
/// never depends on them, so fault-perturbed predictions are harmless by
/// construction).
pub struct StmExecutor {
    analyzer: Analyzer,
    config: ParallelConfig,
    hook: Option<Arc<dyn SchedHook>>,
}

impl StmExecutor {
    /// Creates an optimistic executor. Of [`ParallelConfig`] only
    /// `threads` and `pin_cores` apply: the engine has no ready-queue
    /// policy, and its convergence bound (two executions per transaction)
    /// makes `max_attempts` moot.
    pub fn new(analyzer: Analyzer, config: ParallelConfig) -> Self {
        StmExecutor {
            analyzer,
            config,
            hook: None,
        }
    }

    /// Installs a scheduler hook (DST observation/perturbation surface).
    pub fn with_hook(mut self, hook: Arc<dyn SchedHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// The analyzer in use (the STM engine only needs its code registry).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Executes a block optimistically. No refinement happens — the whole
    /// point of this engine is running unanalyzable blocks — so only the
    /// transfers' trivially-known balance keys are pre-interned.
    pub fn execute_block(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
    ) -> ParallelOutcome {
        let mut interner = KeyInterner::new();
        for tx in txs {
            if tx.kind == TxKind::Transfer {
                interner.preintern(StateKey::balance(tx.sender()));
                interner.preintern(StateKey::balance(tx.to()));
            }
        }
        self.run(txs, snapshot, block_env, interner)
    }

    /// Executes a block optimistically, pre-interning the predicted keys
    /// of `csags` so most runtime lookups hit the interner's lock-free
    /// frozen tier. The predictions are *only* an interning hint.
    pub fn execute_block_with_csags(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
        csags: &[CSag],
    ) -> ParallelOutcome {
        assert_eq!(txs.len(), csags.len(), "one C-SAG per transaction");
        let mut interner = KeyInterner::new();
        for sag in csags {
            for key in sag.reads.iter().chain(&sag.writes).chain(&sag.adds) {
                interner.preintern(*key);
            }
        }
        self.run(txs, snapshot, block_env, interner)
    }

    fn run(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
        interner: KeyInterner,
    ) -> ParallelOutcome {
        if txs.is_empty() {
            return ParallelOutcome {
                final_writes: WriteSet::new(),
                statuses: Vec::new(),
                aborts: 0,
                stats: ExecutorStats::default(),
            };
        }
        let shared = StmShared {
            txs,
            snapshot,
            block_env,
            analyzer: &self.analyzer,
            interner: Arc::new(interner),
            mv: MvMap::new(),
            slots: (0..txs.len())
                .map(|_| Mutex::new(TxSlot::default()))
                .collect(),
            next_execute: AtomicUsize::new(0),
            commit_next: Mutex::new(0),
            committed: AtomicUsize::new(0),
            progress: Event::default(),
            hook: self.hook.as_ref(),
            attempts: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            validations: AtomicU64::new(0),
            validation_failures: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
        };
        let threads = self.config.threads.clamp(1, txs.len());
        std::thread::scope(|scope| {
            for index in 1..threads {
                let shared = &shared;
                let pin = self.config.pin_cores;
                scope.spawn(move || worker(shared, index, pin));
            }
            worker(&shared, 0, self.config.pin_cores);
        });
        debug_assert_eq!(shared.committed.load(Ordering::Acquire), txs.len());

        let final_writes = shared.mv.final_writes(&shared.interner, snapshot);
        let statuses: Vec<ExecStatus> = shared
            .slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .status
                    .clone()
                    .expect("every transaction committed")
            })
            .collect();
        let stats = ExecutorStats {
            attempts: shared.attempts.load(Ordering::Relaxed),
            publishes: shared.publishes.load(Ordering::Relaxed),
            parks: shared.parks.load(Ordering::Relaxed),
            validations: shared.validations.load(Ordering::Relaxed),
            validation_failures: shared.validation_failures.load(Ordering::Relaxed),
            optimistic_txs: txs.len() as u64,
            ..ExecutorStats::default()
        };
        ParallelOutcome {
            final_writes,
            statuses,
            aborts: shared.aborts.load(Ordering::Relaxed),
            stats,
        }
    }
}

/// The hybrid predictive/optimistic dispatcher.
///
/// Routing rule: transactions whose C-SAGs refined to
/// [`RefinementTier::Symbolic`], [`RefinementTier::LoopSummarized`] or
/// [`RefinementTier::Exact`] keep their predicted access sequences;
/// [`RefinementTier::Speculative`] fallbacks and
/// [`RefinementTier::Optimistic`] (unanalyzable) transactions have their
/// predictions stripped to [`CSag::optimistic`]. The whole block then
/// runs on the *one* sharded predictive executor — stripped transactions
/// execute exactly as empty-prediction OCC transactions there (buffered
/// writes published at finalize; dynamic insertion plus stale-read abort
/// cascades play the role of optimistic validation), so both populations
/// share the block's snapshot, interner, arenas and [`ExecutorStats`].
pub struct HybridExecutor {
    inner: ParallelExecutor,
}

impl HybridExecutor {
    /// Creates a hybrid dispatcher over a sharded predictive executor.
    pub fn new(analyzer: Analyzer, config: ParallelConfig) -> Self {
        HybridExecutor {
            inner: ParallelExecutor::new(analyzer, config),
        }
    }

    /// Installs a scheduler hook on the underlying sharded executor.
    pub fn with_hook(mut self, hook: Arc<dyn SchedHook>) -> Self {
        self.inner = self.inner.with_hook(hook);
        self
    }

    /// The analyzer in use.
    pub fn analyzer(&self) -> &Analyzer {
        self.inner.analyzer()
    }

    /// The executor's configuration.
    pub fn config(&self) -> &ParallelConfig {
        self.inner.config()
    }

    /// Applies the routing rule in place: predictions of
    /// speculative-fallback and unanalyzable transactions are replaced with
    /// [`CSag::optimistic`]; the well-analyzed tiers are left untouched (no
    /// clone — routing must not tax the analyzable path). Returns how many
    /// transactions were sent optimistic.
    pub fn route_csags(csags: &mut [CSag]) -> u64 {
        let mut optimistic = 0u64;
        for sag in csags.iter_mut() {
            if matches!(
                sag.tier,
                RefinementTier::Speculative | RefinementTier::Optimistic
            ) {
                optimistic += 1;
                *sag = CSag::optimistic();
            }
        }
        optimistic
    }

    /// Refines the block's C-SAGs, routes them in place, and executes.
    pub fn execute_block(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
    ) -> ParallelOutcome {
        let refine_start = std::time::Instant::now();
        let hits_before = self.inner.analyzer().registry().summaries().hits();
        let mut csags = crate::pipeline::refine_csags(
            self.inner.analyzer(),
            txs,
            snapshot,
            block_env,
            self.inner.config().threads,
        );
        let refine_nanos = refine_start.elapsed().as_nanos() as u64;
        let summary_hits = self.inner.analyzer().registry().summaries().hits() - hits_before;
        let optimistic = Self::route_csags(&mut csags);
        let mut outcome = self
            .inner
            .execute_block_with_csags(txs, snapshot, block_env, &csags);
        outcome.stats.refine_nanos = refine_nanos;
        outcome.stats.optimistic_txs = optimistic;
        outcome.stats.summary_cache_hits = summary_hits;
        outcome
    }

    /// Routes pre-refined C-SAGs and executes the block on the sharded
    /// predictive executor. The input slice is borrowed, so routing clones
    /// it only when at least one transaction actually needs stripping.
    pub fn execute_block_with_csags(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
        csags: &[CSag],
    ) -> ParallelOutcome {
        let needs_routing = csags.iter().any(|sag| {
            matches!(
                sag.tier,
                RefinementTier::Speculative | RefinementTier::Optimistic
            )
        });
        let (mut outcome, optimistic) = if needs_routing {
            let mut routed = csags.to_vec();
            let optimistic = Self::route_csags(&mut routed);
            let outcome = self
                .inner
                .execute_block_with_csags(txs, snapshot, block_env, &routed);
            (outcome, optimistic)
        } else {
            let outcome = self
                .inner
                .execute_block_with_csags(txs, snapshot, block_env, csags);
            (outcome, 0)
        };
        outcome.stats.optimistic_txs = optimistic;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::execute_block_serial;
    use dmvcc_primitives::Address;
    use dmvcc_vm::CodeRegistry;

    fn transfer(from: u64, to: u64, value: u64) -> Transaction {
        Transaction::transfer(
            Address::from_u64(from),
            Address::from_u64(to),
            U256::from(value),
        )
    }

    fn genesis(accounts: u64, balance: u64) -> Snapshot {
        Snapshot::from_entries(
            (1..=accounts).map(|i| (StateKey::balance(Address::from_u64(i)), U256::from(balance))),
        )
    }

    fn check_against_serial(txs: &[Transaction], snapshot: &Snapshot, threads: usize) {
        let analyzer = Analyzer::new(CodeRegistry::default());
        let env = BlockEnv::default();
        let trace = execute_block_serial(txs, snapshot, &analyzer, &env);
        let config = ParallelConfig {
            threads,
            ..ParallelConfig::default()
        };
        let stm = StmExecutor::new(analyzer.clone(), config);
        let outcome = stm.execute_block(txs, snapshot, &env);
        assert_eq!(outcome.final_writes, trace.final_writes);
        let statuses: Vec<ExecStatus> = trace.txs.iter().map(|t| t.status.clone()).collect();
        assert_eq!(outcome.statuses, statuses);
        assert_eq!(outcome.stats.validations, txs.len() as u64);
        assert_eq!(outcome.stats.optimistic_txs, txs.len() as u64);
        assert_eq!(
            outcome.stats.attempts,
            txs.len() as u64 + outcome.stats.validation_failures
        );

        let hybrid = HybridExecutor::new(analyzer, config);
        let houtcome = hybrid.execute_block(txs, snapshot, &env);
        assert_eq!(houtcome.final_writes, trace.final_writes);
        assert_eq!(houtcome.statuses, statuses);
    }

    #[test]
    fn dependent_transfer_chain_matches_serial() {
        // 1 → 2 → 3 → … : every transfer depends on the previous credit.
        let txs: Vec<Transaction> = (1..=12).map(|i| transfer(i, i + 1, 80 + i)).collect();
        let snapshot = genesis(13, 100);
        for threads in [1, 4] {
            check_against_serial(&txs, &snapshot, threads);
        }
    }

    #[test]
    fn airdrop_style_credits_merge_as_deltas() {
        // Many senders credit one hot account: ω̄ deltas must merge, and
        // every validation must pass (nobody reads the hot balance).
        let txs: Vec<Transaction> = (1..=16).map(|i| transfer(i, 99, 5)).collect();
        let snapshot = genesis(99, 50);
        let analyzer = Analyzer::new(CodeRegistry::default());
        let env = BlockEnv::default();
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let stm = StmExecutor::new(
            analyzer,
            ParallelConfig {
                threads: 4,
                ..ParallelConfig::default()
            },
        );
        let outcome = stm.execute_block(&txs, &snapshot, &env);
        assert_eq!(outcome.final_writes, trace.final_writes);
        // Credits commute: no sender reads another's balance, so the
        // optimistic pass is conflict-free.
        assert_eq!(outcome.stats.validation_failures, 0);
        assert_eq!(outcome.aborts, 0);
    }

    #[test]
    fn insufficient_balance_reverts_match_serial() {
        // Reverting transfers publish nothing; their statuses still match.
        let txs = vec![
            transfer(1, 2, 100), // drains 1
            transfer(1, 3, 1),   // now underfunded → reverted
            transfer(2, 3, 150), // funded only by tx0's credit
        ];
        let snapshot = genesis(3, 100);
        for threads in [1, 2, 4] {
            check_against_serial(&txs, &snapshot, threads);
        }
    }

    #[test]
    fn unknown_contract_calls_succeed_without_state() {
        let mut txs = vec![transfer(1, 2, 10)];
        txs.push(Transaction::call(dmvcc_vm::TxEnv::call(
            Address::from_u64(1),
            Address::from_u64(7777),
            vec![1, 2, 3],
        )));
        let snapshot = genesis(2, 100);
        check_against_serial(&txs, &snapshot, 2);
    }

    #[test]
    fn hybrid_routes_unanalyzable_and_speculative_txs() {
        let txs = vec![
            transfer(1, 2, 10),
            transfer(2, 3, 10).unanalyzable(),
            transfer(3, 4, 10),
        ];
        let snapshot = genesis(4, 100);
        let analyzer = Analyzer::new(CodeRegistry::default());
        let env = BlockEnv::default();
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let hybrid = HybridExecutor::new(
            analyzer,
            ParallelConfig {
                threads: 2,
                ..ParallelConfig::default()
            },
        );
        let outcome = hybrid.execute_block(&txs, &snapshot, &env);
        assert_eq!(outcome.final_writes, trace.final_writes);
        assert_eq!(outcome.stats.optimistic_txs, 1);

        // The routing helper itself: speculative and optimistic tiers are
        // stripped, the others pass through untouched.
        let mut speculative = CSag::for_transfer(Address::from_u64(1), Address::from_u64(2));
        speculative.tier = RefinementTier::Speculative;
        let exact = CSag::for_transfer(Address::from_u64(3), Address::from_u64(4));
        let mut routed = vec![speculative, CSag::optimistic(), exact.clone()];
        let optimistic = HybridExecutor::route_csags(&mut routed);
        assert_eq!(optimistic, 2);
        assert!(routed[0].reads.is_empty() && routed[0].writes.is_empty());
        assert_eq!(routed[0].tier, RefinementTier::Optimistic);
        assert_eq!(routed[2].reads, exact.reads);
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let analyzer = Analyzer::new(CodeRegistry::default());
        let stm = StmExecutor::new(analyzer, ParallelConfig::default());
        let outcome = stm.execute_block(&[], &Snapshot::default(), &BlockEnv::default());
        assert!(outcome.final_writes.is_empty());
        assert!(outcome.statuses.is_empty());
        assert_eq!(outcome.stats, ExecutorStats::default());
    }
}
