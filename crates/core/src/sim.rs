//! Virtual-time scheduling primitives shared by all schedulers.
//!
//! The paper evaluates by *simulating* transaction scheduling over up to 32
//! threads (§V-B "we simulated scheduling the transactions on a set of
//! threads"); gas — the canonical EVM cost model — serves as the unit of
//! virtual time. This module provides the thread timeline used by the
//! DMVCC, DAG and OCC schedulers to compute makespans deterministically,
//! independent of host parallelism.

/// Virtual execution timeline of a fixed thread pool.
///
/// # Examples
///
/// ```
/// use dmvcc_core::ThreadTimeline;
///
/// let mut pool = ThreadTimeline::new(2);
/// let (s1, e1) = pool.schedule(0, 10);
/// let (s2, e2) = pool.schedule(0, 10);
/// let (s3, _e3) = pool.schedule(0, 10);
/// assert_eq!((s1, e1), (0, 10));
/// assert_eq!((s2, e2), (0, 10));
/// assert_eq!(s3, 10); // both threads busy until t=10
/// ```
#[derive(Debug, Clone)]
pub struct ThreadTimeline {
    free_at: Vec<u64>,
}

impl ThreadTimeline {
    /// Creates a timeline for `threads` workers (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "ThreadTimeline::new: zero threads");
        ThreadTimeline {
            free_at: vec![0; threads],
        }
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.free_at.len()
    }

    /// Schedules a task that becomes ready at `ready` and costs `cost`,
    /// on the thread that can start it earliest. Returns `(start, end)`.
    pub fn schedule(&mut self, ready: u64, cost: u64) -> (u64, u64) {
        let (index, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &free)| (free.max(ready), i))
            .expect("at least one thread");
        let start = self.free_at[index].max(ready);
        let end = start + cost;
        self.free_at[index] = end;
        (start, end)
    }

    /// The earliest instant any thread is free.
    pub fn earliest_free(&self) -> u64 {
        *self.free_at.iter().min().expect("at least one thread")
    }

    /// The instant all scheduled work completes (the makespan so far).
    pub fn makespan(&self) -> u64 {
        *self.free_at.iter().max().expect("at least one thread")
    }
}

/// Cross-scheduler execution report: makespan, abort statistics, and the
/// derived speedup against serial execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Number of worker threads simulated.
    pub threads: usize,
    /// Virtual time at which the last transaction finished.
    pub makespan: u64,
    /// Total gas of the block (serial makespan).
    pub serial_cost: u64,
    /// Number of transaction executions that were aborted and re-executed
    /// (non-deterministic aborts only).
    pub aborts: u64,
    /// Total attempts (= transactions + aborts).
    pub attempts: u64,
    /// Gas actually executed across all attempts (≥ `serial_cost` when
    /// there are retries).
    pub busy_gas: u64,
}

impl SimReport {
    /// Speedup over serial execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            return 1.0;
        }
        self.serial_cost as f64 / self.makespan as f64
    }

    /// Abort rate: aborted attempts over total attempts.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        self.aborts as f64 / self.attempts as f64
    }

    /// Thread utilization: fraction of the pool's capacity spent executing
    /// (the paper attributes DAG/OCC's flattening to "threads staying
    /// idle during execution").
    pub fn utilization(&self) -> f64 {
        let capacity = self.threads as u64 * self.makespan;
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_gas as f64 / capacity as f64).min(1.0)
    }

    /// Merges block-level reports into a cumulative one (sums makespans
    /// and costs — blocks execute back to back).
    pub fn accumulate(&mut self, other: &SimReport) {
        debug_assert_eq!(self.threads, other.threads);
        self.makespan += other.makespan;
        self.serial_cost += other.serial_cost;
        self.aborts += other.aborts;
        self.attempts += other.attempts;
        self.busy_gas += other.busy_gas;
    }

    /// An empty report for accumulation.
    pub fn zero(threads: usize) -> SimReport {
        SimReport {
            threads,
            makespan: 0,
            serial_cost: 0,
            aborts: 0,
            attempts: 0,
            busy_gas: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_serializes() {
        let mut pool = ThreadTimeline::new(1);
        assert_eq!(pool.schedule(0, 10), (0, 10));
        assert_eq!(pool.schedule(0, 5), (10, 15));
        assert_eq!(pool.makespan(), 15);
    }

    #[test]
    fn ready_time_delays_start() {
        let mut pool = ThreadTimeline::new(2);
        assert_eq!(pool.schedule(100, 10), (100, 110));
        // The other thread is free at 0 but the task is only ready at 100…
        assert_eq!(pool.schedule(100, 10), (100, 110));
        // …and a task ready at 0 fills the idle window? No: both threads
        // now free at 110, but thread selection considers max(free, ready).
        assert_eq!(pool.schedule(0, 10), (110, 120));
    }

    #[test]
    fn picks_earliest_available_thread() {
        let mut pool = ThreadTimeline::new(2);
        pool.schedule(0, 100);
        pool.schedule(0, 10);
        // Next task goes to the thread free at 10, not the one free at 100.
        assert_eq!(pool.schedule(0, 5), (10, 15));
        assert_eq!(pool.makespan(), 100);
        assert_eq!(pool.earliest_free(), 15);
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn zero_threads_panics() {
        ThreadTimeline::new(0);
    }

    #[test]
    fn report_speedup_and_abort_rate() {
        let report = SimReport {
            threads: 4,
            makespan: 250,
            serial_cost: 1000,
            aborts: 1,
            attempts: 11,
            busy_gas: 1000,
        };
        assert!((report.speedup() - 4.0).abs() < 1e-9);
        assert!((report.abort_rate() - 1.0 / 11.0).abs() < 1e-9);
        // 1000 busy over 4*250 capacity = full utilization.
        assert!((report.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_accumulate() {
        let mut a = SimReport::zero(4);
        a.accumulate(&SimReport {
            threads: 4,
            makespan: 10,
            serial_cost: 40,
            aborts: 1,
            attempts: 5,
            busy_gas: 45,
        });
        a.accumulate(&SimReport {
            threads: 4,
            makespan: 20,
            serial_cost: 60,
            aborts: 0,
            attempts: 6,
            busy_gas: 60,
        });
        assert_eq!(a.makespan, 30);
        assert_eq!(a.serial_cost, 100);
        assert_eq!(a.aborts, 1);
        assert_eq!(a.attempts, 11);
        assert_eq!(a.busy_gas, 105);
        assert!((a.speedup() - 100.0 / 30.0).abs() < 1e-9);
    }
}
