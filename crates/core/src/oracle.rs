//! Reference (serial) block execution with full trace capture.
//!
//! Deterministic serializability (paper Definition 2) pins the *result* of
//! any correct schedule to the serial one; only timing, abort counts and
//! thread utilization differ between schedulers. This module executes a
//! block serially — it *is* the serial baseline — while recording, per
//! transaction, everything the virtual-time schedulers need:
//!
//! - gas cost (the virtual-time unit),
//! - every read with the transaction that produced the value
//!   (block-order dependencies),
//! - every write/commutative-add with its gas offset inside the
//!   transaction,
//! - the gas offset at which the executed path passes a release point.

use std::collections::{BTreeMap, HashMap};

use dmvcc_primitives::U256;
use dmvcc_state::{Snapshot, StateKey, WriteSet};
use dmvcc_vm::{
    execute_traced, BlockEnv, ExecParams, ExecStatus, Host, HostError, Opcode, Tracer, Transaction,
    TxKind, INTRINSIC_GAS,
};

use dmvcc_analysis::{Analyzer, CSag};

/// One recorded read with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadRecord {
    /// The state item read.
    pub key: StateKey,
    /// Transactions whose versions the value incorporates (base writer and
    /// commutative add-ers); empty when the value came purely from the
    /// snapshot.
    pub sources: Vec<usize>,
    /// Gas consumed by this transaction when the read happened.
    pub gas_offset: u64,
}

/// The complete per-transaction trace of the reference execution.
#[derive(Debug, Clone)]
pub struct TxTrace {
    /// Transaction index within the block.
    pub index: usize,
    /// Terminal status (always a deterministic outcome here).
    pub status: ExecStatus,
    /// Gas consumed — the virtual-time cost of one attempt.
    pub gas_used: u64,
    /// Reads in execution order.
    pub reads: Vec<ReadRecord>,
    /// Final full writes (empty if the transaction reverted).
    pub writes: BTreeMap<StateKey, U256>,
    /// Merged commutative deltas (empty if the transaction reverted).
    pub adds: BTreeMap<StateKey, U256>,
    /// Gas offset of the *last* write/add per key — a version can be
    /// published no earlier than this.
    pub write_offsets: HashMap<StateKey, u64>,
    /// Gas offset at which the executed path passed its release point
    /// (`None` when an abort stayed possible to the very end).
    pub release_offset: Option<u64>,
}

impl TxTrace {
    /// The earliest gas offset at which this transaction's version of
    /// `key` may be made visible under early-write visibility: after both
    /// the release point and the last write of that key.
    pub fn publish_offset(&self, key: &StateKey) -> Option<u64> {
        let release = self.release_offset?;
        let write = self.write_offsets.get(key)?;
        Some(release.max(*write))
    }

    /// `true` if this transaction writes (or commutatively adds to) `key`.
    pub fn writes_key(&self, key: &StateKey) -> bool {
        self.writes.contains_key(key) || self.adds.contains_key(key)
    }
}

/// The outcome of a reference execution of one block.
#[derive(Debug, Clone)]
pub struct BlockTrace {
    /// Per-transaction traces, in block order.
    pub txs: Vec<TxTrace>,
    /// The block's final writes (what the commit phase flushes).
    pub final_writes: WriteSet,
    /// Total gas of all transactions — the serial makespan.
    pub total_gas: u64,
}

/// Host layering the in-flight block state over the snapshot, tracking the
/// provenance (latest writer) of every key.
struct OracleHost<'a> {
    snapshot: &'a Snapshot,
    committed: HashMap<StateKey, U256>,
    /// Latest block-order writer of each key (committed transactions only).
    provenance: HashMap<StateKey, Vec<usize>>,
    /// The executing transaction's buffered writes/adds.
    writes: BTreeMap<StateKey, U256>,
    adds: BTreeMap<StateKey, U256>,
    reads: Vec<ReadRecord>,
    write_offsets: HashMap<StateKey, u64>,
    releases: Vec<(usize, u64)>,
    gas_limit: u64,
    /// Gas remaining at the current instruction, kept in sync by the
    /// [`GasSync`] tracer (the [`Host`] trait deliberately has no gas
    /// parameter; the interpreter reports gas through the tracer instead).
    current_gas_left: std::rc::Rc<std::cell::Cell<u64>>,
}

impl OracleHost<'_> {
    fn gas_offset(&self) -> u64 {
        self.gas_limit - self.current_gas_left.get()
    }

    fn commit_tx(&mut self, index: usize) {
        for (key, value) in std::mem::take(&mut self.writes) {
            self.committed.insert(key, value);
            self.provenance.insert(key, vec![index]);
        }
        for (key, delta) in std::mem::take(&mut self.adds) {
            let base = self
                .committed
                .get(&key)
                .copied()
                .unwrap_or_else(|| self.snapshot.get(&key));
            self.committed.insert(key, base.wrapping_add(delta));
            self.provenance.entry(key).or_default().push(index);
        }
    }

    fn discard_tx(&mut self) {
        self.writes.clear();
        self.adds.clear();
    }
}

impl Host for OracleHost<'_> {
    fn sload(&mut self, key: StateKey) -> Result<U256, HostError> {
        // Own buffered writes win; then committed block state; then snapshot.
        let (value, sources) = if let Some(&v) = self.writes.get(&key) {
            let merged = v.wrapping_add(self.adds.get(&key).copied().unwrap_or(U256::ZERO));
            (merged, Vec::new())
        } else {
            let base = self
                .committed
                .get(&key)
                .copied()
                .unwrap_or_else(|| self.snapshot.get(&key));
            let own_delta = self.adds.get(&key).copied().unwrap_or(U256::ZERO);
            (
                base.wrapping_add(own_delta),
                self.provenance.get(&key).cloned().unwrap_or_default(),
            )
        };
        self.reads.push(ReadRecord {
            key,
            sources,
            gas_offset: self.gas_offset(),
        });
        Ok(value)
    }

    fn sstore(&mut self, key: StateKey, value: U256) -> Result<(), HostError> {
        // A full write after own adds folds them in.
        self.adds.remove(&key);
        self.writes.insert(key, value);
        self.write_offsets.insert(key, self.gas_offset());
        Ok(())
    }

    fn sadd(&mut self, key: StateKey, delta: U256) -> Result<(), HostError> {
        if let Some(v) = self.writes.get_mut(&key) {
            *v = v.wrapping_add(delta);
        } else {
            let entry = self.adds.entry(key).or_insert(U256::ZERO);
            *entry = entry.wrapping_add(delta);
        }
        self.write_offsets.insert(key, self.gas_offset());
        Ok(())
    }

    fn on_release_point(&mut self, pc: usize, gas_left: u64) {
        self.releases.push((pc, self.gas_limit - gas_left));
    }
}

/// Keeps the host's notion of gas in sync with the interpreter via a cell
/// shared with [`OracleHost`].
struct GasSync {
    gas_left: std::rc::Rc<std::cell::Cell<u64>>,
}

impl Tracer for GasSync {
    fn on_op(&mut self, _pc: usize, _op: Opcode, gas_left: u64) {
        self.gas_left.set(gas_left);
    }
}

/// Executes a block serially against `snapshot`, producing the reference
/// trace. `analyzer` supplies release-point pcs (the trace records when the
/// executed path passes them); transactions whose contract is unknown run
/// without release points.
///
/// # Examples
///
/// ```
/// use dmvcc_primitives::{Address, U256};
/// use dmvcc_state::Snapshot;
/// use dmvcc_vm::{CodeRegistry, Transaction};
/// use dmvcc_analysis::Analyzer;
/// use dmvcc_core::execute_block_serial;
///
/// let analyzer = Analyzer::new(CodeRegistry::default());
/// let a = Address::from_u64(1);
/// let b = Address::from_u64(2);
/// let snapshot = Snapshot::from_entries([
///     (dmvcc_state::StateKey::balance(a), U256::from(10u64)),
/// ]);
/// let block = vec![Transaction::transfer(a, b, U256::from(4u64))];
/// let trace = execute_block_serial(&block, &snapshot, &analyzer, &Default::default());
/// assert_eq!(trace.txs.len(), 1);
/// assert_eq!(
///     trace.final_writes.get(&dmvcc_state::StateKey::balance(b)),
///     Some(&U256::from(4u64))
/// );
/// ```
pub fn execute_block_serial(
    txs: &[Transaction],
    snapshot: &Snapshot,
    analyzer: &Analyzer,
    block_env: &BlockEnv,
) -> BlockTrace {
    let mut host = OracleHost {
        snapshot,
        committed: HashMap::new(),
        provenance: HashMap::new(),
        writes: BTreeMap::new(),
        adds: BTreeMap::new(),
        reads: Vec::new(),
        write_offsets: HashMap::new(),
        releases: Vec::new(),
        gas_limit: 0,
        current_gas_left: std::rc::Rc::new(std::cell::Cell::new(0)),
    };
    let mut traces = Vec::with_capacity(txs.len());
    let mut total_gas = 0u64;

    for (index, tx) in txs.iter().enumerate() {
        host.reads.clear();
        host.write_offsets.clear();
        host.releases.clear();

        let trace = match tx.kind {
            TxKind::Transfer => run_transfer(index, tx, &mut host),
            TxKind::Call => run_call(index, tx, &mut host, analyzer, block_env),
        };
        total_gas += trace.gas_used;
        if trace.status.is_success() {
            host.commit_tx(index);
        } else {
            host.discard_tx();
        }
        traces.push(trace);
    }

    // Final writes: committed map relative to the snapshot.
    let mut final_writes = WriteSet::new();
    for (key, value) in &host.committed {
        if snapshot.get(key) != *value {
            final_writes.insert(*key, *value);
        }
    }

    BlockTrace {
        txs: traces,
        final_writes,
        total_gas,
    }
}

fn run_transfer(index: usize, tx: &Transaction, host: &mut OracleHost<'_>) -> TxTrace {
    let from_key = StateKey::balance(tx.sender());
    let to_key = StateKey::balance(tx.to());
    host.gas_limit = INTRINSIC_GAS;
    host.current_gas_left.set(0); // offsets all at INTRINSIC_GAS
    let balance = host.sload(from_key).expect("oracle host never aborts");
    let status = if balance >= tx.env.value {
        host.sstore(from_key, balance - tx.env.value)
            .expect("oracle host never aborts");
        host.sadd(to_key, tx.env.value)
            .expect("oracle host never aborts");
        ExecStatus::Success
    } else {
        ExecStatus::Reverted
    };
    let success = status.is_success();
    TxTrace {
        index,
        status,
        gas_used: INTRINSIC_GAS,
        reads: std::mem::take(&mut host.reads),
        writes: if success {
            host.writes.clone()
        } else {
            BTreeMap::new()
        },
        adds: if success {
            host.adds.clone()
        } else {
            BTreeMap::new()
        },
        write_offsets: std::mem::take(&mut host.write_offsets),
        // A balance check is the only abort path and it happens first; the
        // transfer is releasable immediately after it.
        release_offset: Some(INTRINSIC_GAS),
    }
}

fn run_call(
    index: usize,
    tx: &Transaction,
    host: &mut OracleHost<'_>,
    analyzer: &Analyzer,
    block_env: &BlockEnv,
) -> TxTrace {
    let Some(code) = analyzer.registry().code(&tx.to()) else {
        // Unknown contract: trivially succeeds without touching state.
        return TxTrace {
            index,
            status: ExecStatus::Success,
            gas_used: INTRINSIC_GAS,
            reads: Vec::new(),
            writes: BTreeMap::new(),
            adds: BTreeMap::new(),
            write_offsets: HashMap::new(),
            release_offset: Some(INTRINSIC_GAS),
        };
    };
    let release_pcs: std::collections::HashSet<usize> = analyzer
        .psag(&tx.to())
        .map(|p| p.release_pcs.iter().copied().collect())
        .unwrap_or_default();

    host.gas_limit = tx.env.gas_limit;
    host.current_gas_left.set(tx.env.gas_limit - INTRINSIC_GAS);
    let params = ExecParams {
        code: &code,
        tx: &tx.env,
        block: block_env,
        release_points: Some(&release_pcs),
        registry: Some(analyzer.registry()),
    };
    let mut tracer = GasSync {
        gas_left: host.current_gas_left.clone(),
    };
    let outcome = execute_traced(&params, host, &mut tracer);

    let entry_release = release_pcs.contains(&0);
    let release_offset = if let Some(&(_, off)) = host.releases.first() {
        Some(off)
    } else if entry_release {
        Some(INTRINSIC_GAS)
    } else {
        None
    };

    let success = outcome.status.is_success();
    // Gas offsets recorded inside nested CALL frames are measured against
    // the callee's 63/64 budget, not the top-level remaining gas, so they
    // can overshoot; clamp every intra-transaction offset to the realized
    // cost (an access can never happen after the transaction finishes).
    let mut reads = std::mem::take(&mut host.reads);
    for read in &mut reads {
        read.gas_offset = read.gas_offset.min(outcome.gas_used);
    }
    let mut write_offsets = std::mem::take(&mut host.write_offsets);
    for offset in write_offsets.values_mut() {
        *offset = (*offset).min(outcome.gas_used);
    }
    TxTrace {
        index,
        status: outcome.status,
        gas_used: outcome.gas_used,
        reads,
        writes: if success {
            host.writes.clone()
        } else {
            BTreeMap::new()
        },
        adds: if success {
            host.adds.clone()
        } else {
            BTreeMap::new()
        },
        write_offsets,
        release_offset: if success {
            release_offset.map(|offset| offset.min(outcome.gas_used))
        } else {
            None
        },
    }
}

/// Convenience wrapper: a C-SAG batch for a block (the preprocessing step
/// every scheduler shares).
pub fn build_csags(
    txs: &[Transaction],
    snapshot: &Snapshot,
    analyzer: &Analyzer,
    block_env: &BlockEnv,
) -> Vec<CSag> {
    txs.iter()
        .map(|tx| analyzer.csag(tx, snapshot, block_env))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;
    use dmvcc_vm::{calldata, contracts, CodeRegistry, TxEnv};

    const TOKEN: u64 = 500;
    const COUNTER: u64 = 501;

    fn analyzer() -> Analyzer {
        Analyzer::new(
            CodeRegistry::builder()
                .deploy(Address::from_u64(TOKEN), contracts::token())
                .deploy(Address::from_u64(COUNTER), contracts::counter())
                .build(),
        )
    }

    fn mint(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::MINT,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn transfer(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::TRANSFER,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn balance_key(owner: u64) -> StateKey {
        StateKey::storage(
            Address::from_u64(TOKEN),
            contracts::map_slot(Address::from_u64(owner).to_u256(), 1),
        )
    }

    #[test]
    fn serial_chain_of_token_ops() {
        let a = analyzer();
        let block = vec![mint(9, 1, 100), transfer(1, 2, 30), transfer(2, 3, 10)];
        let trace = execute_block_serial(&block, &Snapshot::empty(), &a, &BlockEnv::default());
        assert!(trace.txs.iter().all(|t| t.status.is_success()));
        assert_eq!(
            trace.final_writes.get(&balance_key(1)),
            Some(&U256::from(70u64))
        );
        assert_eq!(
            trace.final_writes.get(&balance_key(2)),
            Some(&U256::from(20u64))
        );
        assert_eq!(
            trace.final_writes.get(&balance_key(3)),
            Some(&U256::from(10u64))
        );
        assert_eq!(trace.total_gas, trace.txs.iter().map(|t| t.gas_used).sum());
    }

    #[test]
    fn read_provenance_tracks_block_order() {
        let a = analyzer();
        let block = vec![mint(9, 1, 100), transfer(1, 2, 30)];
        let trace = execute_block_serial(&block, &Snapshot::empty(), &a, &BlockEnv::default());
        // tx1's read of alice's balance must source from tx0 (the mint).
        let read = trace.txs[1]
            .reads
            .iter()
            .find(|r| r.key == balance_key(1))
            .expect("alice balance read");
        assert_eq!(read.sources, vec![0]);
    }

    #[test]
    fn reverted_tx_leaves_no_writes() {
        let a = analyzer();
        // transfer without funds reverts; following mint still works.
        let block = vec![transfer(1, 2, 30), mint(9, 1, 5)];
        let trace = execute_block_serial(&block, &Snapshot::empty(), &a, &BlockEnv::default());
        assert_eq!(trace.txs[0].status, ExecStatus::Reverted);
        assert!(trace.txs[0].writes.is_empty());
        assert!(trace.txs[0].adds.is_empty());
        assert_eq!(
            trace.final_writes.get(&balance_key(1)),
            Some(&U256::from(5u64))
        );
    }

    #[test]
    fn ether_transfer_semantics() {
        let a = analyzer();
        let alice = Address::from_u64(1);
        let bob = Address::from_u64(2);
        let snapshot = Snapshot::from_entries([(StateKey::balance(alice), U256::from(10u64))]);
        let block = vec![
            Transaction::transfer(alice, bob, U256::from(4u64)),
            Transaction::transfer(bob, alice, U256::from(1u64)),
            // Insufficient: bob has 3 left.
            Transaction::transfer(bob, alice, U256::from(50u64)),
        ];
        let trace = execute_block_serial(&block, &snapshot, &a, &BlockEnv::default());
        assert!(trace.txs[0].status.is_success());
        assert!(trace.txs[1].status.is_success());
        assert_eq!(trace.txs[2].status, ExecStatus::Reverted);
        assert_eq!(
            trace.final_writes.get(&StateKey::balance(alice)),
            Some(&U256::from(7u64))
        );
        assert_eq!(
            trace.final_writes.get(&StateKey::balance(bob)),
            Some(&U256::from(3u64))
        );
        // Transfer dependencies: tx1 reads bob's balance from tx0's add.
        let read = trace.txs[1]
            .reads
            .iter()
            .find(|r| r.key == StateKey::balance(bob))
            .expect("bob balance read");
        assert_eq!(read.sources, vec![0]);
    }

    #[test]
    fn release_offset_recorded_for_transfer_path() {
        let a = analyzer();
        let block = vec![mint(9, 1, 100), transfer(1, 2, 30)];
        let trace = execute_block_serial(&block, &Snapshot::empty(), &a, &BlockEnv::default());
        // Mint cannot abort once dispatched: its release point is the start
        // of the mint block (shortly after the intrinsic cost).
        let mint_rel = trace.txs[0].release_offset.expect("release point passed");
        assert!(mint_rel >= INTRINSIC_GAS);
        assert!(mint_rel < trace.txs[0].gas_used / 2 + INTRINSIC_GAS);
        // Transfer's release point is past the balance check but before the
        // end of execution.
        let rel = trace.txs[1].release_offset.expect("release point passed");
        assert!(rel > INTRINSIC_GAS);
        assert!(rel < trace.txs[1].gas_used);
        // Publishing the recipient's credit can happen only after the SADD,
        // which is at the very end.
        let publish = trace.txs[1]
            .publish_offset(&balance_key(2))
            .expect("publishable");
        assert!(publish >= rel);
    }

    #[test]
    fn final_writes_match_snapshot_apply() {
        // Committing the final writes then re-running a read-only check
        // agrees with a StateDb round trip.
        let a = analyzer();
        let block = vec![mint(9, 1, 100), transfer(1, 2, 30)];
        let snapshot = Snapshot::empty();
        let trace = execute_block_serial(&block, &snapshot, &a, &BlockEnv::default());
        let next = snapshot.apply(&trace.final_writes);
        assert_eq!(next.get(&balance_key(1)), U256::from(70u64));
    }

    #[test]
    fn unknown_contract_call_is_noop() {
        let a = analyzer();
        let tx = Transaction::call(TxEnv::call(
            Address::from_u64(1),
            Address::from_u64(999),
            calldata(1, &[]),
        ));
        let trace = execute_block_serial(&[tx], &Snapshot::empty(), &a, &BlockEnv::default());
        assert!(trace.txs[0].status.is_success());
        assert!(trace.final_writes.is_empty());
    }
}
