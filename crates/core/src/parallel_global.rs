//! The first-generation threaded executor: one global lock, broadcast
//! wakeups.
//!
//! This is the baseline the sharded executor in [`crate::parallel`]
//! replaces: every [`AccessSequences`] access serializes on a single mutex,
//! every publish does `Condvar::notify_all`, and idle workers rescan the
//! whole block for admissible transactions. It is kept (a) as the
//! before-side of the `threaded_scaling` benchmark, so the lock-granularity
//! comparison measures two real implementations rather than a remembered
//! number, and (b) as a second, independently-derived executor for
//! differential testing against the serial oracle.
//!
//! Protocol-wise it is identical to the sharded executor: Algorithm 1
//! scheduling, Algorithm 2 release points, Algorithm 3 write versioning,
//! Algorithm 4 cascading aborts.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use dmvcc_primitives::U256;
use dmvcc_state::{Snapshot, StateKey, WriteSet};
use dmvcc_vm::{execute, BlockEnv, ExecParams, ExecStatus, Host, HostError, Transaction, TxKind};

use dmvcc_analysis::{Analyzer, CSag};

use crate::access::{AccessOp, AccessSequences, ReadResolution, SourceList};
use crate::hook::SchedHook;
use crate::parallel::{ExecutorStats, ParallelConfig, ParallelOutcome, Phase};
use crate::rank::{BlockDag, SchedulerPolicy};

#[derive(Debug)]
struct TxSlot {
    phase: Phase,
    generation: u32,
    attempts: u32,
    status: Option<ExecStatus>,
    /// Keys whose versions this tx materialized in the sequences during
    /// the current attempt (for rollback on abort).
    published: HashSet<StateKey>,
    /// All keys this tx has entries for (predictions plus dynamic
    /// insertions), so aborts can reset them.
    touched: HashSet<StateKey>,
    /// Set when the deadlock breaker aborts this transaction's own blocked
    /// read: re-admissions then rank below everything else, so the ready
    /// work the breaker yielded to actually runs first instead of the
    /// victim re-winning the pop and storming to `max_attempts`.
    demoted: bool,
}

struct Inner {
    sequences: AccessSequences,
    slots: Vec<TxSlot>,
    ready: VecDeque<(usize, u32)>,
    finished: usize,
    aborts: u64,
    idle: usize,
    blocked: usize,
    stats: ExecutorStats,
    /// Mirror of [`Shared::hook`] so `abort_tx` (a method on `Inner`, which
    /// cannot see `Shared`) can report cascade victims.
    hook: Option<Arc<dyn SchedHook>>,
}

struct Shared<'a> {
    inner: Mutex<Inner>,
    cond: Condvar,
    snapshot: &'a Snapshot,
    csags: &'a [CSag],
    txs: &'a [Transaction],
    /// Critical-path ranks: the pop order under
    /// [`SchedulerPolicy::CriticalPath`], the inversion probe under both.
    dag: &'a BlockDag,
    config: ParallelConfig,
    /// Optional scheduling hook (`None` in production). Unlike the sharded
    /// executor, most call sites here run under the one global lock — a
    /// stalling hook therefore serializes everything, which is exactly the
    /// contention profile this executor models.
    hook: Option<Arc<dyn SchedHook>>,
}

impl Shared<'_> {
    #[inline]
    fn hook(&self) -> Option<&dyn SchedHook> {
        self.hook.as_deref()
    }

    /// Every wakeup in this executor is a broadcast to all sleepers —
    /// that's the cost the sharded executor's targeted wakeups remove.
    fn broadcast(&self, inner: &mut Inner) {
        inner.stats.broadcast_wakeups += 1;
        self.cond.notify_all();
    }
}

impl Inner {
    /// Checks whether all predicted reads of `tx` resolve right now.
    fn is_ready(&self, tx: usize, csags: &[CSag], snapshot: &Snapshot) -> bool {
        let csag = &csags[tx];
        for key in &csag.reads {
            if let Some(seq) = self.sequences.sequence(key) {
                if matches!(
                    seq.resolve_read(tx, key, snapshot),
                    ReadResolution::Blocked { .. }
                ) {
                    return false;
                }
            }
        }
        true
    }

    /// Moves `tx` to the ready queue if its predicted reads resolve.
    fn admit_if_ready(&mut self, tx: usize, csags: &[CSag], snapshot: &Snapshot) -> bool {
        if self.slots[tx].phase != Phase::Waiting {
            return false;
        }
        if !self.is_ready(tx, csags, snapshot) {
            return false;
        }
        self.slots[tx].phase = Phase::Ready;
        self.ready.push_back((tx, self.slots[tx].generation));
        true
    }

    /// Aborts `tx` (Algorithm 4) and cascades to readers of its versions.
    fn abort_tx(&mut self, tx: usize, csags: &[CSag], snapshot: &Snapshot) {
        let mut worklist = vec![tx];
        let mut seen = HashSet::new();
        while let Some(victim) = worklist.pop() {
            if !seen.insert(victim) {
                continue;
            }
            if let Some(hook) = &self.hook {
                hook.on_abort(tx, victim);
            }
            if self.slots[victim].phase == Phase::Finished {
                self.finished -= 1;
            }
            self.slots[victim].generation = self.slots[victim].generation.wrapping_add(1);
            self.slots[victim].phase = Phase::Waiting;
            self.slots[victim].status = None;
            self.slots[victim].published.clear();
            self.aborts += 1;
            let touched: Vec<StateKey> = self.slots[victim].touched.iter().copied().collect();
            for key in touched {
                // Predicted writes re-pend (the new attempt re-announces
                // them); dynamically discovered writes roll back to
                // `Dropped` — the new attempt may never write the key
                // again, and a pending entry nothing fulfills wedges every
                // later reader (found by DST schedule fuzzing).
                let csag = &csags[victim];
                let seq = self.sequences.sequence_mut(key);
                let effect = if csag.writes.contains(&key) || csag.adds.contains(&key) {
                    seq.reset(victim)
                } else {
                    seq.rollback_unpredicted(victim)
                };
                for reader in effect.aborted {
                    if reader != victim && !seen.contains(&reader) {
                        worklist.push(reader);
                    }
                }
            }
            self.admit_if_ready(victim, csags, snapshot);
        }
    }

    /// Applies a version-write effect: wakes allowed waiters, aborts stale
    /// readers.
    fn apply_effect(
        &mut self,
        effect: crate::access::VersionWriteEffect,
        csags: &[CSag],
        snapshot: &Snapshot,
    ) {
        for reader in effect.aborted {
            self.abort_tx(reader, csags, snapshot);
        }
        for reader in effect.allowed {
            self.admit_if_ready(reader, csags, snapshot);
        }
    }
}

/// Host bridging one VM execution onto the shared sequences.
struct ThreadHost<'a, 'b> {
    shared: &'a Shared<'b>,
    tx: usize,
    generation: u32,
    /// Buffered full writes and commutative deltas of this attempt.
    writes: BTreeMap<StateKey, U256>,
    adds: BTreeMap<StateKey, U256>,
    /// `true` once a release point passed with sufficient gas.
    released: bool,
    /// pc → gas bound of this tx's release points.
    release_bounds: HashMap<usize, u64>,
    /// Keys may be published once execution is past their last predicted
    /// write pc.
    last_write_pc: &'a HashMap<StateKey, usize>,
}

impl ThreadHost<'_, '_> {
    fn check_generation(&self, inner: &Inner) -> Result<(), HostError> {
        if inner.slots[self.tx].generation != self.generation {
            return Err(HostError::Aborted);
        }
        Ok(())
    }

    /// Publishes one buffered key into the sequences (assumes `inner`
    /// locked and generation valid).
    fn publish_key(&self, inner: &mut Inner, key: StateKey, value: U256, delta: bool) {
        if let Some(hook) = self.shared.hook() {
            hook.on_publish(self.tx, &key, delta);
        }
        let effect = inner
            .sequences
            .sequence_mut(key)
            .version_write(self.tx, value, delta);
        inner.slots[self.tx].published.insert(key);
        inner.slots[self.tx].touched.insert(key);
        inner.stats.publishes += 1;
        inner.apply_effect(effect, self.shared.csags, self.shared.snapshot);
        self.shared.broadcast(inner);
    }
}

impl Host for ThreadHost<'_, '_> {
    fn sload(&mut self, key: StateKey) -> Result<U256, HostError> {
        // Own writes win (read-your-writes inside the attempt).
        if let Some(&v) = self.writes.get(&key) {
            let merged = v.wrapping_add(self.adds.get(&key).copied().unwrap_or(U256::ZERO));
            return Ok(merged);
        }
        let own_delta = self.adds.get(&key).copied().unwrap_or(U256::ZERO);
        let mut inner = self.shared.inner.lock();
        loop {
            self.check_generation(&inner)?;
            let resolution = match inner.sequences.sequence(&key) {
                Some(seq) => seq.resolve_read(self.tx, &key, self.shared.snapshot),
                None => ReadResolution::Ready {
                    value: self.shared.snapshot.get(&key),
                    sources: SourceList::new(),
                },
            };
            match resolution {
                ReadResolution::Ready { value, .. } => {
                    inner.sequences.sequence_mut(key).mark_read(self.tx);
                    inner.slots[self.tx].touched.insert(key);
                    return Ok(value.wrapping_add(own_delta));
                }
                ReadResolution::Blocked { .. } => {
                    // Deadlock breaker: if every worker is blocked or idle
                    // while work sits in the queue, yield this execution so
                    // the thread can run something else.
                    inner.blocked += 1;
                    if inner.blocked + inner.idle >= self.shared.config.threads
                        && !inner.ready.is_empty()
                    {
                        inner.blocked -= 1;
                        let (csags, snapshot) = (self.shared.csags, self.shared.snapshot);
                        inner.slots[self.tx].demoted = true;
                        inner.abort_tx(self.tx, csags, snapshot);
                        self.shared.broadcast(&mut inner);
                        return Err(HostError::Aborted);
                    }
                    if let Some(hook) = self.shared.hook() {
                        hook.on_park(Some(self.tx));
                    }
                    self.shared.cond.wait(&mut inner);
                    inner.blocked -= 1;
                    if let Some(hook) = self.shared.hook() {
                        hook.on_wake(Some(self.tx));
                    }
                }
            }
        }
    }

    fn sstore(&mut self, key: StateKey, value: U256) -> Result<(), HostError> {
        self.adds.remove(&key);
        self.writes.insert(key, value);
        Ok(())
    }

    fn sadd(&mut self, key: StateKey, delta: U256) -> Result<(), HostError> {
        if let Some(v) = self.writes.get_mut(&key) {
            *v = v.wrapping_add(delta);
        } else {
            let entry = self.adds.entry(key).or_insert(U256::ZERO);
            *entry = entry.wrapping_add(delta);
        }
        Ok(())
    }

    fn on_release_point(&mut self, pc: usize, gas_left: u64) {
        if let Some(&bound) = self.release_bounds.get(&pc) {
            let passed = match self.shared.hook() {
                Some(hook) => hook.release_gate(self.tx, pc, gas_left, bound),
                None => gas_left >= bound,
            };
            if passed {
                self.released = true;
            }
        }
        if !self.released {
            return;
        }
        // Publish buffered keys whose last predicted write is behind us
        // (Algorithm 2: "no write of I in successor nodes").
        let publishable: Vec<(StateKey, U256, bool)> = self
            .writes
            .iter()
            .map(|(k, v)| (*k, *v, false))
            .chain(self.adds.iter().map(|(k, v)| (*k, *v, true)))
            .filter(|(k, _, _)| self.last_write_pc.get(k).is_some_and(|&last| last < pc))
            .collect();
        if publishable.is_empty() {
            return;
        }
        let mut inner = self.shared.inner.lock();
        if self.check_generation(&inner).is_err() {
            return; // the VM unwinds at the next state access
        }
        for (key, value, delta) in publishable {
            self.publish_key(&mut inner, key, value, delta);
            self.writes.remove(&key);
            self.adds.remove(&key);
        }
    }
}

/// The global-lock threaded executor (see module docs for why it exists).
///
/// # Examples
///
/// ```
/// use dmvcc_primitives::{Address, U256};
/// use dmvcc_state::{Snapshot, StateKey};
/// use dmvcc_vm::{CodeRegistry, Transaction};
/// use dmvcc_analysis::Analyzer;
/// use dmvcc_core::{GlobalLockParallelExecutor, ParallelConfig};
///
/// let analyzer = Analyzer::new(CodeRegistry::default());
/// let executor = GlobalLockParallelExecutor::new(analyzer, ParallelConfig::default());
/// let a = Address::from_u64(1);
/// let snapshot = Snapshot::from_entries([(StateKey::balance(a), U256::from(10u64))]);
/// let block = vec![Transaction::transfer(a, Address::from_u64(2), U256::ONE)];
/// let outcome = executor.execute_block(&block, &snapshot, &Default::default());
/// assert_eq!(outcome.final_writes.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalLockParallelExecutor {
    analyzer: Analyzer,
    config: ParallelConfig,
    hook: Option<Arc<dyn SchedHook>>,
}

impl GlobalLockParallelExecutor {
    /// Creates an executor over the given analyzer (contract registry).
    pub fn new(analyzer: Analyzer, config: ParallelConfig) -> Self {
        GlobalLockParallelExecutor {
            analyzer,
            config,
            hook: None,
        }
    }

    /// Installs a [`SchedHook`] consulted at every scheduling decision
    /// point (DST only; executors without a hook skip all hook branches).
    pub fn with_hook(mut self, hook: Arc<dyn SchedHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// The analyzer in use.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Executes a block in parallel, returning the final write set (equal
    /// to the serial one, per Theorem 1) plus abort statistics.
    pub fn execute_block(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
    ) -> ParallelOutcome {
        let refine_start = std::time::Instant::now();
        let hits_before = self.analyzer.registry().summaries().hits();
        let csags = crate::pipeline::refine_csags(
            &self.analyzer,
            txs,
            snapshot,
            block_env,
            self.config.threads,
        );
        let refine_nanos = refine_start.elapsed().as_nanos() as u64;
        let summary_hits = self.analyzer.registry().summaries().hits() - hits_before;
        let mut outcome = self.execute_block_with_csags(txs, snapshot, block_env, &csags);
        outcome.stats.refine_nanos = refine_nanos;
        outcome.stats.summary_cache_hits = summary_hits;
        outcome
    }

    /// Executes a block with precomputed C-SAGs.
    ///
    /// # Panics
    ///
    /// Panics if `csags.len() != txs.len()`.
    pub fn execute_block_with_csags(
        &self,
        txs: &[Transaction],
        snapshot: &Snapshot,
        block_env: &BlockEnv,
        csags: &[CSag],
    ) -> ParallelOutcome {
        assert_eq!(csags.len(), txs.len(), "one C-SAG per transaction");
        let n = txs.len();
        if n == 0 {
            return ParallelOutcome {
                final_writes: WriteSet::new(),
                statuses: Vec::new(),
                aborts: 0,
                stats: ExecutorStats::default(),
            };
        }

        // Build predicted sequences (the preprocessing of §IV-A).
        let mut sequences = AccessSequences::new();
        for (i, csag) in csags.iter().enumerate() {
            for key in &csag.reads {
                sequences.sequence_mut(*key).predict(i, AccessOp::Read);
            }
            for key in &csag.writes {
                sequences.sequence_mut(*key).predict(i, AccessOp::Write);
            }
            for key in &csag.adds {
                sequences.sequence_mut(*key).predict(i, AccessOp::Add);
            }
        }
        let slots = (0..n)
            .map(|i| TxSlot {
                phase: Phase::Waiting,
                generation: 0,
                attempts: 0,
                status: None,
                published: HashSet::new(),
                touched: csags[i].touched().into_iter().collect(),
                demoted: false,
            })
            .collect();

        let mut inner = Inner {
            sequences,
            slots,
            ready: VecDeque::new(),
            finished: 0,
            aborts: 0,
            idle: 0,
            blocked: 0,
            stats: ExecutorStats::default(),
            hook: self.hook.clone(),
        };
        // Initial admission (Algorithm 1 line 1).
        for i in 0..n {
            inner.admit_if_ready(i, csags, snapshot);
        }

        let dag = BlockDag::build(csags);
        let shared = Shared {
            inner: Mutex::new(inner),
            cond: Condvar::new(),
            snapshot,
            csags,
            txs,
            dag: &dag,
            config: self.config,
            hook: self.hook.clone(),
        };

        std::thread::scope(|scope| {
            for _ in 0..self.config.threads {
                scope.spawn(|| self.worker(&shared, block_env));
            }
        });

        let inner = shared.inner.into_inner();
        let final_writes = inner.sequences.final_writes(snapshot);
        let statuses = inner
            .slots
            .iter()
            .map(|s| s.status.clone().unwrap_or(ExecStatus::Interrupted))
            .collect();
        let mut stats = inner.stats;
        stats.attempts = inner.slots.iter().map(|s| s.attempts as u64).sum();
        (
            stats.symbolic_bindings,
            stats.loop_summarized_bindings,
            stats.interprocedural_bindings,
            stats.bounded_dynamic_bindings,
            stats.speculative_fallbacks,
        ) = crate::parallel::tier_counts(csags);
        stats.critical_path_gas = dag.critical_path_gas;
        stats.predicted_gas = dag.total_gas;
        ParallelOutcome {
            final_writes,
            statuses,
            aborts: inner.aborts,
            stats,
        }
    }

    fn worker(&self, shared: &Shared<'_>, block_env: &BlockEnv) {
        loop {
            let (tx, generation, attempt) = {
                let mut inner = shared.inner.lock();
                loop {
                    if inner.finished == shared.txs.len() {
                        shared.broadcast(&mut inner);
                        return;
                    }
                    // Pop the next live ready entry: the front in FIFO
                    // order, or the highest-ranked entry under the
                    // critical-path policy (an O(queue) scan — the single
                    // global lock already serializes pops, so a fancier
                    // structure would only relocate the bottleneck).
                    let popped = {
                        let Inner { ready, slots, .. } = &mut *inner;
                        ready.retain(|&(tx, generation)| {
                            slots[tx].generation == generation && slots[tx].phase == Phase::Ready
                        });
                        match self.config.scheduler {
                            SchedulerPolicy::Fifo => ready.pop_front(),
                            // Breaker-demoted entries rank below everything
                            // else regardless of their DAG priority (see
                            // `TxSlot::demoted`).
                            SchedulerPolicy::CriticalPath => (0..ready.len())
                                .max_by_key(|&i| {
                                    let tx = ready[i].0;
                                    (!slots[tx].demoted, shared.dag.priority(tx))
                                })
                                .and_then(|best| ready.remove(best)),
                        }
                    };
                    if let Some((tx, generation)) = popped {
                        // A dispatch below the rank of something still
                        // queued is a rank inversion (FIFO accumulates
                        // these; the max-pop above keeps them at zero).
                        if inner
                            .ready
                            .iter()
                            .any(|&(other, _)| shared.dag.priority(other) > shared.dag.priority(tx))
                        {
                            inner.stats.rank_inversions += 1;
                        }
                        inner.slots[tx].phase = Phase::Running;
                        inner.slots[tx].attempts += 1;
                        if inner.slots[tx].attempts > self.config.max_attempts {
                            // Bug guard: finalize as interrupted rather than
                            // spinning forever.
                            inner.slots[tx].phase = Phase::Finished;
                            inner.slots[tx].status = Some(ExecStatus::Interrupted);
                            inner.finished += 1;
                            continue;
                        }
                        break (tx, generation, inner.slots[tx].attempts);
                    }
                    // Self-heal: re-check all waiting transactions before
                    // idling (guards against lost wakeups).
                    let mut admitted = false;
                    for i in 0..shared.txs.len() {
                        admitted |= inner.admit_if_ready(i, shared.csags, shared.snapshot);
                    }
                    if admitted {
                        continue;
                    }
                    inner.idle += 1;
                    inner.stats.parks += 1;
                    if let Some(hook) = shared.hook() {
                        hook.on_park(None);
                    }
                    shared.cond.wait(&mut inner);
                    inner.idle -= 1;
                    if let Some(hook) = shared.hook() {
                        hook.on_wake(None);
                    }
                }
            };
            if let Some(hook) = shared.hook() {
                hook.on_dequeue(tx, attempt);
                // Fault injection: abort storms on demand, mirroring the
                // sharded executor's injection point between dequeue and
                // first read.
                if hook.inject_abort(tx, attempt) {
                    let mut inner = shared.inner.lock();
                    if inner.slots[tx].generation == generation {
                        inner.abort_tx(tx, shared.csags, shared.snapshot);
                        shared.broadcast(&mut inner);
                    }
                    continue;
                }
            }
            self.run_attempt(shared, block_env, tx, generation);
        }
    }

    fn run_attempt(&self, shared: &Shared<'_>, block_env: &BlockEnv, tx: usize, generation: u32) {
        let transaction = &shared.txs[tx];
        let csag = &shared.csags[tx];
        let release_bounds: HashMap<usize, u64> = csag
            .release_points
            .iter()
            .map(|rp| (rp.pc, rp.gas_bound))
            .collect();
        // Fire callbacks at release points and right after each key's last
        // predicted write, so publication happens as early as Algorithm 2
        // allows.
        let mut release_set: HashSet<usize> = release_bounds.keys().copied().collect();
        for &pc in csag.last_write_pc.values() {
            release_set.insert(pc.saturating_add(1));
        }

        let mut host = ThreadHost {
            shared,
            tx,
            generation,
            writes: BTreeMap::new(),
            adds: BTreeMap::new(),
            released: false,
            release_bounds,
            last_write_pc: &csag.last_write_pc,
        };
        // Entry release point: the transaction cannot abort at all.
        if let Some(rp) = csag.release_points.first() {
            if rp.pc == 0 {
                let gas_left = transaction
                    .env
                    .gas_limit
                    .saturating_sub(dmvcc_vm::INTRINSIC_GAS);
                let passed = match shared.hook() {
                    Some(hook) => hook.release_gate(tx, rp.pc, gas_left, rp.gas_bound),
                    None => gas_left >= rp.gas_bound,
                };
                if passed {
                    host.released = true;
                }
            }
        }

        let status = match transaction.kind {
            TxKind::Transfer => self.run_transfer(&mut host, transaction),
            TxKind::Call => match self.analyzer.registry().code(&transaction.to()) {
                Some(code) => {
                    let params = ExecParams {
                        code: &code,
                        tx: &transaction.env,
                        block: block_env,
                        release_points: Some(&release_set),
                        registry: Some(self.analyzer.registry()),
                    };
                    execute(&params, &mut host).status
                }
                // Unknown contract: nothing to execute, trivial success.
                None => ExecStatus::Success,
            },
        };

        let mut inner = shared.inner.lock();
        if inner.slots[tx].generation != generation {
            // Aborted while running: nothing to finalize; the abort already
            // rolled back any published versions.
            shared.broadcast(&mut inner);
            return;
        }
        match status {
            ExecStatus::Success => finalize_success(&mut inner, &mut host, shared),
            ExecStatus::Interrupted => {
                // The host returned Aborted (stale generation or deadlock
                // yield); abort_tx already handled the bookkeeping.
            }
            deterministic => {
                finalize_deterministic_abort(&mut inner, &mut host, shared, deterministic)
            }
        }
        shared.broadcast(&mut inner);
    }

    /// Pure Ether transfer executed directly against the sequences.
    fn run_transfer(&self, host: &mut ThreadHost<'_, '_>, tx: &Transaction) -> ExecStatus {
        let from = StateKey::balance(tx.sender());
        let to = StateKey::balance(tx.to());
        let balance = match host.sload(from) {
            Ok(v) => v,
            Err(HostError::Aborted) => return ExecStatus::Interrupted,
        };
        if balance < tx.env.value {
            return ExecStatus::Reverted;
        }
        if host.sstore(from, balance - tx.env.value).is_err()
            || host.sadd(to, tx.env.value).is_err()
        {
            return ExecStatus::Interrupted;
        }
        ExecStatus::Success
    }
}

/// Publishes remaining writes, drops unfulfilled predictions, marks done.
fn finalize_success(inner: &mut Inner, host: &mut ThreadHost<'_, '_>, shared: &Shared<'_>) {
    let tx = host.tx;
    if let Some(hook) = shared.hook() {
        hook.on_commit(tx);
    }
    for (key, value) in std::mem::take(&mut host.writes) {
        host.publish_key(inner, key, value, false);
    }
    for (key, delta) in std::mem::take(&mut host.adds) {
        host.publish_key(inner, key, delta, true);
    }
    // Predicted writes that never materialized: drop so readers pass
    // through (mispredicted branch).
    let predicted: Vec<StateKey> = shared.csags[tx]
        .writes
        .union(&shared.csags[tx].adds)
        .copied()
        .collect();
    for key in predicted {
        if !inner.slots[tx].published.contains(&key) {
            let effect = inner.sequences.sequence_mut(key).drop_version(tx);
            inner.apply_effect(effect, shared.csags, shared.snapshot);
        }
    }
    inner.slots[tx].phase = Phase::Finished;
    inner.slots[tx].status = Some(ExecStatus::Success);
    inner.finished += 1;
}

/// Rolls back a deterministic abort (revert / out-of-gas / code fault):
/// buffered writes are discarded; versions already published early are
/// dropped, cascading aborts to their readers (paper §IV-F case 2).
fn finalize_deterministic_abort(
    inner: &mut Inner,
    host: &mut ThreadHost<'_, '_>,
    shared: &Shared<'_>,
    status: ExecStatus,
) {
    let tx = host.tx;
    if let Some(hook) = shared.hook() {
        hook.on_commit(tx);
    }
    host.writes.clear();
    host.adds.clear();
    let published: Vec<StateKey> = inner.slots[tx].published.drain().collect();
    // Mutation testing: `skip_rollback` (always false in production) leaks
    // the keys the hook names — their versions stay in the sequences and
    // reach the final write set even though the transaction failed.
    let leaked: HashSet<StateKey> = match shared.hook() {
        Some(hook) => published
            .iter()
            .filter(|key| hook.skip_rollback(tx, key))
            .copied()
            .collect(),
        None => HashSet::new(),
    };
    for key in published {
        if leaked.contains(&key) {
            continue;
        }
        let effect = inner.sequences.sequence_mut(key).drop_version(tx);
        inner.apply_effect(effect, shared.csags, shared.snapshot);
    }
    // Unfulfilled predictions unblock readers.
    let predicted: Vec<StateKey> = shared.csags[tx]
        .writes
        .union(&shared.csags[tx].adds)
        .copied()
        .collect();
    for key in predicted {
        if leaked.contains(&key) {
            continue;
        }
        let effect = inner.sequences.sequence_mut(key).drop_version(tx);
        inner.apply_effect(effect, shared.csags, shared.snapshot);
    }
    inner.slots[tx].phase = Phase::Finished;
    inner.slots[tx].status = Some(status);
    inner.finished += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;
    use dmvcc_vm::{calldata, contracts, CodeRegistry, TxEnv};

    const TOKEN: u64 = 800;
    const COUNTER: u64 = 801;

    fn registry() -> CodeRegistry {
        CodeRegistry::builder()
            .deploy(Address::from_u64(TOKEN), contracts::token())
            .deploy(Address::from_u64(COUNTER), contracts::counter())
            .build()
    }

    fn executor(threads: usize) -> GlobalLockParallelExecutor {
        GlobalLockParallelExecutor::new(
            Analyzer::new(registry()),
            ParallelConfig {
                threads,
                max_attempts: 64,
                scheduler: SchedulerPolicy::CriticalPath,
                pin_cores: false,
            },
        )
    }

    fn mint(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::MINT,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn transfer(caller: u64, to: u64, amount: u64) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(TOKEN),
            calldata(
                contracts::token_fn::TRANSFER,
                &[Address::from_u64(to).to_u256(), U256::from(amount)],
            ),
        ))
    }

    fn check_equivalence(txs: Vec<Transaction>, snapshot: Snapshot, threads: usize) {
        let analyzer = Analyzer::new(registry());
        let expected =
            crate::oracle::execute_block_serial(&txs, &snapshot, &analyzer, &BlockEnv::default())
                .final_writes;
        let outcome = executor(threads).execute_block(&txs, &snapshot, &BlockEnv::default());
        assert_eq!(
            outcome.final_writes, expected,
            "global-lock result diverged from serial"
        );
    }

    #[test]
    fn independent_mints_match_serial() {
        let txs: Vec<_> = (0..16).map(|i| mint(900 + i, 10 + i, 5)).collect();
        check_equivalence(txs, Snapshot::empty(), 4);
    }

    #[test]
    fn dependent_chain_matches_serial() {
        let txs = vec![
            mint(900, 1, 100),
            transfer(1, 2, 30),
            transfer(2, 3, 10),
            transfer(3, 4, 5),
        ];
        check_equivalence(txs, Snapshot::empty(), 4);
    }

    #[test]
    fn hot_counter_contention_matches_serial() {
        let txs: Vec<_> = (0..20)
            .map(|i| {
                Transaction::call(TxEnv::call(
                    Address::from_u64(900 + i),
                    Address::from_u64(COUNTER),
                    calldata(contracts::counter_fn::INCREMENT_CHECKED, &[]),
                ))
            })
            .collect();
        check_equivalence(txs, Snapshot::empty(), 4);
    }

    #[test]
    fn publishes_count_broadcast_wakeups() {
        let txs = vec![mint(900, 1, 100), transfer(1, 2, 30)];
        let outcome = executor(2).execute_block(&txs, &Snapshot::empty(), &BlockEnv::default());
        assert!(outcome.stats.publishes > 0);
        // Every publish broadcasts, and finalization broadcasts again.
        assert!(outcome.stats.broadcast_wakeups >= outcome.stats.publishes);
        assert_eq!(outcome.stats.targeted_wakeups, 0);
    }
}
