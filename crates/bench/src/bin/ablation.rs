//! Ablation study (ours; motivated by the paper's §IV-C/§IV-D design
//! discussion): the contribution of each DMVCC feature — early-write
//! visibility, commutative writes, write versioning — plus the
//! contract-level DAG variant modelling coarse static analysis.

use dmvcc_bench::{ablation_series, env_usize, prepare_blocks, print_speedup_table, write_json};
use dmvcc_workload::WorkloadConfig;

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 2);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 1_000);
    for (name, workload) in [
        ("realistic", WorkloadConfig::ethereum_mix(42)),
        ("high-contention", WorkloadConfig::high_contention(42)),
    ] {
        let prepared = prepare_blocks(&workload, blocks, block_size, Default::default());
        let points = ablation_series(&prepared, &[8, 32]);
        print_speedup_table(&format!("Ablation — {name} workload"), &points);
        write_json(&format!("ablation_{name}"), &points);
    }
}
