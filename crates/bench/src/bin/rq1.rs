//! RQ1: deterministic serializability in practice — the Merkle roots of
//! parallel execution must equal serial execution's on every block.
//!
//! The paper verified 121 210 blocks (22.5 M transactions); this binary
//! verifies `DMVCC_BLOCKS` blocks on BOTH execution paths:
//!
//! 1. the virtual-time DMVCC scheduler commits the reference write set by
//!    construction (checked against an independently-committed serial
//!    StateDB), and
//! 2. the *real multi-threaded executor* re-executes every block
//!    concurrently and its flushed write set is committed to a third
//!    StateDB — all three root chains must be identical.

use dmvcc_analysis::Analyzer;
use dmvcc_bench::env_usize;
use dmvcc_core::{execute_block_serial, ParallelConfig, ParallelExecutor};
use dmvcc_state::StateDb;
use dmvcc_vm::BlockEnv;
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Rq1Report {
    blocks: usize,
    transactions: u64,
    matching_roots: usize,
    mismatching_roots: usize,
    parallel_aborts: u64,
}

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 10);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 200);
    let mut report = Rq1Report {
        blocks,
        transactions: 0,
        matching_roots: 0,
        mismatching_roots: 0,
        parallel_aborts: 0,
    };

    for (name, workload) in [
        ("realistic", WorkloadConfig::ethereum_mix(7)),
        ("high-contention", WorkloadConfig::high_contention(7)),
    ] {
        let mut generator = WorkloadGenerator::new(workload);
        let analyzer = Analyzer::new(generator.registry().clone());
        let executor = ParallelExecutor::new(
            analyzer.clone(),
            ParallelConfig {
                threads: 4,
                max_attempts: 64,
                scheduler: dmvcc_core::SchedulerPolicy::CriticalPath,
                pin_cores: false,
            },
        );
        let mut serial_db = StateDb::with_genesis(generator.genesis_entries());
        let mut parallel_db = serial_db.clone();

        for height in 1..=blocks as u64 {
            let txs = generator.block(block_size);
            let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
            let snapshot = serial_db.latest().clone();
            let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
            let outcome = executor.execute_block(&txs, &snapshot, &env);
            let serial_root = serial_db.commit(&trace.final_writes);
            let parallel_root = parallel_db.commit(&outcome.final_writes);
            report.transactions += txs.len() as u64;
            report.parallel_aborts += outcome.aborts;
            if serial_root == parallel_root {
                report.matching_roots += 1;
            } else {
                report.mismatching_roots += 1;
                eprintln!("ROOT MISMATCH at {name} block {height}");
            }
        }
        println!(
            "{name}: {blocks} blocks x {block_size} txs verified, roots all equal: {}",
            report.mismatching_roots == 0
        );
    }

    println!(
        "\nRQ1: {} blocks, {} transactions, {} matching roots, {} mismatches ({} parallel re-executions)",
        report.matching_roots + report.mismatching_roots,
        report.transactions,
        report.matching_roots,
        report.mismatching_roots,
        report.parallel_aborts,
    );
    println!("paper: 121,210 blocks / 22,557,724 txs, all roots matched");
    dmvcc_bench::write_json("rq1", &report);
    assert_eq!(report.mismatching_roots, 0, "RQ1 failed");
}
