//! State-backend benchmark: the off-critical-path commitment stack at
//! million-account scale.
//!
//! Four measurements, written to `bench-results/state_backend.json`:
//!
//! 1. **Backend reads** — cold (first touch, straight to the backend) vs
//!    warm (flat-state cache hit) point reads over a uniformly random
//!    working set, for both the in-memory versioned map and the
//!    log-structured store.
//! 2. **Commit latency** — `apply_batch` of a block-sized write set into
//!    each backend.
//! 3. **Root hashing** — serial vs parallel dirty-subtree recomputation of
//!    the account trie after a block-sized batch of dirty writes.
//! 4. **Commit overlap** — a pipelined chain run per backend, reporting
//!    what fraction of root hashing the pipeline hid off the critical
//!    path.
//!
//! Scale knobs: `DMVCC_STATE_ACCOUNTS` (default 1_000_000),
//! `DMVCC_STATE_READS` (default 200_000), `DMVCC_STATE_WRITES` (block
//! write-set size, default 4_096), `DMVCC_STATE_BLOCKS` (overlap-chain
//! length, default 6).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use dmvcc_bench::env_usize;
use dmvcc_chain::{run_pipelined_chain, BackendKind, ChainConfig, ExecutorKind, SchedulerKind};
use dmvcc_core::SchedulerPolicy;
use dmvcc_primitives::{Address, U256};
use dmvcc_state::{
    FlatCached, LsmBackend, LsmOptions, MemBackend, Mpt, StateBackend, StateKey, WriteSet,
};
use dmvcc_workload::WorkloadConfig;

/// Read/commit measurements for one backend.
#[derive(Debug, Serialize)]
struct BackendPoint {
    backend: &'static str,
    accounts: usize,
    seed_seconds: f64,
    cold_read_ns: f64,
    warm_read_ns: f64,
    cold_over_warm: f64,
    commit_ms: f64,
    segment_reads: u64,
    flushes: u64,
    compactions: u64,
}

/// Serial vs parallel dirty-subtree root recomputation.
#[derive(Debug, Serialize)]
struct RootPoint {
    accounts: usize,
    dirty_writes: usize,
    threads: usize,
    host_parallelism: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
}

/// Commit-overlap fraction of a pipelined chain run.
#[derive(Debug, Serialize)]
struct OverlapPoint {
    backend: &'static str,
    blocks: usize,
    block_size: usize,
    commit_seconds: f64,
    commit_hidden_seconds: f64,
    commit_hidden_fraction: f64,
    roots_consistent: bool,
}

#[derive(Debug, Serialize)]
struct StateBackendReport {
    accounts: usize,
    reads: usize,
    block_writes: usize,
    /// ns/op of a fixed pure-CPU loop measured in this same process.
    /// Shared-runner slowdowns hit it and the read passes alike, so the
    /// CI regression gate compares `warm_read_ns / calib_ns` — the
    /// machine-wide factor divides out.
    calib_ns: f64,
    backends: Vec<BackendPoint>,
    root: RootPoint,
    overlap: Vec<OverlapPoint>,
}

/// Deterministic multiplicative congruential generator (same as hot_path).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn account_key(i: u64) -> StateKey {
    StateKey::balance(Address::from_u64(1 + i))
}

/// ns/op of a fixed arithmetic loop. A per-run speed reference:
/// noisy-neighbor or slower-CPU effects scale it and the read
/// measurements together, so ratios against it are comparable across
/// runs and hosts. Same floor estimator as the warm-read passes —
/// per-slice minima across passes — so both sides of the ratio sit at
/// their noise-free floors.
fn calibrate() -> f64 {
    const OPS_PER_SLICE: usize = 250_000;
    const SLICES: usize = 16;
    const PASSES: usize = 5;
    let mut slice_min = [f64::INFINITY; SLICES];
    for pass in 0..PASSES {
        for (s, min) in slice_min.iter_mut().enumerate() {
            let mut lcg = Lcg(0xca11b ^ (pass * SLICES + s) as u64);
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..OPS_PER_SLICE {
                acc = acc.wrapping_add(lcg.next());
            }
            black_box(acc);
            *min = min.min(start.elapsed().as_nanos() as f64);
        }
    }
    slice_min.iter().sum::<f64>() / (SLICES * OPS_PER_SLICE) as f64
}

/// Seeds `accounts` balance entries into `backend` in chunked batches at
/// height 0, returning the wall-clock seconds spent.
fn seed_accounts(backend: &dyn StateBackend, accounts: usize) -> f64 {
    const CHUNK: usize = 65_536;
    let start = Instant::now();
    let mut i = 0u64;
    while (i as usize) < accounts {
        let end = (i as usize + CHUNK).min(accounts) as u64;
        let batch: WriteSet = (i..end)
            .map(|a| (account_key(a), U256::from(1_000_000u64 + a)))
            .collect();
        backend.apply_batch(0, &batch);
        i = end;
    }
    start.elapsed().as_secs_f64()
}

/// Cold/warm reads plus one block-sized commit against one backend.
fn bench_backend(
    label: &'static str,
    backend: Arc<dyn StateBackend>,
    accounts: usize,
    reads: usize,
    block_writes: usize,
) -> BackendPoint {
    let seed_seconds = seed_accounts(backend.as_ref(), accounts);
    let flat = FlatCached::new(backend.clone());

    let order: Vec<u64> = {
        let mut lcg = Lcg(0xc01d ^ accounts as u64);
        (0..reads).map(|_| lcg.next() % accounts as u64).collect()
    };

    // Cold pass: every miss falls through the flat cache to the backend.
    let start = Instant::now();
    for &a in &order {
        black_box(flat.get(&account_key(a), 0));
    }
    let cold_read_ns = start.elapsed().as_nanos() as f64 / reads as f64;

    // Warm passes: the same working set now lives in the flat cache.
    // The CI gate holds this number within 5% of a checked-in baseline,
    // so it must estimate the noise-free floor, not one sample: split
    // the read order into chunks, time every chunk on each of several
    // passes, and keep each chunk's minimum. Scheduler-noise bursts
    // rarely hit the same chunk on every pass, so the summed minima
    // converge far tighter than a whole-pass minimum.
    const WARM_PASSES: usize = 7;
    const WARM_CHUNKS: usize = 16;
    let chunk_len = reads.div_ceil(WARM_CHUNKS);
    let mut chunk_min = [f64::INFINITY; WARM_CHUNKS];
    for _ in 0..WARM_PASSES {
        for (c, chunk) in order.chunks(chunk_len).enumerate() {
            let start = Instant::now();
            for &a in chunk {
                black_box(flat.get(&account_key(a), 0));
            }
            let ns = start.elapsed().as_nanos() as f64;
            chunk_min[c] = chunk_min[c].min(ns);
        }
    }
    let warm_read_ns = chunk_min.iter().filter(|m| m.is_finite()).sum::<f64>() / reads as f64;

    // One block-sized commit.
    let mut lcg = Lcg(0xb10c ^ accounts as u64);
    let batch: WriteSet = (0..block_writes)
        .map(|_| {
            let a = lcg.next() % accounts as u64;
            (account_key(a), U256::from(lcg.next()))
        })
        .collect();
    let start = Instant::now();
    flat.apply_batch(1, &batch);
    let commit_ms = start.elapsed().as_secs_f64() * 1e3;

    let stats = backend.stats();
    BackendPoint {
        backend: label,
        accounts,
        seed_seconds,
        cold_read_ns,
        warm_read_ns,
        cold_over_warm: cold_read_ns / warm_read_ns.max(f64::EPSILON),
        commit_ms,
        segment_reads: stats.segment_reads,
        flushes: stats.flushes,
        compactions: stats.compactions,
    }
}

/// Serial vs parallel dirty-subtree root recomputation.
///
/// Cloned tries share `Arc`'d nodes (and their hash caches), so whichever
/// variant hashes first would leave nothing dirty for the second. Instead
/// each timed measurement applies a fresh same-sized batch of dirty writes
/// — the incremental per-block scenario — and the two variants alternate
/// over several rounds to cancel drift.
fn bench_root(accounts: usize, dirty_writes: usize, threads: usize) -> RootPoint {
    const ROUNDS: usize = 3;
    let mut trie = Mpt::new();
    for a in 0..accounts as u64 {
        let key = account_key(a);
        trie.insert(&key.to_bytes(), (1_000_000u64 + a).to_be_bytes().to_vec());
    }
    // Hash everything once so each round dirties only its own batch.
    trie.root();

    let mut lcg = Lcg(0xd1f7 ^ accounts as u64);
    let mut dirty = |trie: &mut Mpt| {
        for _ in 0..dirty_writes {
            let a = lcg.next() % accounts as u64;
            let key = account_key(a);
            trie.insert(&key.to_bytes(), lcg.next().to_be_bytes().to_vec());
        }
    };
    let mut time_root = |trie: &mut Mpt, threads: usize| {
        dirty(trie);
        let start = Instant::now();
        black_box(trie.root_parallel(threads));
        start.elapsed().as_secs_f64() * 1e3
    };

    // Warmup round (touches every code path, warms the allocator).
    time_root(&mut trie, 1);
    let mut serial_ms = f64::INFINITY;
    let mut parallel_ms = f64::INFINITY;
    for _ in 0..ROUNDS {
        serial_ms = serial_ms.min(time_root(&mut trie, 1));
        parallel_ms = parallel_ms.min(time_root(&mut trie, threads));
    }

    // Correctness spot-check: apply one more batch to two clones
    // *independently* (so they share no dirty nodes) and compare the
    // serial root of one against the parallel root of the other.
    let mut check_lcg = Lcg(0x0ddc ^ accounts as u64);
    let batch: Vec<(StateKey, u64)> = (0..dirty_writes)
        .map(|_| {
            (
                account_key(check_lcg.next() % accounts as u64),
                check_lcg.next(),
            )
        })
        .collect();
    let mut serial_copy = trie.clone();
    let mut parallel_copy = trie.clone();
    for (key, value) in &batch {
        serial_copy.insert(&key.to_bytes(), value.to_be_bytes().to_vec());
        parallel_copy.insert(&key.to_bytes(), value.to_be_bytes().to_vec());
    }
    assert_eq!(
        parallel_copy.root_parallel(threads),
        serial_copy.root_parallel(1),
        "parallel root diverged"
    );

    RootPoint {
        accounts,
        dirty_writes,
        threads,
        host_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms.max(f64::EPSILON),
    }
}

/// Pipelined chain run per backend: how much root hashing stayed off the
/// critical path.
fn bench_overlap(backend: BackendKind, blocks: usize, block_size: usize) -> OverlapPoint {
    let config = ChainConfig {
        validators: 1,
        block_size,
        mining_interval_secs: 0.0,
        threads: 4,
        scheduler: SchedulerKind::Dmvcc,
        blocks,
        gas_per_second: 4_000_000,
        workload: WorkloadConfig::ethereum_mix(7),
        crosscheck_every: 0,
        pool_miss_rate: 0.0,
        rebuild_missing_sags: true,
        policy: SchedulerPolicy::CriticalPath,
        pipeline: true,
        executor: ExecutorKind::Sharded,
        backend,
    };
    let report = run_pipelined_chain(&config);
    OverlapPoint {
        backend: backend.label(),
        blocks,
        block_size,
        commit_seconds: report.commit_seconds,
        commit_hidden_seconds: report.commit_hidden_seconds,
        commit_hidden_fraction: report.commit_hidden_fraction(),
        roots_consistent: report.roots_consistent,
    }
}

fn main() {
    let accounts = env_usize("DMVCC_STATE_ACCOUNTS", 1_000_000);
    let reads = env_usize("DMVCC_STATE_READS", 200_000);
    let block_writes = env_usize("DMVCC_STATE_WRITES", 4_096);
    let blocks = env_usize("DMVCC_STATE_BLOCKS", 6);

    let calib_ns = calibrate();
    println!("calibration: {calib_ns:.3} ns/op (pure-CPU reference loop)");

    let backends = vec![
        bench_backend(
            "mem",
            Arc::new(MemBackend::new()),
            accounts,
            reads,
            block_writes,
        ),
        bench_backend(
            "lsm",
            Arc::new(LsmBackend::new(LsmOptions::default())),
            accounts,
            reads,
            block_writes,
        ),
    ];

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10} {:>10} {:>9} {:>8} {:>12}",
        "backend",
        "accounts",
        "cold ns/rd",
        "warm ns/rd",
        "cold/warm",
        "commit ms",
        "seg rds",
        "flushes",
        "compactions"
    );
    for p in &backends {
        println!(
            "{:<8} {:>10} {:>12.1} {:>12.1} {:>9.1}x {:>10.2} {:>9} {:>8} {:>12}",
            p.backend,
            p.accounts,
            p.cold_read_ns,
            p.warm_read_ns,
            p.cold_over_warm,
            p.commit_ms,
            p.segment_reads,
            p.flushes,
            p.compactions
        );
    }

    let root = bench_root(accounts, block_writes, 8);
    println!(
        "root: {} accounts, {} dirty → serial {:.1} ms, parallel({}) {:.1} ms ({:.2}x, host cores {})",
        root.accounts,
        root.dirty_writes,
        root.serial_ms,
        root.threads,
        root.parallel_ms,
        root.speedup,
        root.host_parallelism
    );

    let overlap = vec![
        bench_overlap(BackendKind::Mem, blocks, 400),
        bench_overlap(BackendKind::Lsm, blocks, 400),
    ];
    for o in &overlap {
        println!(
            "overlap[{}]: {:.3}s hashing, {:.3}s hidden ({:.0}%), consistent={}",
            o.backend,
            o.commit_seconds,
            o.commit_hidden_seconds,
            o.commit_hidden_fraction * 100.0,
            o.roots_consistent
        );
        assert!(o.roots_consistent, "pipelined chain diverged");
    }

    let report = StateBackendReport {
        accounts,
        reads,
        block_writes,
        calib_ns,
        backends,
        root,
        overlap,
    };
    dmvcc_bench::write_json("state_backend", &report);
}
