//! Hot-path micro-benchmarks: the three memory-layout optimizations of the
//! raw-speed pass, each measured against the structure it replaced.
//!
//! 1. **Key interning** — `StateKey → KeyId` probes through the frozen
//!    FxHash tier of [`KeyInterner`] vs the SipHash `HashMap<StateKey, u32>`
//!    lookups the executor used to do on every shard/waiter/DAG access.
//! 2. **Pooled spill buffers** — [`take_spill`]/[`recycle_spill`] recycling
//!    vs a fresh heap allocation per overflowing `SourceList` (the old
//!    `Vec::with_capacity` path).
//! 3. **Batched publishes** — grouping a release set by shard and taking
//!    each shard lock once vs locking per key, over the real
//!    [`ShardedSequences`] mutexes.
//!
//! Prints ns/op per variant and writes `bench-results/hot_path.json`.
//! Scale knobs: `DMVCC_HOT_KEYS` (distinct keys, default 4096),
//! `DMVCC_HOT_ITERS` (operations per timed loop, default 2_000_000).

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;

use dmvcc_bench::env_usize;
use dmvcc_core::{recycle_spill, take_spill, ShardedSequences, DEFAULT_SHARDS};
use dmvcc_primitives::{Address, U256};
use dmvcc_state::{KeyInterner, StateKey};

/// One before/after pair of a micro-benchmark.
#[derive(Debug, Serialize)]
struct HotPathPoint {
    /// What is being compared.
    benchmark: &'static str,
    /// The replaced structure.
    baseline: &'static str,
    /// Nanoseconds per operation through the replaced structure.
    baseline_ns_per_op: f64,
    /// The hot-path structure this PR lands.
    optimized: &'static str,
    /// Nanoseconds per operation through the new structure.
    optimized_ns_per_op: f64,
    /// `baseline / optimized` (higher is better).
    speedup: f64,
}

/// The full report written to `bench-results/hot_path.json`.
#[derive(Debug, Serialize)]
struct HotPathReport {
    distinct_keys: usize,
    iterations: usize,
    points: Vec<HotPathPoint>,
}

/// Deterministic multiplicative congruential generator — enough entropy to
/// defeat branch predictors without pulling `rand` into the hot loop.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Builds `n` distinct storage keys spread over a handful of contracts —
/// the shape a real block's working set has.
fn make_keys(n: usize) -> Vec<StateKey> {
    (0..n)
        .map(|i| {
            let contract = Address::from_u64(1000 + (i % 8) as u64);
            StateKey::storage(contract, U256::from(i as u64))
        })
        .collect()
}

/// Times `iters` runs of `op` and returns ns/op.
fn time_per_op(iters: usize, mut op: impl FnMut(usize)) -> f64 {
    // Untimed warmup so both variants start with warm caches.
    for i in 0..iters / 10 {
        op(i);
    }
    let start = Instant::now();
    for i in 0..iters {
        op(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Interner probe vs SipHash map lookup over the same access pattern.
fn bench_interning(keys: &[StateKey], iters: usize) -> HotPathPoint {
    let mut interner = KeyInterner::new();
    let mut map: HashMap<StateKey, u32> = HashMap::with_capacity(keys.len());
    for (i, key) in keys.iter().enumerate() {
        interner.preintern(*key);
        map.insert(*key, i as u32);
    }
    let order: Vec<usize> = {
        let mut lcg = Lcg(0x5eed);
        (0..iters)
            .map(|_| lcg.next() as usize % keys.len())
            .collect()
    };

    let baseline_ns = time_per_op(iters, |i| {
        let key = &keys[order[i % iters]];
        black_box(map.get(black_box(key)));
    });
    let optimized_ns = time_per_op(iters, |i| {
        let key = &keys[order[i % iters]];
        black_box(interner.intern(black_box(*key)));
    });
    HotPathPoint {
        benchmark: "key lookup",
        baseline: "HashMap<StateKey, u32> (SipHash)",
        baseline_ns_per_op: baseline_ns,
        optimized: "KeyInterner frozen tier (FxHash)",
        optimized_ns_per_op: optimized_ns,
        speedup: baseline_ns / optimized_ns,
    }
}

/// Pooled spill recycling vs a fresh allocation per spill.
///
/// A spilled merge chain is long by definition (the 4 inline slots already
/// overflowed) and keeps growing as upstream writers accumulate; the old
/// path started every spill at `Vec::with_capacity(8)` and paid the
/// reallocation-and-copy ladder on each chain, while pooled buffers come
/// back with their high-water capacity intact.
fn bench_spill_pool(iters: usize) -> HotPathPoint {
    const CHAIN: usize = 24;
    let baseline_ns = time_per_op(iters, |i| {
        let mut buffer: Vec<usize> = Vec::with_capacity(8);
        for s in 0..CHAIN {
            buffer.push(i + s);
        }
        black_box(&buffer);
        drop(buffer);
    });
    let optimized_ns = time_per_op(iters, |i| {
        let mut buffer = take_spill();
        for s in 0..CHAIN {
            buffer.push(i + s);
        }
        black_box(&buffer);
        recycle_spill(buffer);
    });
    HotPathPoint {
        benchmark: "spill buffer",
        baseline: "Vec::with_capacity per spill",
        baseline_ns_per_op: baseline_ns,
        optimized: "thread-local spill pool",
        optimized_ns_per_op: optimized_ns,
        speedup: baseline_ns / optimized_ns,
    }
}

/// Per-key shard locking vs one lock per shard over a release set, on the
/// real `ShardedSequences` mutexes with worker threads contending the way
/// a parallel block does.
///
/// The merge ratio is bounded by the shard count: a transfer's ~8-key
/// release set touching ~7 distinct shards saves little, while a
/// loop-summarized release (airdrop writing dozens of recipient balances)
/// collapses to at most one lock per shard. Both shapes are measured.
fn bench_batched_publish(
    benchmark: &'static str,
    release_set: usize,
    keys: &[StateKey],
    iters: usize,
) -> HotPathPoint {
    const WORKERS: usize = 4;
    let sequences = ShardedSequences::with_shards(DEFAULT_SHARDS);
    let ids: Vec<_> = keys.iter().map(|k| sequences.intern(*k)).collect();
    let rounds = (iters / release_set / WORKERS).max(1);
    let sets: Vec<Vec<_>> = {
        let mut lcg = Lcg(0xb10c);
        (0..4096)
            .map(|_| {
                (0..release_set)
                    .map(|_| ids[lcg.next() as usize % ids.len()])
                    .collect()
            })
            .collect()
    };

    // Both variants run the same round count on WORKERS threads; wall time
    // over total published keys gives contended ns/key.
    let run = |batched: bool| -> f64 {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..WORKERS {
                let sequences = &sequences;
                let sets = &sets;
                scope.spawn(move || {
                    // Same grouping the executor's release path uses: sort
                    // the set by shard, walk it in same-shard chunks.
                    let mut scratch = Vec::with_capacity(release_set);
                    for i in 0..rounds {
                        let set = &sets[(i * WORKERS + worker) % sets.len()];
                        if batched {
                            scratch.clear();
                            scratch.extend_from_slice(set);
                            scratch.sort_unstable_by_key(|&id| sequences.shard_index_of(id));
                            for group in scratch.chunk_by(|a, b| {
                                sequences.shard_index_of(*a) == sequences.shard_index_of(*b)
                            }) {
                                let shard = sequences.shard_for(group[0]);
                                for &id in group {
                                    black_box(id);
                                }
                                black_box(&*shard);
                            }
                        } else {
                            for &id in set {
                                let shard = sequences.shard_for(id);
                                black_box(&*shard);
                            }
                        }
                    }
                });
            }
        });
        start.elapsed().as_nanos() as f64 / (rounds * WORKERS * release_set) as f64
    };

    run(true); // warmup (threads spawned, locks touched)
    let baseline_ns = run(false);
    let optimized_ns = run(true);
    HotPathPoint {
        benchmark,
        baseline: "one shard lock per key (4 threads)",
        baseline_ns_per_op: baseline_ns,
        optimized: "grouped by shard, one lock each",
        optimized_ns_per_op: optimized_ns,
        speedup: baseline_ns / optimized_ns,
    }
}

fn main() {
    let distinct_keys = env_usize("DMVCC_HOT_KEYS", 4096);
    let iterations = env_usize("DMVCC_HOT_ITERS", 2_000_000);
    let keys = make_keys(distinct_keys);

    let points = vec![
        bench_interning(&keys, iterations),
        bench_spill_pool(iterations),
        bench_batched_publish("publish (transfer, 8)", 8, &keys, iterations),
        bench_batched_publish("publish (airdrop, 48)", 48, &keys, iterations),
    ];

    println!(
        "{:<22} {:>34} {:>10} {:>38} {:>10} {:>8}",
        "benchmark", "baseline", "ns/op", "optimized", "ns/op", "speedup"
    );
    for p in &points {
        println!(
            "{:<22} {:>34} {:>10.2} {:>38} {:>10.2} {:>7.2}x",
            p.benchmark,
            p.baseline,
            p.baseline_ns_per_op,
            p.optimized,
            p.optimized_ns_per_op,
            p.speedup
        );
    }

    let report = HotPathReport {
        distinct_keys,
        iterations,
        points,
    };
    dmvcc_bench::write_json("hot_path", &report);
}
