//! Fig. 8(b): blockchain throughput speedup under high contention.
//!
//! Paper reference: DAG/OCC only finish ~60 % of what DMVCC completes per
//! mining cycle; DMVCC executes 10 000 transactions within a 12 s cycle on
//! 8 threads.

use dmvcc_bench::{env_usize, write_json, THREAD_SWEEP};
use dmvcc_chain::{run_testnet, ChainConfig, SchedulerKind};
use dmvcc_workload::WorkloadConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ThroughputPoint {
    scheduler: String,
    threads: usize,
    tps: f64,
    throughput_speedup: f64,
    aborts: u64,
}

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 2);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 5_000);
    let make = |scheduler, threads| ChainConfig {
        blocks,
        block_size,
        workload: WorkloadConfig::high_contention(42),
        ..ChainConfig::execution_bound(scheduler, threads, 42)
    };
    let serial = run_testnet(&make(SchedulerKind::Serial, 1));
    assert!(serial.roots_consistent, "validator roots diverged");
    println!(
        "\n== fig8b — throughput speedup, high contention ({blocks} x {block_size}-tx blocks) =="
    );
    println!(
        "serial: {:.0} TPS ({:.1}s execution)",
        serial.tps, serial.execution_seconds
    );
    println!("{:>8}{:>16}{:>16}{:>16}", "threads", "DAG", "OCC", "DMVCC");
    let mut points = Vec::new();
    for threads in THREAD_SWEEP {
        print!("{threads:>8}");
        for scheduler in [SchedulerKind::Dag, SchedulerKind::Occ, SchedulerKind::Dmvcc] {
            let report = run_testnet(&make(scheduler, threads));
            assert!(report.roots_consistent, "validator roots diverged");
            assert_eq!(report.final_root, serial.final_root, "chain diverged");
            let speedup = report.tps / serial.tps;
            print!("{speedup:>14.2}x ");
            points.push(ThroughputPoint {
                scheduler: scheduler.label().to_string(),
                threads,
                tps: report.tps,
                throughput_speedup: speedup,
                aborts: report.aborts,
            });
        }
        println!();
    }
    println!(
        "paper: DAG/OCC complete ~60% of DMVCC's transactions per cycle under high contention"
    );
    write_json("fig8b", &points);
}
