//! Fig. 7(a): speedup of all parallel execution approaches vs thread count
//! on the realistic (low-contention) Ethereum-mix workload.
//!
//! Paper reference @32 threads: DMVCC 21.35x, OCC 13.86x, DAG 11.04x.
//! Blocks of 1 000 transactions, repacked randomly, averaged across blocks.

use dmvcc_bench::{
    env_usize, prepare_blocks, print_speedup_table, speedup_series, write_json, THREAD_SWEEP,
};
use dmvcc_workload::WorkloadConfig;

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 4);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 1_000);
    let prepared = prepare_blocks(
        &WorkloadConfig::ethereum_mix(42),
        blocks,
        block_size,
        Default::default(),
    );
    let points = speedup_series(&prepared, &THREAD_SWEEP);
    print_speedup_table(
        &format!("Fig. 7(a) — speedup, realistic workload ({blocks} x {block_size}-tx blocks)"),
        &points,
    );
    println!("paper @32 threads: DMVCC 21.35x | OCC 13.86x | DAG 11.04x");
    write_json("fig7a", &points);
}
