//! Threaded scaling: wall-clock block throughput of the two executor
//! generations at 1/2/4/8 worker threads.
//!
//! The "before" series is [`GlobalLockParallelExecutor`] — one mutex over
//! all access sequences, every publish a condvar broadcast. The "after"
//! series is the sharded [`ParallelExecutor`] — per-shard locks, a reverse
//! waiter index with targeted wakeups, and work-stealing ready deques.
//! Both run the same prepared blocks on a realistic, a high-contention, a
//! loop-heavy workload (dominated by summarizable credit loops, exercising
//! bind-time loop unrolling), a call-heavy workload (dominated by
//! cross-contract router/flash-mint/oracle chains, exercising bind-time
//! summary substitution) and an NFT mint-rush workload (DELEGATECALL
//! royalty splitters, STATICCALL floor reads and value-transferring
//! payouts, exercising the full call family plus bounded dynamic
//! dispatch); every outcome is checked against the serial write set
//! before it is timed into the report (a wrong-but-fast executor scores
//! zero).
//!
//! Every (executor, workload, threads) cell is measured under both
//! ready-queue policies — `fifo` and `critical-path` — and each point
//! carries the block DAG's critical-path gas, the implied speedup bound
//! (total gas / critical-path gas), the observed rank inversions and the
//! C-SAG refinement wall time.
//!
//! Scale knobs: `DMVCC_BLOCKS` (default 3), `DMVCC_BLOCK_SIZE` (default
//! 200). Writes `bench-results/threaded_scaling.json`.

use std::time::Instant;

use serde::Serialize;

use dmvcc_analysis::Analyzer;
use dmvcc_bench::env_usize;
use dmvcc_core::{
    execute_block_serial, GlobalLockParallelExecutor, HybridExecutor, ParallelConfig,
    ParallelExecutor, ParallelOutcome, SchedulerPolicy, StmExecutor,
};
use dmvcc_state::{Snapshot, WriteSet};
use dmvcc_vm::{BlockEnv, Transaction};
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Block {
    txs: Vec<Transaction>,
    snapshot: Snapshot,
    env: BlockEnv,
    expected: WriteSet,
}

#[derive(Debug, Serialize)]
struct ScalingPoint {
    executor: &'static str,
    workload: &'static str,
    scheduler: &'static str,
    threads: usize,
    wall_ms: f64,
    tx_per_s: f64,
    aborts: u64,
    attempts: u64,
    publishes: u64,
    targeted_wakeups: u64,
    wakeups_avoided: u64,
    broadcast_wakeups: u64,
    steals: u64,
    parks: u64,
    symbolic_bindings: u64,
    loop_summarized_bindings: u64,
    interprocedural_bindings: u64,
    /// C-SAGs bound through a bounded dynamic-dispatch site (call target
    /// loaded from a registry slot and resolved against the snapshot).
    bounded_dynamic_bindings: u64,
    /// Code-hash summary-memo hits during refinement: P-SAG summaries
    /// reused across deployments that share one bytecode body.
    summary_cache_hits: u64,
    speculative_fallbacks: u64,
    /// Fraction of refined C-SAGs served without speculative pre-execution
    /// — straight symbolic bindings plus bind-time loop unrolls,
    /// cross-contract summary substitutions and bounded-dynamic binds
    /// (transfers, which need none of these, are excluded from the
    /// denominator).
    symbolic_hit_rate: f64,
    /// Wakeups issued per committed transaction: broadcasts for the
    /// global-lock executor, targeted signals for the sharded one.
    wakeups_per_commit: f64,
    /// Gas on the longest dependency chain, summed over the blocks.
    critical_path_gas: u64,
    /// Amdahl-style ceiling implied by the DAG: total predicted gas over
    /// critical-path gas (aggregated over the blocks).
    speedup_bound: f64,
    /// Times a ready transaction ran while a strictly higher-ranked one
    /// sat in the queue (always probed, under both policies).
    rank_inversions: u64,
    /// C-SAG refinement wall time across the measured blocks.
    refine_ms: f64,
    /// Heap bytes served from recycled block-arena memory instead of fresh
    /// allocations (shard tables, per-tx states, touched/published sets).
    alloc_bytes_saved: u64,
    /// Shard mutex acquisitions across the measured blocks (sharded
    /// executor only; zero for the global-lock executor).
    shard_lock_acquisitions: u64,
    /// Grouped release/drop publishes — `publishes / publish_batches` is
    /// the per-lock amortization factor.
    publish_batches: u64,
    /// Commit-turn validations (STM executor only).
    validations: u64,
    /// Validations that failed and forced a re-execution (STM only).
    validation_failures: u64,
    /// Transactions executed on the optimistic path (all of them for the
    /// STM executor; the routed subset for the hybrid dispatcher).
    optimistic_txs: u64,
}

/// Code-hash summary-memo traffic for one workload's whole run (each
/// workload has its own registry, so the counters start at zero). Hits
/// land during the first cold analysis of each deployment — the
/// per-address P-SAG cache front-ends the memo afterwards — so they are
/// reported per workload, not per measured cell.
#[derive(Debug, Serialize)]
struct WorkloadCacheTraffic {
    workload: &'static str,
    summary_cache_hits: u64,
    summary_cache_misses: u64,
}

#[derive(Debug, Serialize)]
struct ScalingReport {
    blocks: usize,
    block_size: usize,
    host_threads: usize,
    before: Vec<ScalingPoint>,
    after: Vec<ScalingPoint>,
    /// The Block-STM-style optimistic executor (no predictions consumed;
    /// ready-queue policy does not apply, so one cell per thread count).
    stm: Vec<ScalingPoint>,
    /// The hybrid predictive/optimistic dispatcher over the sharded
    /// executor.
    hybrid: Vec<ScalingPoint>,
    /// Per-workload code-hash summary-memo traffic.
    summary_cache: Vec<WorkloadCacheTraffic>,
}

/// Prepares a chain of blocks with their serial reference write sets, so
/// every timed run executes identical work.
fn prepare(workload: WorkloadConfig, blocks: usize, block_size: usize) -> (Analyzer, Vec<Block>) {
    let mut generator = WorkloadGenerator::new(workload);
    let analyzer = Analyzer::new(generator.registry().clone());
    let mut snapshot = Snapshot::from_entries(generator.genesis_entries());
    let mut out = Vec::with_capacity(blocks);
    for height in 1..=blocks as u64 {
        let txs = generator.block(block_size);
        let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let next = snapshot.apply(&trace.final_writes);
        out.push(Block {
            txs,
            snapshot,
            env,
            expected: trace.final_writes,
        });
        snapshot = next;
    }
    (analyzer, out)
}

fn measure(
    workload: &'static str,
    executor: &'static str,
    scheduler: &'static str,
    threads: usize,
    blocks: &[Block],
    run: impl Fn(&Block) -> ParallelOutcome,
) -> ScalingPoint {
    // One warmup pass (untimed) so allocator and page-cache effects hit
    // both series equally.
    for block in blocks {
        let outcome = run(block);
        assert_eq!(
            outcome.final_writes, block.expected,
            "{executor}@{threads} diverged from serial on {workload}"
        );
    }
    // A single pass over 3 blocks lasts a handful of milliseconds — far
    // too little to survive a timeslice on a loaded CI host. Each cell is
    // measured as the fastest of `DMVCC_PASSES` full passes (counters come
    // from the first timed pass; they are schedule-dependent but their
    // magnitudes, not exact values, are what the gates check).
    let passes = env_usize("DMVCC_PASSES", 3).max(1);
    let mut best = f64::INFINITY;
    for _ in 1..passes {
        let start = Instant::now();
        for block in blocks {
            run(block);
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let mut aborts = 0u64;
    let mut stats = dmvcc_core::ExecutorStats::default();
    let mut txs = 0u64;
    let start = Instant::now();
    for block in blocks {
        let outcome = run(block);
        txs += block.txs.len() as u64;
        aborts += outcome.aborts;
        stats.attempts += outcome.stats.attempts;
        stats.publishes += outcome.stats.publishes;
        stats.targeted_wakeups += outcome.stats.targeted_wakeups;
        stats.wakeups_avoided += outcome.stats.wakeups_avoided;
        stats.broadcast_wakeups += outcome.stats.broadcast_wakeups;
        stats.steals += outcome.stats.steals;
        stats.parks += outcome.stats.parks;
        stats.symbolic_bindings += outcome.stats.symbolic_bindings;
        stats.loop_summarized_bindings += outcome.stats.loop_summarized_bindings;
        stats.interprocedural_bindings += outcome.stats.interprocedural_bindings;
        stats.bounded_dynamic_bindings += outcome.stats.bounded_dynamic_bindings;
        stats.summary_cache_hits += outcome.stats.summary_cache_hits;
        stats.speculative_fallbacks += outcome.stats.speculative_fallbacks;
        stats.critical_path_gas += outcome.stats.critical_path_gas;
        stats.predicted_gas += outcome.stats.predicted_gas;
        stats.rank_inversions += outcome.stats.rank_inversions;
        stats.refine_nanos += outcome.stats.refine_nanos;
        stats.alloc_bytes_saved += outcome.stats.alloc_bytes_saved;
        stats.shard_lock_acquisitions += outcome.stats.shard_lock_acquisitions;
        stats.publish_batches += outcome.stats.publish_batches;
        stats.validations += outcome.stats.validations;
        stats.validation_failures += outcome.stats.validation_failures;
        stats.optimistic_txs += outcome.stats.optimistic_txs;
    }
    let wall_secs = start.elapsed().as_secs_f64().min(best);
    let wall_ms = wall_secs * 1e3;
    let wakeups = if stats.broadcast_wakeups > 0 {
        stats.broadcast_wakeups
    } else {
        stats.targeted_wakeups
    };
    ScalingPoint {
        executor,
        workload,
        scheduler,
        threads,
        wall_ms,
        tx_per_s: txs as f64 / wall_secs,
        aborts,
        attempts: stats.attempts,
        publishes: stats.publishes,
        targeted_wakeups: stats.targeted_wakeups,
        wakeups_avoided: stats.wakeups_avoided,
        broadcast_wakeups: stats.broadcast_wakeups,
        steals: stats.steals,
        parks: stats.parks,
        symbolic_bindings: stats.symbolic_bindings,
        loop_summarized_bindings: stats.loop_summarized_bindings,
        interprocedural_bindings: stats.interprocedural_bindings,
        bounded_dynamic_bindings: stats.bounded_dynamic_bindings,
        summary_cache_hits: stats.summary_cache_hits,
        speculative_fallbacks: stats.speculative_fallbacks,
        symbolic_hit_rate: (stats.symbolic_bindings
            + stats.loop_summarized_bindings
            + stats.interprocedural_bindings
            + stats.bounded_dynamic_bindings) as f64
            / (stats.symbolic_bindings
                + stats.loop_summarized_bindings
                + stats.interprocedural_bindings
                + stats.bounded_dynamic_bindings
                + stats.speculative_fallbacks)
                .max(1) as f64,
        wakeups_per_commit: wakeups as f64 / txs.max(1) as f64,
        critical_path_gas: stats.critical_path_gas,
        speedup_bound: stats.predicted_gas as f64 / stats.critical_path_gas.max(1) as f64,
        rank_inversions: stats.rank_inversions,
        refine_ms: stats.refine_nanos as f64 / 1e6,
        alloc_bytes_saved: stats.alloc_bytes_saved,
        shard_lock_acquisitions: stats.shard_lock_acquisitions,
        publish_batches: stats.publish_batches,
        validations: stats.validations,
        validation_failures: stats.validation_failures,
        optimistic_txs: stats.optimistic_txs,
    }
}

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 3);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 200);
    let mut report = ScalingReport {
        blocks,
        block_size,
        host_threads: std::thread::available_parallelism().map_or(0, |n| n.get()),
        before: Vec::new(),
        after: Vec::new(),
        stm: Vec::new(),
        hybrid: Vec::new(),
        summary_cache: Vec::new(),
    };

    println!(
        "{:<12} {:<16} {:<14} {:>7} {:>10} {:>10} {:>8} {:>8} {:>7} {:>7}",
        "executor",
        "workload",
        "scheduler",
        "threads",
        "wall_ms",
        "tx/s",
        "aborts",
        "inversn",
        "bound",
        "sym%"
    );
    for (name, workload) in [
        ("realistic", WorkloadConfig::ethereum_mix(31)),
        ("high-contention", WorkloadConfig::high_contention(31)),
        ("loop-heavy", WorkloadConfig::loop_heavy(31)),
        ("call-heavy", WorkloadConfig::call_heavy(31)),
        ("nft-mint-rush", WorkloadConfig::nft_mint_rush(31)),
    ] {
        let (analyzer, chain) = prepare(workload, blocks, block_size);
        for threads in THREADS {
            for policy in [SchedulerPolicy::Fifo, SchedulerPolicy::CriticalPath] {
                let config = ParallelConfig {
                    threads,
                    max_attempts: 64,
                    scheduler: policy,
                    pin_cores: false,
                };
                let global = GlobalLockParallelExecutor::new(analyzer.clone(), config);
                let sharded = ParallelExecutor::new(analyzer.clone(), config);
                for (label, point) in [
                    (
                        "global-lock",
                        measure(name, "global-lock", policy.label(), threads, &chain, |b| {
                            global.execute_block(&b.txs, &b.snapshot, &b.env)
                        }),
                    ),
                    (
                        "sharded",
                        measure(name, "sharded", policy.label(), threads, &chain, |b| {
                            sharded.execute_block(&b.txs, &b.snapshot, &b.env)
                        }),
                    ),
                ] {
                    println!(
                        "{:<12} {:<16} {:<14} {:>7} {:>10.2} {:>10.0} {:>8} {:>8} {:>6.1}x {:>6.0}%",
                        label,
                        name,
                        point.scheduler,
                        threads,
                        point.wall_ms,
                        point.tx_per_s,
                        point.aborts,
                        point.rank_inversions,
                        point.speedup_bound,
                        point.symbolic_hit_rate * 100.0
                    );
                    if label == "global-lock" {
                        report.before.push(point);
                    } else {
                        report.after.push(point);
                    }
                }
                let hybrid = HybridExecutor::new(analyzer.clone(), config);
                let point = measure(name, "hybrid", policy.label(), threads, &chain, |b| {
                    hybrid.execute_block(&b.txs, &b.snapshot, &b.env)
                });
                println!(
                    "{:<12} {:<16} {:<14} {:>7} {:>10.2} {:>10.0} {:>8} {:>8} {:>6.1}x {:>6.0}%",
                    "hybrid",
                    name,
                    point.scheduler,
                    threads,
                    point.wall_ms,
                    point.tx_per_s,
                    point.aborts,
                    point.rank_inversions,
                    point.speedup_bound,
                    point.symbolic_hit_rate * 100.0
                );
                report.hybrid.push(point);
            }
            // The STM executor consumes no predictions, so the ready-queue
            // policy does not apply: one cell per thread count.
            let config = ParallelConfig {
                threads,
                max_attempts: 64,
                scheduler: SchedulerPolicy::CriticalPath,
                pin_cores: false,
            };
            let stm = StmExecutor::new(analyzer.clone(), config);
            let point = measure(name, "stm", "optimistic", threads, &chain, |b| {
                stm.execute_block(&b.txs, &b.snapshot, &b.env)
            });
            println!(
                "{:<12} {:<16} {:<14} {:>7} {:>10.2} {:>10.0} {:>8} {:>8} {:>6.1}x {:>6.0}%",
                "stm",
                name,
                point.scheduler,
                threads,
                point.wall_ms,
                point.tx_per_s,
                point.aborts,
                point.rank_inversions,
                point.speedup_bound,
                point.symbolic_hit_rate * 100.0
            );
            report.stm.push(point);
        }
        report.summary_cache.push(WorkloadCacheTraffic {
            workload: name,
            summary_cache_hits: analyzer.registry().summaries().hits(),
            summary_cache_misses: analyzer.registry().summaries().misses(),
        });
    }

    // Hot-path memory-layout counters for the sharded executor: recycled
    // block-arena bytes, shard-lock traffic and publish amortization.
    let saved: u64 = report.after.iter().map(|p| p.alloc_bytes_saved).sum();
    let locks: u64 = report.after.iter().map(|p| p.shard_lock_acquisitions).sum();
    let publishes: u64 = report.after.iter().map(|p| p.publishes).sum();
    let batches: u64 = report.after.iter().map(|p| p.publish_batches).sum();
    println!(
        "\nsharded hot path: {:.1} MiB served from recycled arenas, \
         {locks} shard-lock acquisitions, {:.2} publishes per batch",
        saved as f64 / (1 << 20) as f64,
        publishes as f64 / batches.max(1) as f64
    );

    // The targeted-wakeup design must do strictly less waking per commit
    // than condvar broadcasts under contention.
    let hot_wakeups = |points: &[ScalingPoint]| {
        points
            .iter()
            .filter(|p| p.workload == "high-contention" && p.threads >= 4)
            .map(|p| p.wakeups_per_commit)
            .fold(0.0f64, f64::max)
    };
    let before_hot = hot_wakeups(&report.before);
    let after_hot = hot_wakeups(&report.after);
    println!(
        "\nhigh-contention wakeups/commit (worst at >=4 threads): \
         global-lock {before_hot:.2} vs sharded {after_hot:.2}"
    );
    assert!(
        after_hot <= before_hot,
        "targeted wakeups should not exceed broadcasts per commit"
    );

    // Rank-ordered dispatch must hold its own against FIFO where it
    // matters: the sharded executor on the contended workload. Wall clock
    // on a loaded CI host is noisy, so the hard gate allows 10% slack —
    // and only thread counts the host can actually run in parallel are
    // compared (oversubscribed cells measure the OS timeslicer, not the
    // ready-queue policy); the checked-in JSON shows the real margins.
    let host = report.host_threads.max(1);
    let gate_tier = THREADS
        .iter()
        .copied()
        .filter(|&t| t <= host)
        .max()
        .unwrap_or(1);
    let gated = |t: usize| t <= host && (t >= 4 || t == gate_tier);
    let hot_tx_per_s = |points: &[ScalingPoint], scheduler: &str| {
        points
            .iter()
            .filter(|p| {
                p.workload == "high-contention" && gated(p.threads) && p.scheduler == scheduler
            })
            .map(|p| p.tx_per_s)
            .fold(0.0f64, f64::max)
    };
    let fifo_hot = hot_tx_per_s(&report.after, "fifo");
    let cp_hot = hot_tx_per_s(&report.after, "critical-path");
    println!(
        "high-contention tx/s (best at parallel-capable threads, sharded): \
         fifo {fifo_hot:.0} vs critical-path {cp_hot:.0}"
    );
    assert!(
        cp_hot >= fifo_hot * 0.9,
        "critical-path scheduling regressed throughput under contention \
         (fifo {fifo_hot:.0} tx/s vs critical-path {cp_hot:.0} tx/s)"
    );

    // On the well-analyzed realistic workload nearly every transaction
    // routes to the predictive sharded executor, so the hybrid dispatcher
    // must not tax it: hybrid throughput stays within 5% of the sharded
    // baseline. Host throughput drifts over the minutes the full matrix
    // takes, so the gate compares matched (threads, policy) cells — the
    // sharded and hybrid runs of a pair execute back-to-back — and a real
    // routing tax would sink every pair, not just the noisiest.
    let mut pair_ratio = 0.0f64;
    let mut pair_sharded = 0.0f64;
    let mut pair_hybrid = 0.0f64;
    for hybrid_point in report
        .hybrid
        .iter()
        .filter(|p| p.workload == "realistic" && gated(p.threads))
    {
        let sharded_point = report.after.iter().find(|p| {
            p.workload == "realistic"
                && p.threads == hybrid_point.threads
                && p.scheduler == hybrid_point.scheduler
        });
        if let Some(sharded_point) = sharded_point {
            let ratio = hybrid_point.tx_per_s / sharded_point.tx_per_s;
            if ratio > pair_ratio {
                pair_ratio = ratio;
                pair_sharded = sharded_point.tx_per_s;
                pair_hybrid = hybrid_point.tx_per_s;
            }
        }
    }
    println!(
        "realistic hybrid/sharded tx/s (best matched cell at \
         parallel-capable threads): {pair_hybrid:.0} / {pair_sharded:.0} = {pair_ratio:.3}"
    );
    assert!(
        pair_ratio >= 0.95,
        "hybrid routing taxed the well-analyzed workload \
         (sharded {pair_sharded:.0} tx/s vs hybrid {pair_hybrid:.0} tx/s)"
    );

    // Loop summarization must carry the loop-heavy workload: speculative
    // pre-execution is the exception there, not the rule.
    for point in report.after.iter().filter(|p| p.workload == "loop-heavy") {
        let refinements = point.symbolic_bindings
            + point.loop_summarized_bindings
            + point.interprocedural_bindings
            + point.bounded_dynamic_bindings
            + point.speculative_fallbacks;
        assert!(
            (point.speculative_fallbacks as f64) < 0.10 * refinements.max(1) as f64,
            "loop-heavy workload fell back to speculation {}x of {} refinements",
            point.speculative_fallbacks,
            refinements
        );
        assert!(
            point.loop_summarized_bindings > 0,
            "loop-heavy workload produced no loop-summarized bindings"
        );
    }

    // Interprocedural summaries must carry the call-heavy workload the
    // same way: the cross-contract chains bind from composed templates,
    // not via speculative pre-execution.
    for point in report.after.iter().filter(|p| p.workload == "call-heavy") {
        let refinements = point.symbolic_bindings
            + point.loop_summarized_bindings
            + point.interprocedural_bindings
            + point.bounded_dynamic_bindings
            + point.speculative_fallbacks;
        assert!(
            (point.speculative_fallbacks as f64) < 0.10 * refinements.max(1) as f64,
            "call-heavy workload fell back to speculation {}x of {} refinements",
            point.speculative_fallbacks,
            refinements
        );
        assert!(
            point.interprocedural_bindings > 0,
            "call-heavy workload produced no interprocedural bindings"
        );
    }

    // The full call family must carry the mint rush: DELEGATECALL royalty
    // splits, STATICCALL floor reads and the bounded-dynamic payout
    // target all bind from composed summaries. The hard gate is on the
    // call-bearing population — transactions whose C-SAG refined through a
    // call tier or fell back to speculation — of which >=90% must bind
    // non-speculatively.
    for point in report
        .after
        .iter()
        .filter(|p| p.workload == "nft-mint-rush")
    {
        let call_bearing = point.interprocedural_bindings
            + point.bounded_dynamic_bindings
            + point.speculative_fallbacks;
        let bound = point.interprocedural_bindings + point.bounded_dynamic_bindings;
        assert!(
            bound as f64 >= 0.90 * call_bearing.max(1) as f64,
            "nft-mint-rush: only {bound} of {call_bearing} call-bearing \
             transactions bound non-speculatively"
        );
        assert!(
            point.bounded_dynamic_bindings > 0,
            "nft-mint-rush produced no bounded-dynamic bindings"
        );
    }

    // Code-hash memoization must actually deduplicate analysis on the
    // mint rush: the drops deploy many copies of the same three bodies
    // (drop, splitter, floor oracle), so cold analysis sees far more
    // cache hits than distinct-body misses.
    for traffic in report
        .summary_cache
        .iter()
        .filter(|t| t.workload == "nft-mint-rush")
    {
        println!(
            "nft-mint-rush summary memo: {} hits / {} misses",
            traffic.summary_cache_hits, traffic.summary_cache_misses
        );
        assert!(
            traffic.summary_cache_hits > traffic.summary_cache_misses,
            "nft-mint-rush summary memo should be hit-dominated \
             ({} hits vs {} misses)",
            traffic.summary_cache_hits,
            traffic.summary_cache_misses
        );
    }

    dmvcc_bench::write_json("threaded_scaling", &report);
    println!("wrote bench-results/threaded_scaling.json");
}
