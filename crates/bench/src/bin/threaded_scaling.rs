//! Threaded scaling: wall-clock block throughput of the two executor
//! generations at 1/2/4/8 worker threads.
//!
//! The "before" series is [`GlobalLockParallelExecutor`] — one mutex over
//! all access sequences, every publish a condvar broadcast. The "after"
//! series is the sharded [`ParallelExecutor`] — per-shard locks, a reverse
//! waiter index with targeted wakeups, and work-stealing ready deques.
//! Both run the same prepared blocks on a realistic and a high-contention
//! workload; every outcome is checked against the serial write set before
//! it is timed into the report (a wrong-but-fast executor scores zero).
//!
//! Scale knobs: `DMVCC_BLOCKS` (default 3), `DMVCC_BLOCK_SIZE` (default
//! 200). Writes `bench-results/threaded_scaling.json`.

use std::time::Instant;

use serde::Serialize;

use dmvcc_analysis::Analyzer;
use dmvcc_bench::env_usize;
use dmvcc_core::{
    execute_block_serial, GlobalLockParallelExecutor, ParallelConfig, ParallelExecutor,
    ParallelOutcome,
};
use dmvcc_state::{Snapshot, WriteSet};
use dmvcc_vm::{BlockEnv, Transaction};
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Block {
    txs: Vec<Transaction>,
    snapshot: Snapshot,
    env: BlockEnv,
    expected: WriteSet,
}

#[derive(Debug, Serialize)]
struct ScalingPoint {
    executor: &'static str,
    workload: &'static str,
    threads: usize,
    wall_ms: f64,
    tx_per_s: f64,
    aborts: u64,
    attempts: u64,
    publishes: u64,
    targeted_wakeups: u64,
    wakeups_avoided: u64,
    broadcast_wakeups: u64,
    steals: u64,
    parks: u64,
    symbolic_bindings: u64,
    speculative_fallbacks: u64,
    /// Fraction of refined C-SAGs served by the symbolic binding fast
    /// tier instead of speculative pre-execution (transfers, which need
    /// neither, are excluded from the denominator).
    symbolic_hit_rate: f64,
    /// Wakeups issued per committed transaction: broadcasts for the
    /// global-lock executor, targeted signals for the sharded one.
    wakeups_per_commit: f64,
}

#[derive(Debug, Serialize)]
struct ScalingReport {
    blocks: usize,
    block_size: usize,
    host_threads: usize,
    before: Vec<ScalingPoint>,
    after: Vec<ScalingPoint>,
}

/// Prepares a chain of blocks with their serial reference write sets, so
/// every timed run executes identical work.
fn prepare(workload: WorkloadConfig, blocks: usize, block_size: usize) -> (Analyzer, Vec<Block>) {
    let mut generator = WorkloadGenerator::new(workload);
    let analyzer = Analyzer::new(generator.registry().clone());
    let mut snapshot = Snapshot::from_entries(generator.genesis_entries());
    let mut out = Vec::with_capacity(blocks);
    for height in 1..=blocks as u64 {
        let txs = generator.block(block_size);
        let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        let next = snapshot.apply(&trace.final_writes);
        out.push(Block {
            txs,
            snapshot,
            env,
            expected: trace.final_writes,
        });
        snapshot = next;
    }
    (analyzer, out)
}

fn measure(
    workload: &'static str,
    executor: &'static str,
    threads: usize,
    blocks: &[Block],
    run: impl Fn(&Block) -> ParallelOutcome,
) -> ScalingPoint {
    // One warmup pass (untimed) so allocator and page-cache effects hit
    // both series equally.
    for block in blocks {
        let outcome = run(block);
        assert_eq!(
            outcome.final_writes, block.expected,
            "{executor}@{threads} diverged from serial on {workload}"
        );
    }
    let mut aborts = 0u64;
    let mut stats = dmvcc_core::ExecutorStats::default();
    let mut txs = 0u64;
    let start = Instant::now();
    for block in blocks {
        let outcome = run(block);
        txs += block.txs.len() as u64;
        aborts += outcome.aborts;
        stats.attempts += outcome.stats.attempts;
        stats.publishes += outcome.stats.publishes;
        stats.targeted_wakeups += outcome.stats.targeted_wakeups;
        stats.wakeups_avoided += outcome.stats.wakeups_avoided;
        stats.broadcast_wakeups += outcome.stats.broadcast_wakeups;
        stats.steals += outcome.stats.steals;
        stats.parks += outcome.stats.parks;
        stats.symbolic_bindings += outcome.stats.symbolic_bindings;
        stats.speculative_fallbacks += outcome.stats.speculative_fallbacks;
    }
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let wakeups = if stats.broadcast_wakeups > 0 {
        stats.broadcast_wakeups
    } else {
        stats.targeted_wakeups
    };
    ScalingPoint {
        executor,
        workload,
        threads,
        wall_ms,
        tx_per_s: txs as f64 / wall.as_secs_f64(),
        aborts,
        attempts: stats.attempts,
        publishes: stats.publishes,
        targeted_wakeups: stats.targeted_wakeups,
        wakeups_avoided: stats.wakeups_avoided,
        broadcast_wakeups: stats.broadcast_wakeups,
        steals: stats.steals,
        parks: stats.parks,
        symbolic_bindings: stats.symbolic_bindings,
        speculative_fallbacks: stats.speculative_fallbacks,
        symbolic_hit_rate: stats.symbolic_bindings as f64
            / (stats.symbolic_bindings + stats.speculative_fallbacks).max(1) as f64,
        wakeups_per_commit: wakeups as f64 / txs.max(1) as f64,
    }
}

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 3);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 200);
    let mut report = ScalingReport {
        blocks,
        block_size,
        host_threads: std::thread::available_parallelism().map_or(0, |n| n.get()),
        before: Vec::new(),
        after: Vec::new(),
    };

    println!(
        "{:<12} {:<16} {:>7} {:>10} {:>10} {:>8} {:>8} {:>10} {:>6}",
        "executor",
        "workload",
        "threads",
        "wall_ms",
        "tx/s",
        "aborts",
        "steals",
        "wake/commit",
        "sym%"
    );
    for (name, workload) in [
        ("realistic", WorkloadConfig::ethereum_mix(31)),
        ("high-contention", WorkloadConfig::high_contention(31)),
    ] {
        let (analyzer, chain) = prepare(workload, blocks, block_size);
        for threads in THREADS {
            let config = ParallelConfig {
                threads,
                max_attempts: 64,
            };
            let global = GlobalLockParallelExecutor::new(analyzer.clone(), config);
            let sharded = ParallelExecutor::new(analyzer.clone(), config);
            for (label, point) in [
                (
                    "global-lock",
                    measure(name, "global-lock", threads, &chain, |b| {
                        global.execute_block(&b.txs, &b.snapshot, &b.env)
                    }),
                ),
                (
                    "sharded",
                    measure(name, "sharded", threads, &chain, |b| {
                        sharded.execute_block(&b.txs, &b.snapshot, &b.env)
                    }),
                ),
            ] {
                println!(
                    "{:<12} {:<16} {:>7} {:>10.2} {:>10.0} {:>8} {:>8} {:>10.2} {:>5.0}%",
                    label,
                    name,
                    threads,
                    point.wall_ms,
                    point.tx_per_s,
                    point.aborts,
                    point.steals,
                    point.wakeups_per_commit,
                    point.symbolic_hit_rate * 100.0
                );
                if label == "global-lock" {
                    report.before.push(point);
                } else {
                    report.after.push(point);
                }
            }
        }
    }

    // The targeted-wakeup design must do strictly less waking per commit
    // than condvar broadcasts under contention.
    let hot_wakeups = |points: &[ScalingPoint]| {
        points
            .iter()
            .filter(|p| p.workload == "high-contention" && p.threads >= 4)
            .map(|p| p.wakeups_per_commit)
            .fold(0.0f64, f64::max)
    };
    let before_hot = hot_wakeups(&report.before);
    let after_hot = hot_wakeups(&report.after);
    println!(
        "\nhigh-contention wakeups/commit (worst at >=4 threads): \
         global-lock {before_hot:.2} vs sharded {after_hot:.2}"
    );
    assert!(
        after_hot <= before_hot,
        "targeted wakeups should not exceed broadcasts per commit"
    );

    dmvcc_bench::write_json("threaded_scaling", &report);
    println!("wrote bench-results/threaded_scaling.json");
}
