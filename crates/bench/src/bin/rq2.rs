//! RQ2 supplement: abort behaviour. The paper reports a DMVCC abort rate
//! below 2 % and "63 % fewer unnecessary aborts" than OCC. DMVCC's aborts
//! come from analysis imprecision, so this binary reports:
//!
//! 1. DMVCC vs OCC abort rates on both workloads with precise analysis,
//! 2. a sweep of injected analysis imprecision (`hide_fraction`) showing
//!    how DMVCC degrades gracefully toward OCC-like behaviour.

use dmvcc_analysis::AnalysisConfig;
use dmvcc_baselines::simulate_occ;
use dmvcc_bench::{env_usize, prepare_blocks, write_json};
use dmvcc_core::{simulate_dmvcc, DmvccConfig, SimReport};
use dmvcc_workload::WorkloadConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AbortPoint {
    workload: String,
    hide_fraction: f64,
    dmvcc_abort_rate: f64,
    occ_abort_rate: f64,
    dmvcc_aborts: u64,
    occ_aborts: u64,
    reduction_vs_occ: f64,
}

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 2);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 1_000);
    let threads = 32;
    let mut points = Vec::new();

    for (name, workload) in [
        ("realistic", WorkloadConfig::ethereum_mix(42)),
        ("high-contention", WorkloadConfig::high_contention(42)),
    ] {
        println!("\n== RQ2 — abort rates, {name} workload ==");
        println!(
            "{:>6}{:>18}{:>18}{:>14}",
            "hide", "DMVCC aborts", "OCC aborts", "reduction"
        );
        for hide in [0.0, 0.01, 0.05, 0.10, 0.25] {
            let prepared = prepare_blocks(
                &workload,
                blocks,
                block_size,
                AnalysisConfig {
                    hide_fraction: hide,
                    seed: 1,
                    ..AnalysisConfig::default()
                },
            );
            let mut dmvcc = SimReport::zero(threads);
            let mut occ = SimReport::zero(threads);
            for block in &prepared {
                dmvcc.accumulate(&simulate_dmvcc(
                    &block.trace,
                    &block.csags,
                    &DmvccConfig::new(threads),
                ));
                occ.accumulate(&simulate_occ(&block.trace, threads));
            }
            let reduction = if occ.aborts > 0 {
                1.0 - dmvcc.aborts as f64 / occ.aborts as f64
            } else {
                0.0
            };
            println!(
                "{:>5.0}%{:>11} ({:>4.1}%){:>11} ({:>4.1}%){:>13.0}%",
                hide * 100.0,
                dmvcc.aborts,
                dmvcc.abort_rate() * 100.0,
                occ.aborts,
                occ.abort_rate() * 100.0,
                reduction * 100.0,
            );
            points.push(AbortPoint {
                workload: name.to_string(),
                hide_fraction: hide,
                dmvcc_abort_rate: dmvcc.abort_rate(),
                occ_abort_rate: occ.abort_rate(),
                dmvcc_aborts: dmvcc.aborts,
                occ_aborts: occ.aborts,
                reduction_vs_occ: reduction,
            });
        }
    }
    println!("\npaper: DMVCC abort rate < 2%; 63% fewer unnecessary aborts than OCC");
    write_json("rq2", &points);
}
