//! Fig. 8(a): blockchain throughput speedup over the serial chain,
//! low-contention workload, execution-bound testnet (10 000-tx blocks,
//! 1 s mining — the paper's raised-gas-limit configuration).
//!
//! Paper reference @32 threads: ~19.79x for DMVCC, DAG and OCC similar.

use dmvcc_bench::{env_usize, write_json, THREAD_SWEEP};
use dmvcc_chain::{run_testnet, ChainConfig, SchedulerKind};
use dmvcc_workload::WorkloadConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct ThroughputPoint {
    scheduler: String,
    threads: usize,
    tps: f64,
    throughput_speedup: f64,
    aborts: u64,
}

fn run(workload: fn(u64) -> WorkloadConfig, name: &str, paper_note: &str) {
    let blocks = env_usize("DMVCC_BLOCKS", 2);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 5_000);
    let make = |scheduler, threads| ChainConfig {
        blocks,
        block_size,
        workload: workload(42),
        ..ChainConfig::execution_bound(scheduler, threads, 42)
    };
    let serial = run_testnet(&make(SchedulerKind::Serial, 1));
    assert!(serial.roots_consistent, "validator roots diverged");
    println!("\n== {name} ({blocks} x {block_size}-tx blocks, 1 s mining) ==");
    println!(
        "serial: {:.0} TPS ({:.1}s execution)",
        serial.tps, serial.execution_seconds
    );
    println!("{:>8}{:>16}{:>16}{:>16}", "threads", "DAG", "OCC", "DMVCC");
    let mut points = Vec::new();
    for threads in THREAD_SWEEP {
        print!("{threads:>8}");
        for scheduler in [SchedulerKind::Dag, SchedulerKind::Occ, SchedulerKind::Dmvcc] {
            let report = run_testnet(&make(scheduler, threads));
            assert!(report.roots_consistent, "validator roots diverged");
            assert_eq!(report.final_root, serial.final_root, "chain diverged");
            let speedup = report.tps / serial.tps;
            print!("{speedup:>14.2}x ");
            points.push(ThroughputPoint {
                scheduler: scheduler.label().to_string(),
                threads,
                tps: report.tps,
                throughput_speedup: speedup,
                aborts: report.aborts,
            });
        }
        println!();
    }
    println!("{paper_note}");
    write_json(name, &points);
}

fn main() {
    run(
        WorkloadConfig::ethereum_mix,
        "fig8a",
        "paper @32 threads: ~19.79x, all approaches similar (execution-bound)",
    );
}
