//! Contention sweep (ours): how the schedulers degrade as hot-access
//! probability rises from 0 to 90 % — locates the crossover region between
//! "everything parallelizes" and "conflict chains dominate" that separates
//! Fig. 7(a) from Fig. 7(b) in the paper.

use dmvcc_baselines::{simulate_dag, simulate_occ};
use dmvcc_bench::{env_usize, prepare_blocks, write_json};
use dmvcc_core::{simulate_dmvcc, DmvccConfig, SimReport};
use dmvcc_workload::WorkloadConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SweepPoint {
    hot_access_probability: f64,
    dag_speedup: f64,
    occ_speedup: f64,
    dmvcc_speedup: f64,
    dmvcc_utilization: f64,
    dag_utilization: f64,
}

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 2);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 1_000);
    let threads = 32;
    let mut points = Vec::new();
    println!(
        "{:>6}{:>10}{:>10}{:>10}{:>14}{:>12}",
        "hot%", "DAG", "OCC", "DMVCC", "DMVCC util", "DAG util"
    );
    for step in 0..=9 {
        let probability = step as f64 * 0.1;
        let workload = WorkloadConfig {
            hot_contract_fraction: 0.01,
            hot_access_probability: probability,
            hot_accounts: 16,
            hot_account_probability: probability,
            ..WorkloadConfig::ethereum_mix(42)
        };
        let prepared = prepare_blocks(&workload, blocks, block_size, Default::default());
        let mut dag = SimReport::zero(threads);
        let mut occ = SimReport::zero(threads);
        let mut dmvcc = SimReport::zero(threads);
        for block in &prepared {
            dag.accumulate(&simulate_dag(&block.trace, threads));
            occ.accumulate(&simulate_occ(&block.trace, threads));
            dmvcc.accumulate(&simulate_dmvcc(
                &block.trace,
                &block.csags,
                &DmvccConfig::new(threads),
            ));
        }
        println!(
            "{:>5.0}%{:>9.2}x{:>9.2}x{:>9.2}x{:>13.0}%{:>11.0}%",
            probability * 100.0,
            dag.speedup(),
            occ.speedup(),
            dmvcc.speedup(),
            dmvcc.utilization() * 100.0,
            dag.utilization() * 100.0,
        );
        points.push(SweepPoint {
            hot_access_probability: probability,
            dag_speedup: dag.speedup(),
            occ_speedup: occ.speedup(),
            dmvcc_speedup: dmvcc.speedup(),
            dmvcc_utilization: dmvcc.utilization(),
            dag_utilization: dag.utilization(),
        });
    }
    write_json("sweep", &points);
}
