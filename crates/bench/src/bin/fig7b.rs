//! Fig. 7(b): speedup under the skewed high-contention workload
//! (1 % hot contracts, 50 % hot-access probability).
//!
//! Paper reference @32 threads: DMVCC 13.73x, OCC 3.48x, DAG 3.05x.

use dmvcc_bench::{
    env_usize, prepare_blocks, print_speedup_table, speedup_series, write_json, THREAD_SWEEP,
};
use dmvcc_workload::WorkloadConfig;

fn main() {
    let blocks = env_usize("DMVCC_BLOCKS", 4);
    let block_size = env_usize("DMVCC_BLOCK_SIZE", 1_000);
    let prepared = prepare_blocks(
        &WorkloadConfig::high_contention(42),
        blocks,
        block_size,
        Default::default(),
    );
    let points = speedup_series(&prepared, &THREAD_SWEEP);
    print_speedup_table(
        &format!(
            "Fig. 7(b) — speedup, high-contention workload ({blocks} x {block_size}-tx blocks)"
        ),
        &points,
    );
    println!("paper @32 threads: DMVCC 13.73x | OCC 3.48x | DAG 3.05x");
    write_json("fig7b", &points);
}
