//! Quick shape sanity check (not a paper figure): speedups of all four
//! schedulers at a few thread counts on both workloads.
use dmvcc_analysis::Analyzer;
use dmvcc_chain::{schedule_block, SchedulerKind};
use dmvcc_core::{build_csags, execute_block_serial};
use dmvcc_state::StateDb;
use dmvcc_vm::BlockEnv;
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    for (name, workload) in [
        ("low-contention", WorkloadConfig::ethereum_mix(42)),
        ("high-contention", WorkloadConfig::high_contention(42)),
    ] {
        let mut generator = WorkloadGenerator::new(workload);
        let analyzer = Analyzer::new(generator.registry().clone());
        let db = StateDb::with_genesis(generator.genesis_entries());
        let snapshot = db.latest().clone();
        let env = BlockEnv::new(1, 1_700_000_000);
        let txs = generator.block(1000);
        let csags = build_csags(&txs, &snapshot, &analyzer, &env);
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        println!("== {name} ==");
        for threads in [1usize, 2, 4, 8, 16, 32] {
            print!("threads={threads:>2}");
            for s in [SchedulerKind::Dag, SchedulerKind::Occ, SchedulerKind::Dmvcc] {
                let r = schedule_block(s, &trace, &csags, threads);
                print!("  {}={:6.2}x (ab {})", s.label(), r.speedup(), r.aborts);
            }
            println!();
        }
    }
}
