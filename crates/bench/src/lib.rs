//! Shared harness for the paper-figure benchmark binaries.
//!
//! Each binary regenerates one table/figure of the paper's evaluation:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig7a` | Fig. 7(a): speedup vs threads, realistic workload |
//! | `fig7b` | Fig. 7(b): speedup vs threads, high contention |
//! | `fig8a` | Fig. 8(a): testnet throughput speedup, low contention |
//! | `fig8b` | Fig. 8(b): testnet throughput speedup, high contention |
//! | `rq1`   | RQ1: Merkle-root equality of parallel vs serial |
//! | `rq2`   | RQ2: abort rates, DMVCC vs OCC, + analysis-accuracy sweep |
//! | `ablation` | feature ablations (early write, commutative, versioning, DAG granularity) |
//!
//! Every binary prints a human-readable table and writes a JSON artifact
//! under `bench-results/` for `EXPERIMENTS.md`. Scale knobs come from the
//! environment so CI can run small while full runs match the paper:
//! `DMVCC_BLOCKS` (blocks per experiment), `DMVCC_BLOCK_SIZE`.

#![warn(missing_docs)]

use std::io::Write as _;

use serde::Serialize;

use dmvcc_analysis::{AnalysisConfig, Analyzer};
use dmvcc_baselines::{simulate_dag, simulate_dag_coarse, simulate_occ};
use dmvcc_core::{
    build_csags, execute_block_serial, simulate_dmvcc, BlockTrace, DmvccConfig, SimReport,
};
use dmvcc_state::Snapshot;
use dmvcc_vm::BlockEnv;
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

/// Thread counts evaluated by the figures (the paper sweeps 1–32).
pub const THREAD_SWEEP: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Reads a scale knob from the environment.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One data point of a speedup figure.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupPoint {
    /// Scheduler label ("DMVCC", "OCC", "DAG", ...).
    pub scheduler: String,
    /// Thread count.
    pub threads: usize,
    /// Speedup over serial execution (averaged over blocks).
    pub speedup: f64,
    /// Abort rate over all attempts.
    pub abort_rate: f64,
    /// Total aborts.
    pub aborts: u64,
}

/// A fully prepared block: the transactions' reference trace and C-SAGs.
pub struct PreparedBlock {
    /// The reference (serial) trace.
    pub trace: BlockTrace,
    /// One C-SAG per transaction.
    pub csags: Vec<dmvcc_analysis::CSag>,
}

/// Generates `blocks` prepared blocks of `block_size` transactions under
/// `workload`, committing each block's writes so later blocks run against
/// evolved state (the paper repacks the mainnet stream into consecutive
/// 1 000-tx blocks).
pub fn prepare_blocks(
    workload: &WorkloadConfig,
    blocks: usize,
    block_size: usize,
    analysis: AnalysisConfig,
) -> Vec<PreparedBlock> {
    let mut generator = WorkloadGenerator::new(workload.clone());
    let analyzer = Analyzer::with_config(generator.registry().clone(), analysis);
    let mut snapshot = Snapshot::from_entries(generator.genesis_entries());
    let mut out = Vec::with_capacity(blocks);
    for height in 1..=blocks as u64 {
        let txs = generator.block(block_size);
        let env = BlockEnv::new(height, 1_700_000_000 + height * 12);
        let csags = build_csags(&txs, &snapshot, &analyzer, &env);
        let trace = execute_block_serial(&txs, &snapshot, &analyzer, &env);
        snapshot = snapshot.apply(&trace.final_writes);
        out.push(PreparedBlock { trace, csags });
    }
    out
}

/// A boxed per-block scheduler runner.
type SchedulerRun = Box<dyn Fn(&PreparedBlock) -> SimReport>;

/// The scheduler series plotted by Fig. 7/Fig. 8.
pub fn speedup_series(prepared: &[PreparedBlock], threads_sweep: &[usize]) -> Vec<SpeedupPoint> {
    let mut points = Vec::new();
    for &threads in threads_sweep {
        let mut series: Vec<(&str, SchedulerRun)> = vec![
            (
                "DAG",
                Box::new(move |p: &PreparedBlock| simulate_dag(&p.trace, threads)),
            ),
            (
                "OCC",
                Box::new(move |p: &PreparedBlock| simulate_occ(&p.trace, threads)),
            ),
            (
                "DMVCC",
                Box::new(move |p: &PreparedBlock| {
                    simulate_dmvcc(&p.trace, &p.csags, &DmvccConfig::new(threads))
                }),
            ),
        ];
        for (label, run) in series.drain(..) {
            let mut total = SimReport::zero(threads);
            for block in prepared {
                total.accumulate(&run(block));
            }
            points.push(SpeedupPoint {
                scheduler: label.to_string(),
                threads,
                speedup: total.speedup(),
                abort_rate: total.abort_rate(),
                aborts: total.aborts,
            });
        }
    }
    points
}

/// Ablation series: DMVCC with individual features disabled, plus the
/// coarse-grained DAG.
pub fn ablation_series(prepared: &[PreparedBlock], threads_sweep: &[usize]) -> Vec<SpeedupPoint> {
    type Variant = (&'static str, fn(usize) -> DmvccConfig);
    let variants: [Variant; 4] = [
        ("DMVCC", DmvccConfig::new),
        ("DMVCC -early-write", |t| DmvccConfig {
            early_write: false,
            ..DmvccConfig::new(t)
        }),
        ("DMVCC -commutative", |t| DmvccConfig {
            commutative: false,
            ..DmvccConfig::new(t)
        }),
        ("DMVCC -versioning", |t| DmvccConfig {
            write_versioning: false,
            ..DmvccConfig::new(t)
        }),
    ];
    let mut points = Vec::new();
    for &threads in threads_sweep {
        for (label, make) in variants {
            let config = make(threads);
            let mut total = SimReport::zero(threads);
            for block in prepared {
                total.accumulate(&simulate_dmvcc(&block.trace, &block.csags, &config));
            }
            points.push(SpeedupPoint {
                scheduler: label.to_string(),
                threads,
                speedup: total.speedup(),
                abort_rate: total.abort_rate(),
                aborts: total.aborts,
            });
        }
        let mut coarse = SimReport::zero(threads);
        for block in prepared {
            coarse.accumulate(&simulate_dag_coarse(&block.trace, threads));
        }
        points.push(SpeedupPoint {
            scheduler: "DAG (contract-level)".to_string(),
            threads,
            speedup: coarse.speedup(),
            abort_rate: 0.0,
            aborts: 0,
        });
    }
    points
}

/// Prints a speedup table grouped by thread count.
pub fn print_speedup_table(title: &str, points: &[SpeedupPoint]) {
    println!("\n== {title} ==");
    let mut schedulers: Vec<&str> = Vec::new();
    for p in points {
        if !schedulers.contains(&p.scheduler.as_str()) {
            schedulers.push(&p.scheduler);
        }
    }
    print!("{:>8}", "threads");
    for s in &schedulers {
        print!("{s:>22}");
    }
    println!();
    let mut threads_seen: Vec<usize> = Vec::new();
    for p in points {
        if !threads_seen.contains(&p.threads) {
            threads_seen.push(p.threads);
        }
    }
    for &t in &threads_seen {
        print!("{t:>8}");
        for s in &schedulers {
            if let Some(p) = points.iter().find(|p| p.threads == t && p.scheduler == *s) {
                print!("{:>15.2}x ({:>3.0}%)", p.speedup, p.abort_rate * 100.0);
            } else {
                print!("{:>22}", "-");
            }
        }
        println!();
    }
    println!("(percentages are abort rates)");
}

/// Writes a JSON artifact under `bench-results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut file) = std::fs::File::create(&path) {
        if let Ok(text) = serde_json::to_string_pretty(value) {
            let _ = file.write_all(text.as_bytes());
            println!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_experiment_end_to_end() {
        let workload = WorkloadConfig {
            accounts: 60,
            token_contracts: 4,
            amm_contracts: 2,
            nft_contracts: 1,
            counter_contracts: 1,
            ballot_contracts: 1,
            fig1_contracts: 1,
            ..WorkloadConfig::ethereum_mix(3)
        };
        let prepared = prepare_blocks(&workload, 2, 30, AnalysisConfig::default());
        assert_eq!(prepared.len(), 2);
        let points = speedup_series(&prepared, &[1, 4]);
        assert_eq!(points.len(), 6);
        // Serial sanity: one thread ⇒ no scheduler beats 1.0 by definition.
        for p in points.iter().filter(|p| p.threads == 1) {
            assert!(p.speedup <= 1.0 + 1e-9, "{p:?}");
        }
        // Four threads must help somebody.
        assert!(points
            .iter()
            .filter(|p| p.threads == 4)
            .any(|p| p.speedup > 1.0));
    }

    #[test]
    fn ablation_variants_cover_features() {
        let workload = WorkloadConfig {
            accounts: 60,
            token_contracts: 4,
            amm_contracts: 2,
            nft_contracts: 1,
            counter_contracts: 1,
            ballot_contracts: 1,
            fig1_contracts: 1,
            ..WorkloadConfig::high_contention(3)
        };
        let prepared = prepare_blocks(&workload, 1, 40, AnalysisConfig::default());
        let points = ablation_series(&prepared, &[8]);
        assert_eq!(points.len(), 5);
        let full = points.iter().find(|p| p.scheduler == "DMVCC").unwrap();
        for p in &points {
            assert!(
                p.speedup <= full.speedup + 1e-9,
                "{} beat full DMVCC",
                p.scheduler
            );
        }
    }

    #[test]
    fn env_knob_parsing() {
        assert_eq!(env_usize("DMVCC_NONEXISTENT_KNOB_XYZ", 7), 7);
    }
}
