//! The fault-injection plane: seeded perturbations of the executor's
//! *inputs* (C-SAG predictions, gas limits), complementing the virtual
//! scheduler's perturbation of its *decisions*.
//!
//! Every fault here forces one of the paper's failure modes:
//!
//! - **Mispredicted SAG keys** — predicted reads/writes dropped from the
//!   C-SAG (the access surfaces at runtime as a dynamic insertion) and
//!   phantom predicted writes added (the version is never materialized and
//!   must be dropped at finalization, unblocking its readers).
//! - **Stale-snapshot reads** — the fuzz driver builds C-SAGs against an
//!   older snapshot than the one executed on (the mempool scenario), see
//!   [`crate::fuzz`].
//! - **Out-of-gas after a release point** — the *gas squeeze*: a
//!   transaction's gas limit is reset to one unit below its serial
//!   consumption, so it deterministically runs out of gas at the very end
//!   of its path — after every release point and write it would have
//!   performed. Combined with a forced release gate this exercises the
//!   rollback of already-published versions.
//! - **Abort storms** — injected by the scheduler
//!   ([`crate::VirtualScheduler`]), not here, since they are decisions of
//!   the running executor rather than properties of the block.
//!
//! All faults are applied identically to every executor under test *and*
//! to the serial oracle's inputs, so the equivalence obligation is
//! unchanged: a correct executor absorbs any such block without diverging
//! from serial execution.

use std::collections::BTreeSet;

use dmvcc_analysis::CSag;
use dmvcc_core::BlockTrace;
use dmvcc_vm::{ExecStatus, Transaction, INTRINSIC_GAS};

// Site identifiers for the fault plane's decision streams (disjoint from
// the scheduler's sites by construction — different consumer, same mixer).
const SITE_DROP_READ: u64 = 0xF1;
const SITE_DROP_WRITE: u64 = 0xF2;
const SITE_PHANTOM: u64 = 0xF3;
const SITE_SQUEEZE: u64 = 0xF4;

/// A deliberately-introduced executor bug for mutation testing: the fuzz
/// driver must find a diverging seed when one is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// No mutation: the executors are correct and no seed may diverge.
    #[default]
    None,
    /// Breaks the release-point gas bound (every gate passes) *and* the
    /// rollback that the bound makes unnecessary in correct code: published
    /// versions of deterministically-aborted transactions are leaked into
    /// the final state. This models an implementation that trusts
    /// "published ⇒ cannot abort" while the guarding gate is broken — the
    /// gate alone cannot diverge because the abort cascade self-heals.
    SkipReleaseGasBound,
}

impl Mutation {
    /// Parses the CLI spelling of a mutation.
    pub fn parse(name: &str) -> Option<Mutation> {
        match name {
            "none" => Some(Mutation::None),
            "skip-release-gas-bound" => Some(Mutation::SkipReleaseGasBound),
            _ => None,
        }
    }
}

/// Seeded input-fault plan. Probabilities are parts per million; every
/// decision is a pure function of `(seed, site, coordinates)` so a replay
/// perturbs the same predictions of the same transactions.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the fault decision streams.
    pub seed: u64,
    /// Probability of dropping each predicted read key.
    pub drop_read_ppm: u32,
    /// Probability of dropping each predicted write/add key.
    pub drop_write_ppm: u32,
    /// Probability, per transaction, of adding one phantom predicted write
    /// taken from another transaction's write set.
    pub phantom_ppm: u32,
    /// Probability, per successful transaction, of the gas squeeze.
    pub gas_squeeze_ppm: u32,
}

impl FaultPlan {
    /// No input faults.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_read_ppm: 0,
            drop_write_ppm: 0,
            phantom_ppm: 0,
            gas_squeeze_ppm: 0,
        }
    }

    /// The fuzzing default: a scattering of every fault kind.
    pub fn standard(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_read_ppm: 60_000,
            drop_write_ppm: 60_000,
            phantom_ppm: 150_000,
            gas_squeeze_ppm: 150_000,
        }
    }

    fn mix(&self, site: u64, a: u64, b: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add(site.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn roll(&self, site: u64, a: u64, b: u64, ppm: u32) -> bool {
        ppm > 0 && self.mix(site, a, b) % 1_000_000 < u64::from(ppm)
    }

    /// Perturbs the predictions in place: drops predicted keys (surfacing
    /// as runtime mispredictions) and grafts phantom predicted writes from
    /// other transactions' write sets (never materialized, dropped at
    /// finalization). Key coordinates come from the key's position in the
    /// *sorted* set, so perturbation is deterministic per seed.
    pub fn perturb_csags(&self, csags: &mut [CSag]) {
        let all_writes: Vec<BTreeSet<_>> = csags.iter().map(|c| c.writes.clone()).collect();
        for (tx, csag) in csags.iter_mut().enumerate() {
            let tx_coord = tx as u64;
            let reads: Vec<_> = csag.reads.iter().copied().collect();
            for (i, key) in reads.iter().enumerate() {
                if self.roll(SITE_DROP_READ, tx_coord, i as u64, self.drop_read_ppm) {
                    csag.reads.remove(key);
                }
            }
            let writes: Vec<_> = csag.writes.iter().copied().collect();
            for (i, key) in writes.iter().enumerate() {
                if self.roll(SITE_DROP_WRITE, tx_coord, i as u64, self.drop_write_ppm) {
                    csag.writes.remove(key);
                    // Keep the publish schedule consistent with the
                    // prediction: a dropped key must not be published early.
                    csag.last_write_pc.remove(key);
                }
            }
            if self.roll(SITE_PHANTOM, tx_coord, 0, self.phantom_ppm) {
                // Steal a write key from a pseudo-randomly chosen other
                // transaction; skip keys this transaction touches itself so
                // the phantom is a pure misprediction, not a shadowed real
                // access.
                let donor = self.mix(SITE_PHANTOM, tx_coord, 1) as usize % all_writes.len();
                if let Some(key) = all_writes[donor].iter().find(|k| {
                    !csag.reads.contains(*k) && !csag.writes.contains(*k) && !csag.adds.contains(*k)
                }) {
                    csag.writes.insert(*key);
                    // No `last_write_pc` entry: the phantom is never
                    // publishable and is dropped when the tx finalizes.
                }
            }
        }
    }

    /// The gas squeeze: for a seeded subset of the successful transactions,
    /// resets the gas limit to one unit below the serial consumption so the
    /// transaction deterministically exhausts gas after its last write.
    /// Returns `true` if any limit changed (the caller must re-run the
    /// serial oracle, since the squeezed block *is* the block under test).
    pub fn squeeze_gas(&self, txs: &mut [Transaction], trace: &BlockTrace) -> bool {
        let mut changed = false;
        for (i, tx) in txs.iter_mut().enumerate() {
            let t = &trace.txs[i];
            if t.status != ExecStatus::Success || t.gas_used <= INTRINSIC_GAS + 1 {
                continue;
            }
            if self.roll(SITE_SQUEEZE, i as u64, 0, self.gas_squeeze_ppm) {
                tx.env.gas_limit = t.gas_used - 1;
                changed = true;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_parsing() {
        assert_eq!(Mutation::parse("none"), Some(Mutation::None));
        assert_eq!(
            Mutation::parse("skip-release-gas-bound"),
            Some(Mutation::SkipReleaseGasBound)
        );
        assert_eq!(Mutation::parse("bogus"), None);
    }

    #[test]
    fn perturbation_is_deterministic_per_seed() {
        use dmvcc_primitives::{Address, U256};
        use dmvcc_state::StateKey;

        let base: Vec<CSag> = (0..8)
            .map(|i| {
                let mut c = CSag::default();
                for j in 0..6u64 {
                    let key = StateKey::storage(Address::from_u64(i), U256::from(j));
                    c.reads.insert(key);
                    c.writes.insert(key);
                    c.last_write_pc.insert(key, j as usize);
                }
                c
            })
            .collect();
        let plan = FaultPlan::standard(99);
        let mut a = base.clone();
        let mut b = base.clone();
        plan.perturb_csags(&mut a);
        plan.perturb_csags(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.reads, y.reads);
            assert_eq!(x.writes, y.writes);
        }
        // And the plan actually perturbs something at standard rates.
        let untouched = a
            .iter()
            .zip(&base)
            .all(|(x, y)| x.reads == y.reads && x.writes == y.writes);
        assert!(!untouched, "standard plan left every C-SAG untouched");
        // Dropped write keys must also leave the publish schedule.
        for c in &a {
            for key in c.last_write_pc.keys() {
                assert!(
                    c.writes.contains(key) || c.adds.contains(key),
                    "last_write_pc retains a dropped key"
                );
            }
        }
    }
}
