//! The seeded virtual scheduler: a [`SchedHook`] whose every decision is a
//! pure function of `(seed, site, a, b)`.
//!
//! Real thread interleavings cannot be replayed without a user-level
//! scheduler, so determinism is obtained one level up: each decision —
//! preempt here? delay this publish? force this release gate? — is computed
//! by hashing the seed with a *site identifier* and the stable coordinates
//! of the event (transaction index, attempt number, pc). Two runs with the
//! same seed therefore apply the *same perturbations and faults to the same
//! transactions*, regardless of how the OS happens to schedule the worker
//! threads. Combined with the executor's convergence guarantee (the final
//! write set is a pure function of the block, not the interleaving), this
//! makes any divergence a seed-replayable artifact.
//!
//! Schedule perturbation itself is just a burst of [`std::thread::yield_now`]
//! calls at the decision point: any interleaving that produces is one the OS
//! scheduler could have produced on its own, so perturbation can never make
//! a correct executor wrong — it only walks the executor into rarer corners
//! of the interleaving space.

use std::sync::atomic::{AtomicU64, Ordering};

use dmvcc_core::SchedHook;
use dmvcc_state::StateKey;

// Site identifiers: every decision point hashes a distinct constant so the
// per-site decision streams are independent.
const SITE_DEQUEUE: u64 = 0xD1;
const SITE_PUBLISH: u64 = 0xD2;
const SITE_SHARD: u64 = 0xD3;
const SITE_INJECT: u64 = 0xD4;
const SITE_RELEASE: u64 = 0xD5;
const SITE_VALIDATE: u64 = 0xD6;
const SITE_STM_READ: u64 = 0xD7;

/// Knobs of the virtual scheduler. All probabilities are in parts per
/// million of the corresponding decision stream.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability of a yield burst when a worker dequeues a transaction
    /// (random preemption).
    pub preempt_ppm: u32,
    /// Probability of a yield burst right before a version becomes visible
    /// (delayed publish).
    pub delay_publish_ppm: u32,
    /// Probability of a yield burst *inside* a shard critical section
    /// (forced shard-lock contention; sharded executor only).
    pub shard_stall_ppm: u32,
    /// Probability of forcibly aborting a dequeued attempt (abort storm).
    pub inject_abort_ppm: u32,
    /// Injection stops above this attempt number, so storms stay bounded
    /// well below the executor's `max_attempts` guard.
    pub inject_abort_max_attempt: u32,
    /// Probability (per transaction) of forcing its release gates open —
    /// the paper's out-of-gas-after-release-point failure mode.
    pub force_release_ppm: u32,
    /// Mutation testing only: transactions whose gate was forced also skip
    /// rollback of published versions on deterministic abort, modeling code
    /// that trusts "published ⇒ cannot abort" while the gate is broken.
    pub skip_rollback: bool,
}

impl SchedConfig {
    /// No perturbation, no faults: the hook only counts events.
    pub fn quiet(seed: u64) -> Self {
        SchedConfig {
            seed,
            preempt_ppm: 0,
            delay_publish_ppm: 0,
            shard_stall_ppm: 0,
            inject_abort_ppm: 0,
            inject_abort_max_attempt: 0,
            force_release_ppm: 0,
            skip_rollback: false,
        }
    }

    /// The fuzzing default: frequent preemption, occasional delayed
    /// publishes and shard stalls, a mild abort storm, and a scattering of
    /// forced releases.
    pub fn stormy(seed: u64) -> Self {
        SchedConfig {
            seed,
            preempt_ppm: 250_000,
            delay_publish_ppm: 150_000,
            shard_stall_ppm: 100_000,
            inject_abort_ppm: 120_000,
            inject_abort_max_attempt: 3,
            force_release_ppm: 200_000,
            skip_rollback: false,
        }
    }
}

/// Event counters, filled concurrently by the executor's worker threads.
#[derive(Debug, Default)]
pub struct SchedStats {
    /// Dequeues observed.
    pub dequeues: AtomicU64,
    /// Publishes observed.
    pub publishes: AtomicU64,
    /// Parks observed (blocked reads and idle workers).
    pub parks: AtomicU64,
    /// Wakes observed.
    pub wakes: AtomicU64,
    /// Abort-cascade victims observed.
    pub aborts: AtomicU64,
    /// Commit decision points observed.
    pub commits: AtomicU64,
    /// Shard critical sections entered.
    pub shard_locks: AtomicU64,
    /// Preemption yield bursts taken.
    pub preemptions: AtomicU64,
    /// Aborts injected by [`SchedHook::inject_abort`].
    pub injected_aborts: AtomicU64,
    /// Release gates forced open.
    pub forced_releases: AtomicU64,
    /// Multi-version reads observed (STM executor only).
    pub stm_reads: AtomicU64,
    /// Multi-version reads that spun past an ESTIMATE marker.
    pub stm_blocked_reads: AtomicU64,
    /// Commit-turn validations observed (STM executor only).
    pub validations: AtomicU64,
    /// Validations that failed and forced a re-execution.
    pub failed_validations: AtomicU64,
}

/// The seeded scheduler. Install with
/// [`dmvcc_core::ParallelExecutor::with_hook`] (and the global-lock
/// equivalent); one instance per executor run.
#[derive(Debug)]
pub struct VirtualScheduler {
    config: SchedConfig,
    /// Event counters (public so drivers can print them after a run).
    pub stats: SchedStats,
}

impl VirtualScheduler {
    /// A scheduler over `config`.
    pub fn new(config: SchedConfig) -> Self {
        VirtualScheduler {
            config,
            stats: SchedStats::default(),
        }
    }

    /// The decision mixer (splitmix64 finalizer over seed ⊕ site ⊕ coords).
    fn mix(&self, site: u64, a: u64, b: u64) -> u64 {
        let mut x = self
            .config
            .seed
            .wrapping_add(site.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// `true` with probability `ppm / 1e6`, deterministically in the
    /// coordinates.
    fn roll(&self, site: u64, a: u64, b: u64, ppm: u32) -> bool {
        ppm > 0 && self.mix(site, a, b) % 1_000_000 < u64::from(ppm)
    }

    /// A short yield burst (1–4 yields, length derived from the same roll).
    fn stall(&self, entropy: u64) {
        for _ in 0..(entropy % 4) + 1 {
            std::thread::yield_now();
        }
    }

    /// `true` when this transaction's release gates are forced open.
    pub fn release_forced(&self, tx: usize) -> bool {
        self.roll(SITE_RELEASE, tx as u64, 0, self.config.force_release_ppm)
    }
}

impl SchedHook for VirtualScheduler {
    fn on_dequeue(&self, tx: usize, attempt: u32) {
        self.stats.dequeues.fetch_add(1, Ordering::Relaxed);
        if self.roll(
            SITE_DEQUEUE,
            tx as u64,
            u64::from(attempt),
            self.config.preempt_ppm,
        ) {
            self.stats.preemptions.fetch_add(1, Ordering::Relaxed);
            self.stall(self.mix(SITE_DEQUEUE, tx as u64, u64::from(attempt)));
        }
    }

    fn on_publish(&self, tx: usize, key: &StateKey, _delta: bool) {
        self.stats.publishes.fetch_add(1, Ordering::Relaxed);
        let coord = key_coord(key);
        if self.roll(
            SITE_PUBLISH,
            tx as u64,
            coord,
            self.config.delay_publish_ppm,
        ) {
            self.stall(self.mix(SITE_PUBLISH, tx as u64, coord));
        }
    }

    fn on_park(&self, _tx: Option<usize>) {
        self.stats.parks.fetch_add(1, Ordering::Relaxed);
    }

    fn on_wake(&self, _tx: Option<usize>) {
        self.stats.wakes.fetch_add(1, Ordering::Relaxed);
    }

    fn on_abort(&self, _root: usize, _victim: usize) {
        self.stats.aborts.fetch_add(1, Ordering::Relaxed);
    }

    fn on_commit(&self, _tx: usize) {
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
    }

    fn on_shard_lock(&self, index: usize) {
        self.stats.shard_locks.fetch_add(1, Ordering::Relaxed);
        // The stall runs with the shard lock held on purpose: that is the
        // documented way to force shard-lock contention.
        if self.roll(SITE_SHARD, index as u64, 0, self.config.shard_stall_ppm) {
            self.stall(self.mix(SITE_SHARD, index as u64, 1));
        }
    }

    fn on_stm_read(&self, tx: usize, key: &StateKey, blocked: bool) {
        self.stats.stm_reads.fetch_add(1, Ordering::Relaxed);
        if blocked {
            self.stats.stm_blocked_reads.fetch_add(1, Ordering::Relaxed);
        }
        // Reuse the delayed-publish probability: stalling a resolved read
        // widens the window in which the observed value goes stale before
        // validation — the STM analogue of a delayed publish.
        let coord = key_coord(key);
        if self.roll(
            SITE_STM_READ,
            tx as u64,
            coord,
            self.config.delay_publish_ppm,
        ) {
            self.stall(self.mix(SITE_STM_READ, tx as u64, coord));
        }
    }

    fn on_validate(&self, tx: usize, attempt: u32, ok: bool) {
        self.stats.validations.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.stats
                .failed_validations
                .fetch_add(1, Ordering::Relaxed);
        }
        // Reuse the preemption probability: this stall runs with the commit
        // lock held, serializing the commit tail while optimistic workers
        // race ahead — the schedule corner where stale reads accumulate.
        if self.roll(
            SITE_VALIDATE,
            tx as u64,
            u64::from(attempt),
            self.config.preempt_ppm,
        ) {
            self.stats.preemptions.fetch_add(1, Ordering::Relaxed);
            self.stall(self.mix(SITE_VALIDATE, tx as u64, u64::from(attempt)));
        }
    }

    fn release_gate(&self, tx: usize, _pc: usize, gas_left: u64, bound: u64) -> bool {
        if self.release_forced(tx) {
            self.stats.forced_releases.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        gas_left >= bound
    }

    fn inject_abort(&self, tx: usize, attempt: u32) -> bool {
        if attempt > self.config.inject_abort_max_attempt {
            return false;
        }
        let inject = self.roll(
            SITE_INJECT,
            tx as u64,
            u64::from(attempt),
            self.config.inject_abort_ppm,
        );
        if inject {
            self.stats.injected_aborts.fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    fn skip_rollback(&self, tx: usize, _key: &StateKey) -> bool {
        // Leak exactly the transactions whose gate was forced: the modeled
        // bug trusts the release invariant while the gate is broken.
        self.config.skip_rollback && self.release_forced(tx)
    }
}

/// Stable per-key coordinate for decision mixing (independent of run-time
/// addresses, so replays roll identically).
fn key_coord(key: &StateKey) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;

    #[test]
    fn decisions_are_pure_in_seed_and_coordinates() {
        let a = VirtualScheduler::new(SchedConfig::stormy(42));
        let b = VirtualScheduler::new(SchedConfig::stormy(42));
        let c = VirtualScheduler::new(SchedConfig::stormy(43));
        let mut differs = false;
        for tx in 0..64 {
            for attempt in 1..4 {
                assert_eq!(a.inject_abort(tx, attempt), b.inject_abort(tx, attempt));
                differs |= a.inject_abort(tx, attempt) != c.inject_abort(tx, attempt);
            }
            assert_eq!(a.release_forced(tx), b.release_forced(tx));
            differs |= a.release_forced(tx) != c.release_forced(tx);
        }
        assert!(differs, "seeds 42 and 43 produced identical decisions");
    }

    #[test]
    fn quiet_config_matches_production_rules() {
        let hook = VirtualScheduler::new(SchedConfig::quiet(7));
        let key = StateKey::balance(Address::from_u64(9));
        for tx in 0..32 {
            assert!(!hook.inject_abort(tx, 1));
            assert!(!hook.skip_rollback(tx, &key));
            assert!(hook.release_gate(tx, 5, 100, 100));
            assert!(!hook.release_gate(tx, 5, 99, 100));
        }
    }

    #[test]
    fn injection_respects_attempt_cap() {
        let config = SchedConfig {
            inject_abort_ppm: 1_000_000,
            inject_abort_max_attempt: 3,
            ..SchedConfig::stormy(1)
        };
        let hook = VirtualScheduler::new(config);
        assert!(hook.inject_abort(0, 1));
        assert!(hook.inject_abort(0, 3));
        assert!(!hook.inject_abort(0, 4));
        assert!(!hook.inject_abort(0, 64));
    }
}
