//! The differential fuzz driver: one seed → one perturbed block → every
//! executor must agree with the serial oracle.
//!
//! For each seed the driver (a) generates a workload block, (b) applies the
//! seeded [`FaultPlan`] (gas squeezes, C-SAG mispredictions, optionally
//! stale-snapshot predictions), (c) runs the serial oracle, both threaded
//! executors under a seeded [`VirtualScheduler`], and the virtual-time
//! simulator, and (d) reports any disagreement as a [`Divergence`] that
//! carries everything needed to replay it: the seed, the (possibly shrunk)
//! block size, and the thread count.
//!
//! Shrinking exploits a structural property of the workload generator:
//! `block(n)` draws transactions sequentially, so the block of size `s < n`
//! is a strict prefix of the block of size `n` for the same seed. A
//! divergence is therefore minimized by re-running the same seed at smaller
//! sizes, and `(seed, size)` fully identifies the repro.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmvcc_analysis::{AnalysisConfig, Analyzer, RefinementMode};
use dmvcc_core::{
    build_csags, execute_block_serial, simulate_dmvcc, BlockTrace, DmvccConfig,
    GlobalLockParallelExecutor, HybridExecutor, ParallelConfig, ParallelExecutor, ParallelOutcome,
    SchedulerPolicy, StmExecutor,
};
use dmvcc_state::{LsmBackend, LsmOptions, MemBackend, Snapshot, StateBackend, StateDb, WriteSet};
use dmvcc_vm::{BlockEnv, Transaction};
use dmvcc_workload::{WorkloadConfig, WorkloadGenerator};

use crate::faults::{FaultPlan, Mutation};
use crate::sched::{SchedConfig, VirtualScheduler};

/// Workload shape under fuzz.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The paper's mainnet category mix.
    EthereumMix,
    /// The skewed hot-contract variant (§V-B high contention).
    HighContention,
    /// Traffic dominated by summarizable credit loops (airdrop and
    /// batch-transfer contracts) — exercises bind-time loop unrolling.
    LoopHeavy,
    /// Traffic dominated by cross-contract calls (aggregator routers,
    /// flash mints, oracle fanout) — exercises interprocedural binding.
    CallHeavy,
    /// Traffic dominated by NFT drop mints (delegatecalled royalty
    /// payouts, value-transferring creator credits through a registry
    /// slot, staticcalled floor checks) — exercises the full call family.
    NftMintRush,
}

impl Profile {
    /// Parses the CLI spelling of a profile.
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "ethereum" => Some(Profile::EthereumMix),
            "hot" => Some(Profile::HighContention),
            "loop" => Some(Profile::LoopHeavy),
            "call" => Some(Profile::CallHeavy),
            "nft" => Some(Profile::NftMintRush),
            _ => None,
        }
    }

    /// The workload config for one fuzz case: the named contention profile
    /// scaled down so a single case runs in milliseconds (the fuzzer's
    /// throughput *is* its coverage).
    fn config(self, seed: u64) -> WorkloadConfig {
        let base = match self {
            Profile::EthereumMix => WorkloadConfig::ethereum_mix(seed),
            Profile::HighContention => WorkloadConfig::high_contention(seed),
            Profile::LoopHeavy => WorkloadConfig::loop_heavy(seed),
            Profile::CallHeavy => WorkloadConfig::call_heavy(seed),
            Profile::NftMintRush => WorkloadConfig::nft_mint_rush(seed),
        };
        let loopy = |n: usize| match self {
            Profile::LoopHeavy => n,
            _ => 1,
        };
        let cally = |n: usize| match self {
            Profile::CallHeavy => n,
            _ => 1,
        };
        let drops = match self {
            Profile::NftMintRush => 3,
            // One drop rides along in the call mix so the call family is
            // always under fuzz, even outside the dedicated profile.
            Profile::CallHeavy => 1,
            _ => 0,
        };
        WorkloadConfig {
            accounts: 80,
            token_contracts: 4,
            amm_contracts: 2,
            nft_contracts: 2,
            counter_contracts: 1,
            ballot_contracts: 1,
            fig1_contracts: 1,
            auction_contracts: 1,
            crowdsale_contracts: 1,
            batch_pay_contracts: 1,
            airdrop_contracts: loopy(3),
            batch_transfer_contracts: loopy(3),
            router_contracts: 1,
            router2_contracts: cally(3),
            flash_contracts: cally(2),
            oracle_contracts: cally(2),
            drop_contracts: drops,
            ..base
        }
    }
}

/// Which engine a fuzz case exercises against the serial oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineUnderTest {
    /// The original differential pair: the sharded predictive executor and
    /// the global-lock executor, both on the same perturbed C-SAGs.
    #[default]
    Pair,
    /// The Block-STM-style optimistic executor (the perturbed C-SAGs are
    /// passed as an interning hint, which must never affect correctness).
    Stm,
    /// The hybrid dispatcher: well-predicted transactions stay predictive,
    /// speculative/unanalyzable ones are stripped to optimistic C-SAGs. A
    /// seeded quarter of the block is marked unanalyzable to keep both
    /// populations busy.
    Hybrid,
}

impl EngineUnderTest {
    /// Parses the CLI spelling of an engine.
    pub fn parse(name: &str) -> Option<EngineUnderTest> {
        match name {
            "pair" => Some(EngineUnderTest::Pair),
            "stm" => Some(EngineUnderTest::Stm),
            "hybrid" => Some(EngineUnderTest::Hybrid),
            _ => None,
        }
    }

    /// The CLI spelling (inverse of [`Self::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            EngineUnderTest::Pair => "pair",
            EngineUnderTest::Stm => "stm",
            EngineUnderTest::Hybrid => "hybrid",
        }
    }
}

/// Which persistent state backend the campaign cross-checks against the
/// plain snapshot-stack [`StateDb`] (the root oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendUnderTest {
    /// No backend axis (the default): only the executors are fuzzed.
    #[default]
    None,
    /// In-memory versioned backend behind the flat-state cache.
    Mem,
    /// Log-structured on-disk store with tiny thresholds, so every case
    /// crosses segment flushes and compactions.
    Lsm,
}

impl BackendUnderTest {
    /// Parses the CLI spelling of a backend axis.
    pub fn parse(name: &str) -> Option<BackendUnderTest> {
        match name {
            "plain" => Some(BackendUnderTest::None),
            "mem" => Some(BackendUnderTest::Mem),
            "lsm" => Some(BackendUnderTest::Lsm),
            _ => None,
        }
    }

    /// The CLI spelling (inverse of [`Self::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            BackendUnderTest::None => "plain",
            BackendUnderTest::Mem => "mem",
            BackendUnderTest::Lsm => "lsm",
        }
    }
}

/// One fuzz campaign's fixed parameters (the seed varies per case).
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Worker threads for both threaded executors and the simulator.
    pub threads: usize,
    /// Block size per case (shrinking lowers it per-repro).
    pub size: usize,
    /// Workload contention profile.
    pub profile: Profile,
    /// Fraction of accesses hidden from the analyzer (organic
    /// mispredictions, on top of the fault plan's injected ones).
    pub hide_fraction: f64,
    /// Every `stale_every`-th seed builds its C-SAGs against the previous
    /// block's snapshot (the mempool scenario); `0` disables.
    pub stale_every: u64,
    /// Disables schedule perturbation and input faults (differential
    /// testing only).
    pub quiet: bool,
    /// Active executor mutation (see [`Mutation`]).
    pub mutation: Mutation,
    /// Check the virtual-time simulator's structural invariants too.
    pub check_simulator: bool,
    /// Overrides the scheduler knobs (the per-case seed still replaces the
    /// template's); `None` uses [`SchedConfig::stormy`] (or `quiet`).
    pub sched_template: Option<SchedConfig>,
    /// Overrides the input-fault knobs (per-case seed applied on top);
    /// `None` uses [`FaultPlan::standard`] (or `none`).
    pub fault_template: Option<FaultPlan>,
    /// C-SAG refinement strategy (two-tier symbolic binding by default;
    /// `SpeculativeOnly` pins the paper's baseline path).
    pub refinement: RefinementMode,
    /// Ready-queue ordering of both threaded executors (critical-path
    /// rank dispatch by default, matching production; `Fifo` fuzzes the
    /// arrival-order deques).
    pub scheduler: SchedulerPolicy,
    /// Pin the sharded executor's workers to cores (exercises the
    /// `ParallelConfig::pin_cores` path under schedule fuzzing).
    pub pin_cores: bool,
    /// Which engine the campaign exercises (see [`EngineUnderTest`]).
    pub engine: EngineUnderTest,
    /// Persistent-backend cross-check: replay each case's serial history
    /// through a backend-backed [`StateDb`] with async root commits and
    /// compare per-height roots and reads (see [`BackendUnderTest`]).
    pub backend: BackendUnderTest,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            threads: 4,
            size: 60,
            profile: Profile::HighContention,
            hide_fraction: 0.15,
            stale_every: 4,
            quiet: false,
            mutation: Mutation::None,
            check_simulator: true,
            sched_template: None,
            fault_template: None,
            refinement: RefinementMode::TwoTier,
            scheduler: SchedulerPolicy::CriticalPath,
            pin_cores: false,
            engine: EngineUnderTest::Pair,
            backend: BackendUnderTest::None,
        }
    }
}

impl FuzzConfig {
    fn sched_config(&self, seed: u64) -> SchedConfig {
        let mut config = match self.sched_template {
            Some(template) => SchedConfig { seed, ..template },
            None if self.quiet => SchedConfig::quiet(seed),
            None => SchedConfig::stormy(seed),
        };
        if self.mutation == Mutation::SkipReleaseGasBound {
            // The mutation under test: every release gate passes and the
            // "unnecessary" rollback is skipped (see `Mutation`).
            config.force_release_ppm = 1_000_000;
            config.skip_rollback = true;
        }
        config
    }

    fn fault_plan(&self, seed: u64) -> FaultPlan {
        // Decorrelate the fault streams from the scheduler streams.
        let seed = seed ^ 0x5EED_5EED;
        match self.fault_template {
            Some(template) => FaultPlan { seed, ..template },
            None if self.quiet => FaultPlan::none(seed),
            None => FaultPlan::standard(seed),
        }
    }
}

/// A replayable disagreement between an executor and the serial oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The diverging seed.
    pub seed: u64,
    /// Block size at which the divergence (still) reproduces.
    pub size: usize,
    /// Thread count of the diverging run.
    pub threads: usize,
    /// Which executor diverged (`sharded`, `global-lock`, `simulator`).
    pub executor: &'static str,
    /// Ready-queue policy of the diverging run (part of the replay
    /// command — schedule-dependent bugs often reproduce under only one).
    pub policy: &'static str,
    /// Engine axis of the diverging campaign (`pair`, `stm`, `hybrid`);
    /// non-default engines are part of the replay command.
    pub engine: &'static str,
    /// Backend axis of the diverging campaign (`plain`, `mem`, `lsm`);
    /// non-default backends are part of the replay command.
    pub backend: &'static str,
    /// Sorted, deterministic description of the disagreement.
    pub details: Vec<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "divergence: executor={} seed={} size={} threads={} scheduler={}",
            self.executor, self.seed, self.size, self.threads, self.policy
        )?;
        for line in &self.details {
            writeln!(f, "  {line}")?;
        }
        write!(
            f,
            "replay: cargo run -p dmvcc-dst -- replay --seed {} --size {} --threads {} \
             --scheduler {}",
            self.seed, self.size, self.threads, self.policy
        )?;
        if self.engine != "pair" {
            write!(f, " --executor {}", self.engine)?;
        }
        if self.backend != "plain" {
            write!(f, " --backend {}", self.backend)?;
        }
        Ok(())
    }
}

const MAX_DETAIL_LINES: usize = 24;

/// Sorted per-key diff of two final write sets (capped, deterministic).
fn diff_writes(serial: &WriteSet, parallel: &WriteSet) -> Vec<String> {
    let mut lines = Vec::new();
    for (key, value) in serial {
        match parallel.get(key) {
            None => lines.push(format!("missing {key}: serial={value}")),
            Some(got) if got != value => {
                lines.push(format!("value {key}: serial={value} executor={got}"));
            }
            Some(_) => {}
        }
    }
    for (key, value) in parallel {
        if !serial.contains_key(key) {
            lines.push(format!("extra {key}: executor={value}"));
        }
    }
    lines.sort();
    if lines.len() > MAX_DETAIL_LINES {
        let more = lines.len() - MAX_DETAIL_LINES;
        lines.truncate(MAX_DETAIL_LINES);
        lines.push(format!("... and {more} more"));
    }
    lines
}

/// Per-transaction status diff (capped, deterministic).
fn diff_statuses(trace: &BlockTrace, outcome: &ParallelOutcome) -> Vec<String> {
    let mut lines = Vec::new();
    for (i, t) in trace.txs.iter().enumerate() {
        if outcome.statuses[i] != t.status {
            lines.push(format!(
                "status tx {i}: serial={:?} executor={:?}",
                t.status, outcome.statuses[i]
            ));
        }
    }
    if lines.len() > MAX_DETAIL_LINES {
        let more = lines.len() - MAX_DETAIL_LINES;
        lines.truncate(MAX_DETAIL_LINES);
        lines.push(format!("... and {more} more"));
    }
    lines
}

fn check_outcome(
    executor: &'static str,
    seed: u64,
    config: &FuzzConfig,
    trace: &BlockTrace,
    outcome: &ParallelOutcome,
) -> Option<Divergence> {
    let mut details = diff_writes(&trace.final_writes, &outcome.final_writes);
    details.extend(diff_statuses(trace, outcome));
    if details.is_empty() {
        return None;
    }
    Some(Divergence {
        seed,
        size: config.size,
        threads: config.threads,
        executor,
        policy: config.scheduler.label(),
        engine: config.engine.label(),
        backend: config.backend.label(),
        details,
    })
}

/// Seeded unanalyzable marking for the STM/hybrid campaigns: roughly a
/// quarter of the block loses its predictions entirely, deterministically
/// in `(seed, index)` (splitmix64 finalizer, decorrelated from the
/// scheduler and fault streams).
fn mark_unanalyzable(txs: &mut [Transaction], seed: u64) {
    for (i, tx) in txs.iter_mut().enumerate() {
        let mut x = (seed ^ 0x0B5C_0B5C_0B5C_0B5C)
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        if x.is_multiple_of(4) {
            tx.analyzable = false;
        }
    }
}

/// Runs one fuzz case end to end; `None` means every executor agreed with
/// the serial oracle and the simulator invariants held.
pub fn run_seed(seed: u64, config: &FuzzConfig) -> Option<Divergence> {
    let mut generator = WorkloadGenerator::new(config.profile.config(seed));
    let analyzer = Analyzer::with_config(
        generator.registry().clone(),
        AnalysisConfig {
            hide_fraction: config.hide_fraction,
            seed: seed ^ 0xA11A,
            refinement: config.refinement,
        },
    );
    let genesis = Snapshot::from_entries(generator.genesis_entries());

    // The mempool scenario on a seeded subset of cases: predictions are
    // built against the previous block's snapshot, execution runs on the
    // current one.
    let stale = config.stale_every != 0 && seed.is_multiple_of(config.stale_every);
    let (live, prediction_snapshot, env, warmup_writes) = if stale {
        let warmup = generator.block(config.size / 2 + 1);
        let env1 = BlockEnv::new(1, 1_700_000_000);
        let warmup_trace = execute_block_serial(&warmup, &genesis, &analyzer, &env1);
        let mut db = StateDb::with_genesis(generator.genesis_entries());
        db.commit(&warmup_trace.final_writes);
        (
            db.latest().clone(),
            genesis.clone(),
            BlockEnv::new(2, 1_700_000_012),
            Some(warmup_trace.final_writes),
        )
    } else {
        (
            genesis.clone(),
            genesis,
            BlockEnv::new(1, 1_700_000_000),
            None,
        )
    };

    let mut txs = generator.block(config.size);
    let plan = config.fault_plan(seed);
    let mut trace = execute_block_serial(&txs, &live, &analyzer, &env);
    if plan.squeeze_gas(&mut txs, &trace) {
        // The squeezed block is the block under test for every executor,
        // including the oracle.
        trace = execute_block_serial(&txs, &live, &analyzer, &env);
    }
    if config.engine != EngineUnderTest::Pair {
        // The optimistic campaigns fuzz the pool-desync scenario: a seeded
        // quarter of the block carries no predictions at all. The flag is
        // scheduling metadata only — the serial oracle is unaffected.
        mark_unanalyzable(&mut txs, seed);
    }
    let mut csags = build_csags(&txs, &prediction_snapshot, &analyzer, &env);
    plan.perturb_csags(&mut csags);

    let parallel_config = ParallelConfig {
        threads: config.threads,
        max_attempts: 64,
        scheduler: config.scheduler,
        pin_cores: config.pin_cores,
    };

    match config.engine {
        EngineUnderTest::Pair => {
            let hook = Arc::new(VirtualScheduler::new(config.sched_config(seed)));
            let sharded = ParallelExecutor::new(analyzer.clone(), parallel_config).with_hook(hook);
            let outcome = sharded.execute_block_with_csags(&txs, &live, &env, &csags);
            if let Some(divergence) = check_outcome("sharded", seed, config, &trace, &outcome) {
                return Some(divergence);
            }

            let hook = Arc::new(VirtualScheduler::new(config.sched_config(seed)));
            let global =
                GlobalLockParallelExecutor::new(analyzer.clone(), parallel_config).with_hook(hook);
            let outcome = global.execute_block_with_csags(&txs, &live, &env, &csags);
            if let Some(divergence) = check_outcome("global-lock", seed, config, &trace, &outcome) {
                return Some(divergence);
            }
        }
        EngineUnderTest::Stm => {
            // The perturbed predictions ride along as an interning hint:
            // the engine's correctness must be independent of them, so the
            // fault plan's mispredictions exercise exactly that claim.
            let hook = Arc::new(VirtualScheduler::new(config.sched_config(seed)));
            let stm = StmExecutor::new(analyzer.clone(), parallel_config).with_hook(hook);
            let outcome = stm.execute_block_with_csags(&txs, &live, &env, &csags);
            if let Some(divergence) = check_outcome("stm", seed, config, &trace, &outcome) {
                return Some(divergence);
            }
        }
        EngineUnderTest::Hybrid => {
            let hook = Arc::new(VirtualScheduler::new(config.sched_config(seed)));
            let hybrid = HybridExecutor::new(analyzer.clone(), parallel_config).with_hook(hook);
            let outcome = hybrid.execute_block_with_csags(&txs, &live, &env, &csags);
            if let Some(divergence) = check_outcome("hybrid", seed, config, &trace, &outcome) {
                return Some(divergence);
            }
        }
    }

    // State-backend differential: replay the case's serial history through
    // a backend-backed StateDb (async root commits, flat-state reads, and —
    // for the LSM — segment flushes and compactions at tiny thresholds) and
    // compare every per-height root and final read against the plain
    // snapshot-stack StateDb.
    if config.backend != BackendUnderTest::None {
        let entries = generator.genesis_entries();
        let backend: Arc<dyn StateBackend> = match config.backend {
            BackendUnderTest::Mem => Arc::new(MemBackend::new()),
            _ => Arc::new(LsmBackend::new(LsmOptions::tiny())),
        };
        let mut plain = StateDb::with_genesis(entries.clone());
        let mut backed = StateDb::with_backend(backend, entries);
        let mut details = Vec::new();
        if backed.current_root() != plain.current_root() {
            details.push(format!(
                "genesis root: plain={} backend={}",
                plain.current_root(),
                backed.current_root()
            ));
        }
        let history: Vec<&WriteSet> = warmup_writes
            .iter()
            .chain(std::iter::once(&trace.final_writes))
            .collect();
        for (i, writes) in history.iter().enumerate() {
            let height = 1 + i as u64;
            let expected = plain.commit(writes);
            let got = backed.commit_async(writes).wait();
            if got != expected {
                details.push(format!(
                    "root at height {height}: plain={expected} backend={got}"
                ));
            }
            if backed.root_at(height) != Some(expected) {
                details.push(format!("root_at({height}) disagrees with sync oracle"));
            }
        }
        for (key, value) in &trace.final_writes {
            if details.len() >= MAX_DETAIL_LINES {
                break;
            }
            let got = backed.latest().get(key);
            if got != *value {
                details.push(format!("read {key}: serial={value} backend={got}"));
            }
        }
        if !details.is_empty() {
            return Some(Divergence {
                seed,
                size: config.size,
                threads: config.threads,
                executor: "state-backend",
                policy: config.scheduler.label(),
                engine: config.engine.label(),
                backend: config.backend.label(),
                details,
            });
        }
    }

    if config.check_simulator {
        let report = simulate_dmvcc(&trace, &csags, &DmvccConfig::new(config.threads));
        let mut details = Vec::new();
        let n = trace.txs.len() as u64;
        if report.attempts != n + report.aborts {
            details.push(format!(
                "attempts {} != txs {} + aborts {}",
                report.attempts, n, report.aborts
            ));
        }
        let longest = trace.txs.iter().map(|t| t.gas_used).max().unwrap_or(0);
        if report.makespan < longest {
            details.push(format!(
                "makespan {} < longest transaction {longest}",
                report.makespan
            ));
        }
        if report.busy_gas < report.serial_cost {
            details.push(format!(
                "busy_gas {} < serial cost {}",
                report.busy_gas, report.serial_cost
            ));
        }
        if !details.is_empty() {
            return Some(Divergence {
                seed,
                size: config.size,
                threads: config.threads,
                executor: "simulator",
                policy: config.scheduler.label(),
                engine: config.engine.label(),
                backend: config.backend.label(),
                details,
            });
        }
    }
    None
}

/// Shrinks a divergence by replaying the same seed at smaller block sizes
/// (prefix blocks — see the module docs). Returns the smallest reproducer
/// found; the original if no smaller size still diverges.
pub fn shrink(seed: u64, config: &FuzzConfig, found: Divergence) -> Divergence {
    let mut best = found;
    // Binary descent: halve while the divergence survives.
    while best.size > 1 {
        let mut candidate = config.clone();
        candidate.size = best.size / 2;
        match run_seed(seed, &candidate) {
            Some(divergence) => best = divergence,
            None => break,
        }
    }
    // Linear polish: shave single transactions off the tail.
    for _ in 0..8 {
        if best.size <= 1 {
            break;
        }
        let mut candidate = config.clone();
        candidate.size = best.size - 1;
        match run_seed(seed, &candidate) {
            Some(divergence) => best = divergence,
            None => break,
        }
    }
    best
}

/// Result of a fuzz campaign.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Seeds fully executed (budget exhaustion can stop a campaign early).
    pub seeds_run: u64,
    /// The first divergence found, already shrunk; `None` if all agreed.
    pub divergence: Option<Divergence>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

/// Runs seeds `start .. start + count`, stopping at the first divergence
/// (after shrinking it) or when the wall-clock `budget` runs out.
/// `progress` is invoked after every case with the number of seeds done.
pub fn fuzz(
    start: u64,
    count: u64,
    config: &FuzzConfig,
    budget: Option<Duration>,
    mut progress: impl FnMut(u64),
) -> FuzzOutcome {
    let started = Instant::now();
    for i in 0..count {
        if budget.is_some_and(|b| started.elapsed() >= b) {
            return FuzzOutcome {
                seeds_run: i,
                divergence: None,
                elapsed: started.elapsed(),
            };
        }
        let seed = start + i;
        if let Some(found) = run_seed(seed, config) {
            let shrunk = shrink(seed, config, found);
            return FuzzOutcome {
                seeds_run: i + 1,
                divergence: Some(shrunk),
                elapsed: started.elapsed(),
            };
        }
        progress(i + 1);
    }
    FuzzOutcome {
        seeds_run: count,
        divergence: None,
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_differential_seeds_agree() {
        let config = FuzzConfig {
            quiet: true,
            size: 30,
            ..FuzzConfig::default()
        };
        for seed in 0..4 {
            assert!(
                run_seed(seed, &config).is_none(),
                "quiet seed {seed} diverged"
            );
        }
    }

    #[test]
    fn stormy_seeds_agree_without_mutation() {
        let config = FuzzConfig {
            size: 40,
            ..FuzzConfig::default()
        };
        for seed in 0..4 {
            let result = run_seed(seed, &config);
            assert!(result.is_none(), "seed {seed} diverged: {:?}", result);
        }
    }

    #[test]
    fn divergence_report_is_deterministic_text() {
        let divergence = Divergence {
            seed: 9,
            size: 12,
            threads: 4,
            executor: "sharded",
            policy: "critical-path",
            engine: "pair",
            backend: "plain",
            details: vec!["missing k: serial=1".into()],
        };
        let text = format!("{divergence}");
        assert!(text.contains("seed=9"));
        assert!(text.contains("replay: cargo run -p dmvcc-dst -- replay --seed 9 --size 12"));
        assert!(text.contains("--scheduler critical-path"));
        assert!(!text.contains("--executor"));
        assert!(!text.contains("--backend"));
        assert_eq!(text, format!("{divergence}"));

        let stm = Divergence {
            engine: "stm",
            executor: "stm",
            ..divergence.clone()
        };
        assert!(format!("{stm}").ends_with("--executor stm"));

        let lsm = Divergence {
            executor: "state-backend",
            backend: "lsm",
            ..divergence
        };
        assert!(format!("{lsm}").ends_with("--backend lsm"));
    }

    #[test]
    fn backend_cross_check_seeds_agree() {
        // Seed 0 hits the stale-snapshot path (stale_every=4), so both
        // backends replay a two-block history; the LSM's tiny thresholds
        // force segment flushes and compactions inside the case.
        for backend in [BackendUnderTest::Mem, BackendUnderTest::Lsm] {
            let config = FuzzConfig {
                size: 30,
                backend,
                ..FuzzConfig::default()
            };
            for seed in 0..3 {
                let result = run_seed(seed, &config);
                assert!(
                    result.is_none(),
                    "{} backend seed {seed} diverged: {result:?}",
                    backend.label()
                );
            }
        }
    }

    #[test]
    fn backend_under_test_parse_roundtrip() {
        for backend in [
            BackendUnderTest::None,
            BackendUnderTest::Mem,
            BackendUnderTest::Lsm,
        ] {
            assert_eq!(BackendUnderTest::parse(backend.label()), Some(backend));
        }
        assert_eq!(BackendUnderTest::parse("rocksdb"), None);
    }

    #[test]
    fn stm_seeds_agree_under_storm() {
        let config = FuzzConfig {
            size: 40,
            engine: EngineUnderTest::Stm,
            ..FuzzConfig::default()
        };
        for seed in 0..4 {
            let result = run_seed(seed, &config);
            assert!(result.is_none(), "stm seed {seed} diverged: {:?}", result);
        }
    }

    #[test]
    fn hybrid_seeds_agree_under_storm() {
        let config = FuzzConfig {
            size: 40,
            engine: EngineUnderTest::Hybrid,
            ..FuzzConfig::default()
        };
        for seed in 0..4 {
            let result = run_seed(seed, &config);
            assert!(
                result.is_none(),
                "hybrid seed {seed} diverged: {:?}",
                result
            );
        }
    }

    #[test]
    fn unanalyzable_marking_is_deterministic_and_partial() {
        let mut a: Vec<Transaction> = (1..=32)
            .map(|i| {
                Transaction::transfer(
                    dmvcc_primitives::Address::from_u64(i),
                    dmvcc_primitives::Address::from_u64(i + 1),
                    dmvcc_primitives::U256::ONE,
                )
            })
            .collect();
        let mut b = a.clone();
        mark_unanalyzable(&mut a, 7);
        mark_unanalyzable(&mut b, 7);
        assert_eq!(a, b);
        let marked = a.iter().filter(|t| !t.analyzable).count();
        assert!(
            marked > 0 && marked < a.len(),
            "marked {marked} of {}",
            a.len()
        );
    }

    #[test]
    fn call_heavy_seeds_agree_on_every_engine() {
        for engine in [
            EngineUnderTest::Pair,
            EngineUnderTest::Stm,
            EngineUnderTest::Hybrid,
        ] {
            let config = FuzzConfig {
                size: 40,
                profile: Profile::CallHeavy,
                engine,
                ..FuzzConfig::default()
            };
            for seed in 0..3 {
                let result = run_seed(seed, &config);
                assert!(
                    result.is_none(),
                    "call-heavy {} seed {seed} diverged: {:?}",
                    engine.label(),
                    result
                );
            }
        }
    }

    #[test]
    fn nft_mint_rush_seeds_agree_on_every_engine() {
        for engine in [
            EngineUnderTest::Pair,
            EngineUnderTest::Stm,
            EngineUnderTest::Hybrid,
        ] {
            let config = FuzzConfig {
                size: 40,
                profile: Profile::NftMintRush,
                engine,
                ..FuzzConfig::default()
            };
            for seed in 0..3 {
                let result = run_seed(seed, &config);
                assert!(
                    result.is_none(),
                    "nft {} seed {seed} diverged: {:?}",
                    engine.label(),
                    result
                );
            }
        }
    }

    #[test]
    fn fifo_seeds_agree_too() {
        let config = FuzzConfig {
            size: 30,
            scheduler: SchedulerPolicy::Fifo,
            ..FuzzConfig::default()
        };
        for seed in 0..3 {
            let result = run_seed(seed, &config);
            assert!(result.is_none(), "fifo seed {seed} diverged: {:?}", result);
        }
    }
}
