//! `dmvcc-dst` binary: the DST fuzz driver and seed replayer.
//!
//! ```text
//! dmvcc-dst fuzz   [--seeds N] [--start S] [--size N] [--threads N]
//!                  [--profile ethereum|hot|loop|call] [--mutate skip-release-gas-bound]
//!                  [--refinement two-tier|speculative]
//!                  [--scheduler fifo|critical-path] [--pin-cores]
//!                  [--executor pair|stm|hybrid] [--backend plain|mem|lsm]
//!                  [--budget-secs N] [--quiet]
//! dmvcc-dst replay --seed S [--size N] [--threads N]
//!                  [--profile ethereum|hot|loop|call] [--mutate skip-release-gas-bound]
//!                  [--refinement two-tier|speculative]
//!                  [--scheduler fifo|critical-path] [--pin-cores]
//!                  [--executor pair|stm|hybrid] [--backend plain|mem|lsm]
//! ```
//!
//! `fuzz` runs a seed campaign and exits non-zero on the first divergence,
//! printing a shrunk, replayable report. `replay` re-runs one `(seed,
//! size)` case and prints the identical report (byte-for-byte: every
//! scheduler and fault decision is a pure function of the seed).

use std::process::ExitCode;
use std::time::Duration;

use dmvcc_dst::{fuzz, run_seed, BackendUnderTest, EngineUnderTest, FuzzConfig, Mutation, Profile};

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}");
    eprintln!("usage: dmvcc-dst fuzz   [--seeds N] [--start S] [--size N] [--threads N]");
    eprintln!("                        [--profile ethereum|hot|loop|call] [--mutate MUTATION]");
    eprintln!("                        [--refinement two-tier|speculative]");
    eprintln!("                        [--scheduler fifo|critical-path] [--pin-cores]");
    eprintln!("                        [--executor pair|stm|hybrid] [--backend plain|mem|lsm]");
    eprintln!("                        [--budget-secs N] [--quiet]");
    eprintln!("       dmvcc-dst replay --seed S [--size N] [--threads N]");
    eprintln!("                        [--profile ethereum|hot|loop|call] [--mutate MUTATION]");
    eprintln!("                        [--refinement two-tier|speculative]");
    eprintln!("                        [--scheduler fifo|critical-path] [--pin-cores]");
    eprintln!("                        [--executor pair|stm|hybrid] [--backend plain|mem|lsm]");
    eprintln!("mutations: none, skip-release-gas-bound");
    ExitCode::from(2)
}

struct Args {
    config: FuzzConfig,
    seeds: u64,
    start: u64,
    seed: Option<u64>,
    budget: Option<Duration>,
}

fn parse(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let command = argv.next().ok_or("missing command (fuzz | replay)")?;
    let mut args = Args {
        config: FuzzConfig::default(),
        seeds: 200,
        start: 0,
        seed: None,
        budget: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds")?.parse().map_err(|e| format!("{e}"))?,
            "--start" => args.start = value("--start")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => {
                args.seed = Some(value("--seed")?.parse().map_err(|e| format!("{e}"))?);
            }
            "--size" => {
                args.config.size = value("--size")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--threads" => {
                args.config.threads = value("--threads")?.parse().map_err(|e| format!("{e}"))?;
            }
            "--profile" => {
                let name = value("--profile")?;
                args.config.profile =
                    Profile::parse(&name).ok_or_else(|| format!("unknown profile {name}"))?;
            }
            "--mutate" => {
                let name = value("--mutate")?;
                args.config.mutation =
                    Mutation::parse(&name).ok_or_else(|| format!("unknown mutation {name}"))?;
            }
            "--refinement" => {
                args.config.refinement = match value("--refinement")?.as_str() {
                    "two-tier" => dmvcc_analysis::RefinementMode::TwoTier,
                    "speculative" => dmvcc_analysis::RefinementMode::SpeculativeOnly,
                    other => return Err(format!("unknown refinement {other}")),
                };
            }
            "--scheduler" => {
                let name = value("--scheduler")?;
                args.config.scheduler = dmvcc_core::SchedulerPolicy::parse(&name)
                    .ok_or_else(|| format!("unknown scheduler {name}"))?;
            }
            "--budget-secs" => {
                let secs: u64 = value("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                args.budget = Some(Duration::from_secs(secs));
            }
            "--executor" => {
                let name = value("--executor")?;
                args.config.engine = EngineUnderTest::parse(&name)
                    .ok_or_else(|| format!("unknown executor {name}"))?;
            }
            "--backend" => {
                let name = value("--backend")?;
                args.config.backend = BackendUnderTest::parse(&name)
                    .ok_or_else(|| format!("unknown backend {name}"))?;
            }
            "--pin-cores" => args.config.pin_cores = true,
            "--quiet" => args.config.quiet = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok((command, args))
}

fn main() -> ExitCode {
    let mut argv = std::env::args();
    argv.next(); // program name
    let (command, args) = match parse(argv) {
        Ok(parsed) => parsed,
        Err(error) => return usage(&error),
    };
    match command.as_str() {
        "fuzz" => {
            println!(
                "fuzzing {} seeds from {} (size={}, threads={}, mutation={:?}, scheduler={}, \
                 executor={}, backend={})",
                args.seeds,
                args.start,
                args.config.size,
                args.config.threads,
                args.config.mutation,
                args.config.scheduler.label(),
                args.config.engine.label(),
                args.config.backend.label()
            );
            let outcome = fuzz(args.start, args.seeds, &args.config, args.budget, |done| {
                if done % 50 == 0 {
                    println!("  {done} seeds clean");
                }
            });
            match outcome.divergence {
                Some(divergence) => {
                    println!("{divergence}");
                    ExitCode::FAILURE
                }
                None => {
                    if outcome.seeds_run < args.seeds {
                        println!(
                            "budget exhausted after {} of {} seeds ({:.1?}), no divergence",
                            outcome.seeds_run, args.seeds, outcome.elapsed
                        );
                    } else {
                        println!(
                            "{} seeds, no divergence ({:.1?})",
                            outcome.seeds_run, outcome.elapsed
                        );
                    }
                    ExitCode::SUCCESS
                }
            }
        }
        "replay" => {
            let Some(seed) = args.seed else {
                return usage("replay requires --seed");
            };
            match run_seed(seed, &args.config) {
                Some(divergence) => {
                    println!("{divergence}");
                    ExitCode::FAILURE
                }
                None => {
                    println!(
                        "seed {seed} (size={}, threads={}, scheduler={}): no divergence",
                        args.config.size,
                        args.config.threads,
                        args.config.scheduler.label()
                    );
                    ExitCode::SUCCESS
                }
            }
        }
        other => usage(&format!("unknown command {other}")),
    }
}
