//! `dmvcc-dst` — deterministic-simulation testing for the DMVCC executors.
//!
//! Everything in this crate drives the [`dmvcc_core::SchedHook`] surface
//! the threaded executors expose at their scheduling decision points:
//!
//! - [`VirtualScheduler`]: a seeded [`dmvcc_core::SchedHook`] whose every
//!   decision (preemptions, delayed publishes, shard-lock stalls, injected
//!   aborts, forced release gates) is a pure function of `(seed, site,
//!   coordinates)` — replaying a seed re-applies identical perturbations
//!   regardless of OS thread scheduling.
//! - [`FaultPlan`]: seeded perturbation of the executor's *inputs* —
//!   mispredicted C-SAG keys (dropped and phantom predictions), gas
//!   squeezes forcing out-of-gas after every release point, and (via the
//!   fuzz driver) stale-snapshot predictions.
//! - [`fuzz`]: the differential fuzz engine — every seed runs both
//!   threaded executors and the virtual-time simulator against the serial
//!   oracle, shrinks any divergence to a minimal `(seed, size)` prefix, and
//!   renders it as a deterministic, replayable report.
//! - [`Mutation`]: deliberately-broken executor variants used to prove the
//!   fuzzer's teeth — with `skip-release-gas-bound` active, a campaign must
//!   find a diverging seed quickly.
//!
//! The binary (`cargo run -p dmvcc-dst -- fuzz --seeds 200`) wraps the
//! engine for CI and interactive use; see `docs/TESTING.md` for the test
//! tiers, seed replay and the gating policy.

#![warn(missing_docs)]

mod faults;
pub mod fuzz;
mod sched;

pub use faults::{FaultPlan, Mutation};
pub use fuzz::{
    fuzz, run_seed, shrink, BackendUnderTest, Divergence, EngineUnderTest, FuzzConfig, FuzzOutcome,
    Profile,
};
pub use sched::{SchedConfig, SchedStats, VirtualScheduler};
