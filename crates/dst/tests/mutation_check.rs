//! Mutation check (the harness's own acceptance test): with a deliberately
//! broken executor — every release gate passes and published versions of
//! deterministically-aborted transactions are leaked
//! ([`Mutation::SkipReleaseGasBound`]) — the fuzz driver must find a
//! diverging seed quickly, and replaying that seed must reproduce the
//! divergence report byte for byte.

use dmvcc_dst::{fuzz, run_seed, FuzzConfig, Mutation};

fn mutated_config() -> FuzzConfig {
    FuzzConfig {
        mutation: Mutation::SkipReleaseGasBound,
        size: 40,
        ..FuzzConfig::default()
    }
}

#[test]
fn broken_release_gate_is_caught_within_200_seeds() {
    let config = mutated_config();
    let outcome = fuzz(0, 200, &config, None, |_| {});
    let divergence = outcome
        .divergence
        .expect("SkipReleaseGasBound must diverge within 200 seeds");
    // The report is replayable: the same (seed, size, threads) must
    // reproduce the identical divergence text, twice.
    let mut replay = config;
    replay.size = divergence.size;
    replay.threads = divergence.threads;
    let first =
        run_seed(divergence.seed, &replay).expect("replaying the shrunk seed must still diverge");
    let second =
        run_seed(divergence.seed, &replay).expect("replaying the shrunk seed must still diverge");
    assert_eq!(
        format!("{first}"),
        format!("{second}"),
        "replay must be byte-for-byte deterministic"
    );
    assert_eq!(
        format!("{first}"),
        format!("{divergence}"),
        "replay must reproduce the originally reported divergence"
    );
}

#[test]
fn unmutated_run_stays_clean_on_the_same_seeds() {
    // Control arm: the exact seeds that catch the mutation are clean
    // without it, so the check above measures the mutation, not noise.
    let config = FuzzConfig {
        size: 40,
        ..FuzzConfig::default()
    };
    let outcome = fuzz(0, 20, &config, None, |_| {});
    assert!(
        outcome.divergence.is_none(),
        "unmutated executors diverged: {:?}",
        outcome.divergence
    );
}
