//! Static classification of storage increments (ω̄ detection).
//!
//! The paper's analyzer marks a write as a *commutative increment* ω̄ when
//! it has the shape `k ← k + e` and the old value of `k` flows nowhere
//! else; such writes merge instead of conflicting (Definition 3). Our VM
//! surfaces ω̄ as an explicit `SADD` opcode, but contracts compiled from
//! ordinary source still express increments as `SLOAD k … ADD … SSTORE k`.
//! This module runs a def-use pass over the abstract-interpretation plan
//! ([`crate::absint`]) to find those stores and decide — *statically,
//! per contract* — whether each one commutes.
//!
//! The result is diagnostic only (it feeds `dmvcc lint`): promoting a
//! plain store to the runtime add set would be unsound if the static
//! reasoning missed a use, so the scheduler keeps trusting the per-
//! transaction C-SAG refinement instead.

use crate::absint::{ContractPlan, KeyExpr, PlanAccess};
use crate::psag::AccessKind;
use crate::symbolic::{BinOp, SymExpr};

/// Verdict on one `SLOAD k … ADD … SSTORE k` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementClass {
    /// The loaded value flows *only* into the stored sum: the write
    /// commutes (ω̄) and is an `SADD` candidate.
    Commutable,
    /// The loaded value also feeds a branch condition, another key, or
    /// another stored value — reordering would change behaviour.
    NonCommutable,
}

/// One classified increment of a contract.
#[derive(Debug, Clone)]
pub struct IncrementReport {
    /// Program counter of the `SSTORE`.
    pub store_pc: usize,
    /// Program counter of the matching `SLOAD`.
    pub load_pc: usize,
    /// The shared key template (display form).
    pub key: SymExpr,
    /// Whether the increment commutes.
    pub class: IncrementClass,
}

/// Classifies every `k ← k + e` store of `plan`.
///
/// A store qualifies when its value is `Add(Load(i), e)` (either operand
/// order) and its key template equals the key of read `i`. It is
/// [`IncrementClass::Commutable`] iff `Load(i)` occurs exactly once across
/// *all* plan facts — keys, stored values/deltas, branch conditions and
/// `EXP` gas terms — i.e. only inside this store's sum.
pub fn classify_increments(plan: &ContractPlan) -> Vec<IncrementReport> {
    // Def site of each load id: (pc, key template).
    let mut defs: Vec<Option<&PlanAccess>> = vec![None; plan.load_count];
    for access in plan.accesses() {
        if let Some(id) = access.load {
            defs[id] = Some(access);
        }
    }

    // Use counts of each load id across every plan fact.
    let mut uses = vec![0usize; plan.load_count];
    let mut count = |expr: &SymExpr| {
        let mut ids = Vec::new();
        expr.collect_loads(&mut ids);
        for id in ids {
            uses[id] += 1;
        }
    };
    for block in &plan.blocks {
        for access in &block.accesses {
            count(access.key.expr());
            if let Some(value) = &access.value {
                count(value);
            }
        }
        if let Some(cond) = &block.cond {
            count(cond);
        }
        for term in &block.exp_terms {
            count(term);
        }
    }

    let mut reports = Vec::new();
    for access in plan.accesses() {
        if access.kind != AccessKind::Write {
            continue;
        }
        let Some(SymExpr::Binary(BinOp::Add, a, b)) = &access.value else {
            continue;
        };
        let load_id = match (a.as_ref(), b.as_ref()) {
            (SymExpr::Load(id), _) | (_, SymExpr::Load(id)) => *id,
            _ => continue,
        };
        let Some(def) = defs[load_id] else { continue };
        // Balance reads can never match a storage store key, and two
        // unresolved (`Unknown`-bearing) keys are *not* known to be the
        // same slot even though they compare equal.
        if !matches!(def.key, KeyExpr::Storage(_))
            || !access.key.is_template()
            || def.key != access.key
        {
            continue;
        }
        reports.push(IncrementReport {
            store_pc: access.pc,
            load_pc: def.pc,
            key: access.key.expr().clone(),
            class: if uses[load_id] == 1 {
                IncrementClass::Commutable
            } else {
                IncrementClass::NonCommutable
            },
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use dmvcc_vm::{assemble, contracts};

    fn plan_of(code: &[u8]) -> ContractPlan {
        let mut cfg = Cfg::build(code);
        crate::absint::analyze(code, &mut cfg)
    }

    #[test]
    fn plain_increment_commutes() {
        let code = assemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0 SSTORE STOP").unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, IncrementClass::Commutable);
        assert_eq!(reports[0].load_pc, 2);
    }

    #[test]
    fn branch_on_loaded_value_blocks_commuting() {
        // The loaded value feeds both the sum and a JUMPI condition.
        let code = assemble(
            "PUSH1 0 SLOAD DUP1 PUSH1 1 ADD PUSH1 0 SSTORE \
             PUSH @skip JUMPI STOP skip: JUMPDEST STOP",
        )
        .unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, IncrementClass::NonCommutable);
    }

    #[test]
    fn store_to_a_different_slot_is_not_an_increment() {
        let code = assemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 7 SSTORE STOP").unwrap();
        assert!(classify_increments(&plan_of(&code)).is_empty());
    }

    #[test]
    fn unknown_keys_are_never_matched() {
        // fig1's loop body stores through a loop-variant key: both key
        // templates widen to Unknown, compare equal, and must *not* be
        // reported as an increment of "the same" slot.
        let plan = plan_of(&contracts::fig1_example());
        for report in classify_increments(&plan) {
            assert!(report.key.is_template(), "matched an unresolved key");
        }
    }

    #[test]
    fn counter_rmw_increment_is_a_sadd_candidate() {
        // INCREMENT_CHECKED spells `count ← count + 1` with SLOAD/ADD/
        // SSTORE and the loaded value flows nowhere else: the lint should
        // flag it as a commutable SADD candidate.
        let plan = plan_of(&contracts::counter());
        let reports = classify_increments(&plan);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, IncrementClass::Commutable);
    }
}
