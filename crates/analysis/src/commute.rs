//! Static classification of storage increments (ω̄ detection).
//!
//! The paper's analyzer marks a write as a *commutative increment* ω̄ when
//! it has the shape `k ← k + e` and the old value of `k` flows nowhere
//! else; such writes merge instead of conflicting (Definition 3). Our VM
//! surfaces ω̄ as an explicit `SADD` opcode, but contracts compiled from
//! ordinary source still express increments as `SLOAD k … ADD … SSTORE k`.
//! This module runs a def-use pass over the abstract-interpretation plan
//! ([`crate::absint`]) to find those stores and decide — *statically,
//! per contract* — whether each one commutes.
//!
//! The result is diagnostic only (it feeds `dmvcc lint`): promoting a
//! plain store to the runtime add set would be unsound if the static
//! reasoning missed a use, so the scheduler keeps trusting the per-
//! transaction C-SAG refinement instead.

use crate::absint::{ContractPlan, KeyExpr, PlanAccess};
use crate::psag::AccessKind;
use crate::symbolic::{BinOp, SymExpr};

/// Verdict on one `SLOAD k … ADD … SSTORE k` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementClass {
    /// The loaded value flows *only* into the stored sum: the write
    /// commutes (ω̄) and is an `SADD` candidate.
    Commutable,
    /// The loaded value also feeds a branch condition, another key, or
    /// another stored value — reordering would change behaviour.
    NonCommutable,
}

/// One classified increment of a contract.
#[derive(Debug, Clone)]
pub struct IncrementReport {
    /// Program counter of the `SSTORE`.
    pub store_pc: usize,
    /// Program counter of the matching `SLOAD`.
    pub load_pc: usize,
    /// The shared key template (display form).
    pub key: SymExpr,
    /// Whether the increment commutes.
    pub class: IncrementClass,
}

/// Classifies every `k ← k + e` store of `plan`.
///
/// A store qualifies when its value is an `ADD` chain rooted at `Load(i)`
/// — `Add(Load(i), e)`, or nested sums like `Add(Add(Load(i), a), b)` —
/// and its key template equals the key of read `i`. Same-block chains
/// fold: `k += a; k += b` compiled as one `SLOAD` feeding two `SSTORE`s
/// reports a *single* candidate at the last store (the earlier stores are
/// superseded within the straight-line block, and the net effect is one
/// increment by the summed operand).
///
/// A (folded) store is [`IncrementClass::Commutable`] iff `Load(i)`
/// appears exactly once in each chain store's sum and flows nowhere else
/// across *all* plan facts — keys, stored values/deltas, branch
/// conditions and `EXP` gas terms.
pub fn classify_increments(plan: &ContractPlan) -> Vec<IncrementReport> {
    // Def site of each load id: (pc, key template).
    let mut defs: Vec<Option<&PlanAccess>> = vec![None; plan.load_count];
    for access in plan.accesses() {
        if let Some(id) = access.load {
            defs[id] = Some(access);
        }
    }

    // Use counts of each load id across every plan fact.
    let mut uses = vec![0usize; plan.load_count];
    let mut count = |expr: &SymExpr| {
        let mut ids = Vec::new();
        expr.collect_loads(&mut ids);
        for id in ids {
            uses[id] += 1;
        }
    };
    for block in &plan.blocks {
        for access in &block.accesses {
            count(access.key.expr());
            if let Some(value) = &access.value {
                count(value);
            }
        }
        if let Some(cond) = &block.cond {
            count(cond);
        }
        for term in &block.exp_terms {
            count(term);
        }
    }

    let mut reports = Vec::new();
    for block in &plan.blocks {
        // Chain groups within this straight-line block: the rooting load
        // id → its increment stores, in program order.
        let mut groups: Vec<(usize, Vec<ChainStore>)> = Vec::new();
        for access in &block.accesses {
            if access.kind != AccessKind::Write {
                continue;
            }
            let Some(value) = &access.value else { continue };
            if !matches!(value, SymExpr::Binary(BinOp::Add, _, _)) {
                continue;
            }
            let mut leaf_loads = Vec::new();
            add_chain_loads(value, &mut leaf_loads);
            // Leaves that re-read the stored key root the chain; loads of
            // *other* keys are ordinary operands (`k += m` still commutes).
            // Balance reads can never match a storage store key, and two
            // unresolved (`Unknown`-bearing) keys are *not* known to be
            // the same slot even though they compare equal.
            let matches_key = |id: usize| {
                defs[id].is_some_and(|def| {
                    matches!(def.key, KeyExpr::Storage(_))
                        && access.key.is_template()
                        && def.key == access.key
                })
            };
            let rooted: Vec<usize> = leaf_loads
                .iter()
                .copied()
                .filter(|&id| matches_key(id))
                .collect();
            let Some(&root) = rooted.first() else {
                continue;
            };
            let store = ChainStore {
                access,
                occurrences: leaf_loads.iter().filter(|&&id| id == root).count(),
                // `k ← k + k` (or any sum re-reading the key twice) is not
                // an increment by an independent operand.
                clean: rooted.len() == 1,
            };
            match groups.iter_mut().find(|(id, _)| *id == root) {
                Some((_, stores)) => stores.push(store),
                None => groups.push((root, vec![store])),
            }
        }
        for (root, stores) in groups {
            let def = defs[root].expect("rooted chains have a def");
            let last = stores.last().expect("groups are non-empty").access;
            let in_chain: usize = stores.iter().map(|s| s.occurrences).sum();
            let commutes = stores.iter().all(|s| s.clean) && uses[root] == in_chain;
            reports.push(IncrementReport {
                store_pc: last.pc,
                load_pc: def.pc,
                key: last.key.expr().clone(),
                class: if commutes {
                    IncrementClass::Commutable
                } else {
                    IncrementClass::NonCommutable
                },
            });
        }
    }
    reports.sort_by_key(|r| r.store_pc);
    reports
}

/// One store of a same-block increment chain.
struct ChainStore<'a> {
    access: &'a PlanAccess,
    /// Occurrences of the rooting load in this store's sum.
    occurrences: usize,
    /// Exactly one leaf re-reads the stored key.
    clean: bool,
}

/// Collects the `Load` leaves of an `ADD` chain (with multiplicity),
/// flattening nested sums.
fn add_chain_loads(expr: &SymExpr, out: &mut Vec<usize>) {
    match expr {
        SymExpr::Binary(BinOp::Add, a, b) => {
            add_chain_loads(a, out);
            add_chain_loads(b, out);
        }
        SymExpr::Load(id) => out.push(*id),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use dmvcc_vm::{assemble, contracts};

    fn plan_of(code: &[u8]) -> ContractPlan {
        let mut cfg = Cfg::build(code);
        crate::absint::analyze(code, &mut cfg)
    }

    #[test]
    fn plain_increment_commutes() {
        let code = assemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0 SSTORE STOP").unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, IncrementClass::Commutable);
        assert_eq!(reports[0].load_pc, 2);
    }

    #[test]
    fn branch_on_loaded_value_blocks_commuting() {
        // The loaded value feeds both the sum and a JUMPI condition.
        let code = assemble(
            "PUSH1 0 SLOAD DUP1 PUSH1 1 ADD PUSH1 0 SSTORE \
             PUSH @skip JUMPI STOP skip: JUMPDEST STOP",
        )
        .unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, IncrementClass::NonCommutable);
    }

    #[test]
    fn store_to_a_different_slot_is_not_an_increment() {
        let code = assemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 7 SSTORE STOP").unwrap();
        assert!(classify_increments(&plan_of(&code)).is_empty());
    }

    #[test]
    fn unknown_keys_are_never_matched() {
        // fig1's loop body stores through a loop-variant key: both key
        // templates widen to Unknown, compare equal, and must *not* be
        // reported as an increment of "the same" slot.
        let plan = plan_of(&contracts::fig1_example());
        for report in classify_increments(&plan) {
            assert!(report.key.is_template(), "matched an unresolved key");
        }
    }

    #[test]
    fn same_block_add_chain_folds_to_one_candidate() {
        // `k += 1; k += 2` compiled without a reload: one SLOAD feeds two
        // SSTOREs. The chain folds to a single commutable candidate at the
        // last store (net effect: one increment by the summed operand).
        let code = assemble(
            "PUSH1 0 SLOAD PUSH1 1 ADD DUP1 PUSH1 0 SSTORE \
             PUSH1 2 ADD PUSH1 0 SSTORE STOP",
        )
        .unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1, "{reports:#?}");
        assert_eq!(reports[0].class, IncrementClass::Commutable);
        assert_eq!(reports[0].load_pc, 2);
        // Anchored to the *last* store of the chain.
        assert_eq!(reports[0].store_pc, 15);
    }

    #[test]
    fn nested_sum_store_is_one_candidate_with_folded_operand() {
        // `k ← (k + 1) + 2`: the nested ADD chain is one increment by 3.
        let code = assemble("PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 2 ADD PUSH1 0 SSTORE STOP").unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1, "{reports:#?}");
        assert_eq!(reports[0].class, IncrementClass::Commutable);
    }

    #[test]
    fn chain_with_branch_use_stays_non_commutable() {
        // The loaded value also feeds a JUMPI condition after the chain.
        let code = assemble(
            "PUSH1 0 SLOAD DUP1 PUSH1 1 ADD DUP1 PUSH1 0 SSTORE \
             PUSH1 2 ADD PUSH1 0 SSTORE PUSH @skip JUMPI STOP skip: JUMPDEST STOP",
        )
        .unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1, "{reports:#?}");
        assert_eq!(reports[0].class, IncrementClass::NonCommutable);
    }

    #[test]
    fn doubling_store_is_not_a_commutable_increment() {
        // `k ← k + k`: the operand re-reads the key, so the write does not
        // commute with other increments.
        let code = assemble("PUSH1 0 SLOAD DUP1 ADD PUSH1 0 SSTORE STOP").unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1, "{reports:#?}");
        assert_eq!(reports[0].class, IncrementClass::NonCommutable);
    }

    #[test]
    fn increment_by_another_slot_still_commutes() {
        // `k += m` where m is a different slot: the operand load is an
        // ordinary operand, not a chain root.
        let code = assemble("PUSH1 0 SLOAD PUSH1 7 SLOAD ADD PUSH1 0 SSTORE STOP").unwrap();
        let reports = classify_increments(&plan_of(&code));
        assert_eq!(reports.len(), 1, "{reports:#?}");
        assert_eq!(reports[0].class, IncrementClass::Commutable);
        assert_eq!(reports[0].load_pc, 2);
    }

    #[test]
    fn counter_rmw_increment_is_a_sadd_candidate() {
        // INCREMENT_CHECKED spells `count ← count + 1` with SLOAD/ADD/
        // SSTORE and the loaded value flows nowhere else: the lint should
        // flag it as a commutable SADD candidate.
        let plan = plan_of(&contracts::counter());
        let reports = classify_increments(&plan);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, IncrementClass::Commutable);
    }
}
