//! Complete state access graphs (C-SAG): per-transaction refinement.
//!
//! When a transaction arrives, the validator refines the contract's P-SAG
//! using the concrete transaction input and state values from the latest
//! committed snapshot `S^{l-1}` (paper §III-B, §IV-A): runtime-dependent
//! keys are resolved, loops are unrolled, and the gas fields of release
//! points are filled. This module implements the refinement by *speculative
//! pre-execution*: the transaction is run against the snapshot with a
//! recording host, which is exactly "concrete values of the dependencies
//! are used to execute the contract code".
//!
//! The resulting prediction can be wrong when another transaction in the
//! block overwrites a snapshot value the prediction depended on — the
//! scheduler's abort machinery (paper Algorithms 3–4) recovers from that;
//! [`AnalysisConfig::hide_fraction`] additionally injects artificial
//! imprecision so those paths can be exercised and measured.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use dmvcc_primitives::{Address, U256};
use dmvcc_state::{Snapshot, StateKey};
use dmvcc_vm::{
    execute_traced, BlockEnv, CodeRegistry, ExecParams, ExecStatus, Host, HostError, Opcode,
    Tracer, Transaction, TxEnv, TxKind, CALL_DEPTH_LIMIT, INTRINSIC_GAS, MEMORY_LIMIT,
};

use crate::absint::{CallTarget, KeyExpr, PlanCallKind};
use crate::psag::{AccessKind, PSag};
use crate::symbolic::BindCtx;

/// One recorded state access, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Program counter of the access.
    pub pc: usize,
    /// ρ / ω / ω̄.
    pub kind: AccessKind,
    /// The resolved state item.
    pub key: StateKey,
}

/// A release point refined with its measured gas requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleasePoint {
    /// Program counter (a block start past the last reachable abort).
    pub pc: usize,
    /// Upper bound on the gas needed to finish execution from `pc`
    /// (measured on the predicted path; the paper's `gas` field).
    pub gas_bound: u64,
}

/// Which refinement path produced a C-SAG.
///
/// The paper refines every P-SAG by re-executing the contract against the
/// snapshot; this implementation adds a *symbolic* fast tier that binds
/// the P-SAG's key templates directly (substituting calldata/caller and
/// reading only the snapshot values the templates name) and falls back to
/// speculative pre-execution when a template is incomplete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefinementTier {
    /// Exact by construction: Ether transfers, or a call to an unknown
    /// contract (empty SAG, OCC fallback).
    #[default]
    Exact,
    /// Bound from the P-SAG's symbolic templates without executing code.
    Symbolic,
    /// Bound symbolically through at least one loop: the walk re-bound
    /// loop-carried φ variables ([`crate::SymExpr::LoopVar`]) on loop-head
    /// edges, unrolling the loop at bind time instead of falling back.
    LoopSummarized,
    /// Bound symbolically across at least one cross-contract call edge:
    /// the walk substituted callee plan summaries at their call sites
    /// ([`crate::PlanCall`]), rebinding `Caller` and calldata per frame —
    /// composition, not execution. Takes precedence over
    /// [`RefinementTier::LoopSummarized`] when a path does both.
    Interprocedural,
    /// Bound symbolically through at least one dynamic-but-bounded call
    /// site ([`crate::CallTarget::RegistrySlot`]): the callee address was
    /// resolved from the bound value of a registry storage slot and the
    /// matching candidate summary composed under that slot's snapshot
    /// guard. Takes precedence over [`RefinementTier::Interprocedural`].
    BoundedDynamic,
    /// Full speculative pre-execution against the snapshot.
    Speculative,
    /// No prediction at all: the transaction is unanalyzable (or was
    /// routed to the optimistic executor by the hybrid scheduler). Empty
    /// key sets — readers treat it exactly like an unknown-contract OCC
    /// fallback, but the tier records that prediction was *withheld*, not
    /// merely empty.
    Optimistic,
}

/// The complete (per-transaction) state access graph.
///
/// This is the unit the DMVCC scheduler consumes: predicted read/write/add
/// sets, the ordered access trace, release points with gas bounds, and the
/// snapshot values the prediction depends on.
#[derive(Debug, Clone, Default)]
pub struct CSag {
    /// Keys predicted to be read (ρ).
    pub reads: BTreeSet<StateKey>,
    /// Keys predicted to be written (ω).
    pub writes: BTreeSet<StateKey>,
    /// Keys predicted to be commutatively incremented (ω̄).
    pub adds: BTreeSet<StateKey>,
    /// Ordered trace of accesses on the predicted path.
    pub trace: Vec<AccessEvent>,
    /// Release points with measured gas bounds.
    pub release_points: Vec<ReleasePoint>,
    /// Last predicted write/add pc per key (used by early-write visibility:
    /// a write may be published once execution is past this pc).
    pub last_write_pc: HashMap<StateKey, usize>,
    /// Snapshot values the prediction consumed (`V` of the paper's state
    /// access dependency `D_I(V, E)`): if an earlier transaction overwrites
    /// one of these, the prediction is suspect.
    pub snapshot_deps: BTreeMap<StateKey, U256>,
    /// Whether the speculative run completed successfully.
    pub predicted_success: bool,
    /// Gas consumed on the predicted path.
    pub predicted_gas: u64,
    /// Which refinement tier produced this prediction.
    pub tier: RefinementTier,
}

impl CSag {
    /// The trivial C-SAG of a pure Ether transfer: reads and writes exactly
    /// the two balance slots (the paper folds non-contract transactions
    /// into the same constraint system without running the EVM).
    pub fn for_transfer(from: Address, to: Address) -> CSag {
        let from_key = StateKey::balance(from);
        let to_key = StateKey::balance(to);
        let mut sag = CSag {
            predicted_success: true,
            predicted_gas: dmvcc_vm::INTRINSIC_GAS,
            ..CSag::default()
        };
        sag.reads.insert(from_key);
        sag.writes.insert(from_key);
        sag.trace = vec![
            AccessEvent {
                pc: 0,
                kind: AccessKind::Read,
                key: from_key,
            },
            AccessEvent {
                pc: 0,
                kind: AccessKind::Write,
                key: from_key,
            },
        ];
        // A self-transfer's credit folds into the pending debit write (the
        // executor merges `sadd` into an own buffered full write), so only
        // a distinct recipient contributes a commutative add.
        if to_key != from_key {
            sag.adds.insert(to_key);
            sag.trace.push(AccessEvent {
                pc: 0,
                kind: AccessKind::Add,
                key: to_key,
            });
        }
        sag.last_write_pc.insert(from_key, 0);
        sag.last_write_pc.insert(to_key, 0);
        // A transfer aborts only on insufficient balance, which is checked
        // upfront: the release point is the start.
        sag.release_points = vec![ReleasePoint {
            pc: 0,
            gas_bound: 0,
        }];
        sag
    }

    /// The empty prediction of an unanalyzable transaction: no key sets,
    /// no release points, tier [`RefinementTier::Optimistic`]. The
    /// predictive executor treats it like an unknown-contract OCC
    /// fallback (dynamic insertion + stale-read aborts); the hybrid
    /// dispatcher uses the tier to count and route such transactions.
    pub fn optimistic() -> CSag {
        CSag {
            tier: RefinementTier::Optimistic,
            ..CSag::default()
        }
    }

    /// All keys the transaction touches.
    pub fn touched(&self) -> BTreeSet<StateKey> {
        let mut keys = self.reads.clone();
        keys.extend(self.writes.iter().copied());
        keys.extend(self.adds.iter().copied());
        keys
    }

    /// `true` if `other` conflicts with `self` per the paper's Definition 3:
    /// a read-write or write-read overlap on some key. Write-write overlaps
    /// do **not** conflict (write versioning), nor do add-add overlaps
    /// (commutative writes).
    pub fn conflicts_with(&self, other: &CSag) -> bool {
        // ω̄ (add) counts as a write for rw-conflict purposes: a read of the
        // key must see the merged value.
        let self_writes: BTreeSet<_> = self.writes.union(&self.adds).copied().collect();
        let other_writes: BTreeSet<_> = other.writes.union(&other.adds).copied().collect();
        self.reads.intersection(&other_writes).next().is_some()
            || other.reads.intersection(&self_writes).next().is_some()
    }
}

/// Which refinement path [`Analyzer::csag`] may take for contract calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefinementMode {
    /// Try the symbolic binding fast path first, falling back to
    /// speculative pre-execution wherever a block plan is incomplete
    /// (the default).
    #[default]
    TwoTier,
    /// Always speculatively pre-execute (the paper's baseline behaviour;
    /// useful as a differential oracle for the symbolic tier).
    SpeculativeOnly,
}

/// Configuration of the analyzer.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Fraction (0.0–1.0) of recorded accesses to *hide* from the C-SAG,
    /// simulating analysis imprecision; hidden writes surface at runtime as
    /// unpredicted writes and trigger the paper's abort machinery.
    pub hide_fraction: f64,
    /// Seed for the deterministic choice of hidden accesses.
    pub seed: u64,
    /// Refinement strategy for contract calls.
    pub refinement: RefinementMode,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            hide_fraction: 0.0,
            seed: 0,
            refinement: RefinementMode::TwoTier,
        }
    }
}

/// A host that reads from a snapshot plus a private overlay of this
/// transaction's own writes, recording everything it sees.
struct SpecHost<'a> {
    snapshot: &'a Snapshot,
    overlay: HashMap<StateKey, U256>,
    deltas: HashMap<StateKey, U256>,
    snapshot_deps: BTreeMap<StateKey, U256>,
    releases: Vec<(usize, u64)>,
}

impl Host for SpecHost<'_> {
    fn sload(&mut self, key: StateKey) -> Result<U256, HostError> {
        if let Some(&v) = self.overlay.get(&key) {
            let merged = v.wrapping_add(self.deltas.get(&key).copied().unwrap_or(U256::ZERO));
            return Ok(merged);
        }
        let base = self.snapshot.get(&key);
        self.snapshot_deps.insert(key, base);
        Ok(base.wrapping_add(self.deltas.get(&key).copied().unwrap_or(U256::ZERO)))
    }

    fn sstore(&mut self, key: StateKey, value: U256) -> Result<(), HostError> {
        self.deltas.remove(&key);
        self.overlay.insert(key, value);
        Ok(())
    }

    fn sadd(&mut self, key: StateKey, delta: U256) -> Result<(), HostError> {
        let entry = self.deltas.entry(key).or_insert(U256::ZERO);
        *entry = entry.wrapping_add(delta);
        Ok(())
    }

    fn on_release_point(&mut self, pc: usize, gas_left: u64) {
        self.releases.push((pc, gas_left));
    }
}

struct AccessRecorder {
    events: Vec<(AccessEvent, usize)>,
    depth: usize,
}

impl Tracer for AccessRecorder {
    fn on_sload(&mut self, pc: usize, key: StateKey, _value: U256) {
        self.events.push((
            AccessEvent {
                pc,
                kind: AccessKind::Read,
                key,
            },
            self.depth,
        ));
    }
    fn on_sstore(&mut self, pc: usize, key: StateKey, _value: U256) {
        self.events.push((
            AccessEvent {
                pc,
                kind: AccessKind::Write,
                key,
            },
            self.depth,
        ));
    }
    fn on_sadd(&mut self, pc: usize, key: StateKey, _delta: U256) {
        self.events.push((
            AccessEvent {
                pc,
                kind: AccessKind::Add,
                key,
            },
            self.depth,
        ));
    }
    fn on_op(&mut self, _pc: usize, op: Opcode, _gas_left: u64) {
        // BALANCE reads route through sload on the host side; nothing extra
        // to record here, but keep the hook for future opcodes.
        let _ = op;
    }
    fn on_enter_call(&mut self, depth: usize, _callee: dmvcc_primitives::Address) {
        self.depth = depth;
    }
    fn on_exit_call(&mut self, depth: usize) {
        self.depth = depth - 1;
    }
}

/// The SAG analyzer: caches P-SAGs per contract and refines them into
/// C-SAGs per transaction.
///
/// # Examples
///
/// ```
/// use dmvcc_primitives::{Address, U256};
/// use dmvcc_state::Snapshot;
/// use dmvcc_vm::{calldata, contracts, CodeRegistry, Transaction, TxEnv};
/// use dmvcc_analysis::Analyzer;
///
/// let contract = Address::from_u64(100);
/// let registry = CodeRegistry::builder()
///     .deploy(contract, contracts::counter())
///     .build();
/// let analyzer = Analyzer::new(registry);
/// let tx = Transaction::call(TxEnv::call(
///     Address::from_u64(1),
///     contract,
///     calldata(contracts::counter_fn::INCREMENT, &[]),
/// ));
/// let sag = analyzer.csag(&tx, &Snapshot::empty(), &Default::default());
/// assert_eq!(sag.adds.len(), 1);
/// assert!(sag.predicted_success);
/// ```
#[derive(Debug, Clone)]
pub struct Analyzer {
    registry: CodeRegistry,
    config: AnalysisConfig,
    psags: std::sync::Arc<parking_lot::Mutex<HashMap<Address, std::sync::Arc<crate::PSag>>>>,
}

impl Analyzer {
    /// Creates an analyzer with precise (no injected imprecision) defaults.
    pub fn new(registry: CodeRegistry) -> Self {
        Analyzer {
            registry,
            config: AnalysisConfig::default(),
            psags: Default::default(),
        }
    }

    /// Creates an analyzer with a custom configuration.
    pub fn with_config(registry: CodeRegistry, config: AnalysisConfig) -> Self {
        Analyzer {
            registry,
            config,
            psags: Default::default(),
        }
    }

    /// The code registry this analyzer resolves contracts from.
    pub fn registry(&self) -> &CodeRegistry {
        &self.registry
    }

    /// Returns (building and caching on first use) the P-SAG of the
    /// contract deployed at `address`.
    ///
    /// P-SAGs depend only on the bytecode and the registry, never on the
    /// deployment address (storage keys are relative to the *executing*
    /// contract), so they are memoized in the registry's code-hash-keyed
    /// [`dmvcc_vm::SummaryCache`]: N deployments of one token body share
    /// one analysis, and every clone of the registry (one per executor
    /// thread) shares the memo. The per-address map here only short-cuts
    /// the hash lookup.
    pub fn psag(&self, address: &Address) -> Option<std::sync::Arc<crate::PSag>> {
        if let Some(cached) = self.psags.lock().get(address) {
            return Some(cached.clone());
        }
        let code = self.registry.code(address)?;
        let hash = self
            .registry
            .code_hash(address)
            .expect("deployed code has a hash");
        let (sag, _hit) = self.registry.summaries().get_or_insert_with(hash, || {
            std::sync::Arc::new(crate::PSag::build_with(&code, Some(&self.registry)))
        });
        self.psags.lock().insert(*address, sag.clone());
        Some(sag)
    }

    /// Builds the C-SAG of `tx` against snapshot `snapshot`.
    ///
    /// For Ether transfers the result is exact ([`CSag::for_transfer`]).
    /// For contract calls, [`RefinementMode::TwoTier`] first tries to
    /// *bind* the P-SAG's symbolic templates against the transaction —
    /// no bytecode execution, only the snapshot reads the templates name —
    /// and falls back to speculative pre-execution whenever the walked
    /// path leaves the statically-planned region. Calls to unknown
    /// contracts yield an empty C-SAG (the scheduler then falls back to
    /// OCC-style handling, as the paper prescribes for missing SAGs).
    pub fn csag(&self, tx: &Transaction, snapshot: &Snapshot, block: &dmvcc_vm::BlockEnv) -> CSag {
        if !tx.analyzable {
            // Unanalyzable transactions (pool desync, obfuscated bytecode,
            // deliberate test poisoning) get no prediction at all — even
            // transfers, whose key sets would otherwise be trivial.
            return CSag::optimistic();
        }
        if tx.kind == TxKind::Transfer {
            return CSag::for_transfer(tx.sender(), tx.to());
        }
        let Some(code) = self.registry.code(&tx.to()) else {
            return CSag::default();
        };
        let psag = self.psag(&tx.to()).expect("code exists, psag builds");
        let release_set: HashSet<usize> = psag.release_pcs.iter().copied().collect();

        if self.config.refinement == RefinementMode::TwoTier {
            let resolver = |addr: &Address| self.psag(addr);
            if let Some((raw, looped, called, bounded)) =
                bind_symbolic(&psag, tx, block, snapshot, &release_set, &resolver)
            {
                let tier = if bounded {
                    RefinementTier::BoundedDynamic
                } else if called {
                    RefinementTier::Interprocedural
                } else if looped {
                    RefinementTier::LoopSummarized
                } else {
                    RefinementTier::Symbolic
                };
                return self.finish(raw, tx.env.gas_limit, &release_set, tier);
            }
        }

        let mut host = SpecHost {
            snapshot,
            overlay: HashMap::new(),
            deltas: HashMap::new(),
            snapshot_deps: BTreeMap::new(),
            releases: Vec::new(),
        };
        let mut recorder = AccessRecorder {
            events: Vec::new(),
            depth: 0,
        };
        let params = ExecParams {
            code: &code,
            tx: &tx.env,
            block,
            release_points: Some(&release_set),
            registry: Some(&self.registry),
        };
        let outcome = execute_traced(&params, &mut host, &mut recorder);
        let raw = RawPrediction {
            events: recorder.events,
            releases: host.releases,
            snapshot_deps: host.snapshot_deps,
            predicted_success: matches!(outcome.status, ExecStatus::Success),
            gas_used: outcome.gas_used,
        };
        self.finish(
            raw,
            tx.env.gas_limit,
            &release_set,
            RefinementTier::Speculative,
        )
    }

    /// Shared post-processing of both refinement tiers: release-point
    /// assembly, imprecision injection, and read/write/add set
    /// construction. Keeping this common is what makes the symbolic tier
    /// bit-identical to the speculative one whenever it binds.
    fn finish(
        &self,
        raw: RawPrediction,
        gas_limit: u64,
        release_set: &HashSet<usize>,
        tier: RefinementTier,
    ) -> CSag {
        let mut sag = CSag {
            predicted_success: raw.predicted_success,
            predicted_gas: raw.gas_used,
            snapshot_deps: raw.snapshot_deps,
            tier,
            ..CSag::default()
        };

        // Gas bound of a release point = gas it still needed on the
        // predicted path = gas_left at the point − gas_left at the end.
        let gas_left_end = gas_limit - raw.gas_used;
        for (pc, gas_left) in raw.releases {
            sag.release_points.push(ReleasePoint {
                pc,
                gas_bound: gas_left.saturating_sub(gas_left_end),
            });
        }
        // An entry release point (the contract cannot abort at all) is never
        // "passed" by the interpreter; record it explicitly so executors can
        // publish from the very first write.
        if release_set.contains(&0) {
            sag.release_points.push(ReleasePoint {
                pc: 0,
                gas_bound: raw.gas_used.saturating_sub(INTRINSIC_GAS),
            });
        }
        sag.release_points.sort_by_key(|rp| rp.pc);
        sag.release_points.dedup_by_key(|rp| rp.pc);

        // Imprecision injection: deterministically hide a fraction of the
        // *keys*. The roll is a hash of (seed, key), so a hidden key is
        // hidden consistently across every transaction and block — the
        // semantics of "the analyzer cannot see accesses to this slot".
        let hidden: BTreeSet<StateKey> = if self.config.hide_fraction > 0.0 {
            let mut hidden = BTreeSet::new();
            let keys: BTreeSet<StateKey> = raw.events.iter().map(|(e, _)| e.key).collect();
            for key in keys {
                let mut state = self.config.seed ^ 0x9e37_79b9_7f4a_7c15;
                for chunk in key.to_bytes().chunks(8) {
                    let mut word = [0u8; 8];
                    word[..chunk.len()].copy_from_slice(chunk);
                    state ^= u64::from_le_bytes(word);
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                }
                let roll = (state >> 11) as f64 / (1u64 << 53) as f64;
                if roll < self.config.hide_fraction {
                    hidden.insert(key);
                }
            }
            hidden
        } else {
            BTreeSet::new()
        };

        for (event, depth) in raw.events {
            if hidden.contains(&event.key) {
                continue;
            }
            // Writes inside nested frames cannot be matched to top-frame
            // pcs: mark them never-early-publishable (usize::MAX).
            let write_pc = if depth == 0 { event.pc } else { usize::MAX };
            match event.kind {
                AccessKind::Read => {
                    sag.reads.insert(event.key);
                }
                AccessKind::Write => {
                    sag.writes.insert(event.key);
                    sag.last_write_pc.insert(event.key, write_pc);
                }
                AccessKind::Add => {
                    sag.adds.insert(event.key);
                    sag.last_write_pc.insert(event.key, write_pc);
                }
            }
            sag.trace.push(event);
        }
        // Execution hosts fold commutative adds into a buffered full write
        // of the same key (in either order), so a key with any full write
        // ends up in the write set only; `adds` keeps pure-add keys.
        sag.adds.retain(|key| !sag.writes.contains(key));
        sag
    }
}

/// Raw facts a refinement tier produces before shared post-processing:
/// depth-tagged access events, raw release observations, snapshot
/// dependencies and the predicted outcome.
struct RawPrediction {
    events: Vec<(AccessEvent, usize)>,
    releases: Vec<(usize, u64)>,
    snapshot_deps: BTreeMap<StateKey, U256>,
    predicted_success: bool,
    gas_used: u64,
}

/// Loop-unroll budget shared by every frame of one symbolic walk: beyond
/// this many block visits the walk is cheaper to redo speculatively.
const MAX_BLOCK_VISITS: usize = 4096;

/// What one call frame of the symbolic walk produced.
struct BoundFrame {
    /// Gas left out of the frame's budget when it halted. A reverting
    /// frame keeps its remainder (the interpreter's revert semantics);
    /// the caller charges `budget - gas_left`.
    gas_left: u64,
    /// `true` for a clean halt, `false` for a revert — which, at a call
    /// site, reverts the calling frame at the call pc.
    success: bool,
    /// Return payload as 32-byte words, when the halting block's plan
    /// could shape it (`None` otherwise — call sites that need the bytes
    /// fall back).
    output: Option<Vec<U256>>,
}

/// State shared by every frame of one symbolic walk. Per-frame state —
/// `Load` bindings, φ variables, gas, the memory high-water mark — lives
/// on [`BindWalk::frame`]'s stack, mirroring the machine's frame-fresh
/// memory and per-frame gas budgets.
struct BindWalk<'a> {
    block: &'a BlockEnv,
    snapshot: &'a Snapshot,
    release_set: &'a HashSet<usize>,
    resolver: &'a dyn Fn(&Address) -> Option<std::sync::Arc<PSag>>,
    /// Top-level transaction sender (`ORIGIN`), invariant across frames.
    origin: Address,
    overlay: HashMap<StateKey, U256>,
    deltas: HashMap<StateKey, U256>,
    snapshot_deps: BTreeMap<StateKey, U256>,
    events: Vec<(AccessEvent, usize)>,
    releases: Vec<(usize, u64)>,
    visits: usize,
    looped: bool,
    called: bool,
    bounded: bool,
}

/// The symbolic fast tier: walks the contract's block plans, evaluating
/// key/value/condition templates against the concrete transaction and
/// reading only the snapshot values named by `Load` holes — no bytecode
/// is executed.
///
/// Loops are unrolled *at bind time*: crossing an edge into a φ head
/// re-binds the head's loop-carried variables from the plan's per-edge
/// assignments (all right-hand sides evaluated before any commit —
/// parallel copy), so loop-variant keys, values and trip conditions
/// evaluate concretely on every iteration.
///
/// Calls are composed *at bind time*: a summarized call site
/// ([`crate::PlanCall`]) opens a fresh frame over the callee's own plan
/// (resolved through `resolver`), with the caller's evaluated argument
/// words as calldata and the interpreter's 63/64 gas budget; the callee's
/// return words bind the caller's ret-region `Load` holes. State (overlay,
/// deltas, snapshot deps) and the access-event stream are shared across
/// frames, so cross-contract flows like flash-mint-and-repay bind exactly.
///
/// Returns `None` (fall back to speculative pre-execution) the moment the
/// walked path leaves the statically-planned region: an incomplete block
/// plan, an unresolved jump, out-of-gas or a memory fault on the walked
/// path, a φ assignment that fails to evaluate, a loop running past the
/// unroll budget, a call past the machine's depth limit, or a callee
/// output the plan could not shape. A successful walk reproduces the
/// speculative tier's observations *exactly*, including block-boundary
/// gas (release gas bounds are load-bearing: the scheduler releases locks
/// against them). The returned flags are `(looped, called)`: whether any
/// φ was bound and whether any call frame was composed.
fn bind_symbolic(
    psag: &PSag,
    tx: &Transaction,
    block: &BlockEnv,
    snapshot: &Snapshot,
    release_set: &HashSet<usize>,
    resolver: &dyn Fn(&Address) -> Option<std::sync::Arc<PSag>>,
) -> Option<(RawPrediction, bool, bool, bool)> {
    let env = &tx.env;
    if env.gas_limit < INTRINSIC_GAS {
        return None; // the interpreter prices this edge case
    }
    let mut walk = BindWalk {
        block,
        snapshot,
        release_set,
        resolver,
        origin: env.caller,
        overlay: HashMap::new(),
        deltas: HashMap::new(),
        snapshot_deps: BTreeMap::new(),
        events: Vec::new(),
        releases: Vec::new(),
        visits: 0,
        looped: false,
        called: false,
        bounded: false,
    };
    let frame = walk.frame(psag, env, env.gas_limit - INTRINSIC_GAS, 0, false)?;
    Some((
        RawPrediction {
            events: walk.events,
            releases: walk.releases,
            snapshot_deps: walk.snapshot_deps,
            predicted_success: frame.success,
            gas_used: env.gas_limit - frame.gas_left,
        },
        walk.looped,
        walk.called,
        walk.bounded,
    ))
}

impl BindWalk<'_> {
    /// Walks one call frame over `psag`'s plan with the frame environment
    /// `env` and gas budget `budget` (the top frame's limit net of
    /// intrinsic gas; a callee's 63/64 allowance — nested frames get no
    /// intrinsic deduction, matching the machine). `read_only` marks a
    /// `STATICCALL` frame (or anything nested below one): the machine
    /// reverts such a frame on any store, so a walked path that writes
    /// cannot bind block-granular gas exactly and falls back.
    fn frame(
        &mut self,
        psag: &PSag,
        env: &TxEnv,
        budget: u64,
        depth: usize,
        read_only: bool,
    ) -> Option<BoundFrame> {
        use crate::cfg::BlockExit;

        let contract = env.contract;
        let mut gas_left = budget;
        // Memory high-water mark in 32-byte words, for expansion gas.
        // Every frame starts with fresh, empty memory.
        let mut mem_words: u64 = 0;
        let mut loads: Vec<Option<U256>> = vec![None; psag.plan.load_count];
        let mut loop_vars: Vec<Option<U256>> = vec![None; psag.plan.loop_var_count];

        let mut index = 0usize;
        let (success, output) = loop {
            self.visits += 1;
            if self.visits > MAX_BLOCK_VISITS {
                return None;
            }
            let bb = &psag.cfg.blocks[index];
            let plan = &psag.plan.blocks[index];
            if !plan.complete {
                return None;
            }

            // Gas: static base + bound EXP exponents + memory expansion,
            // charged at block granularity. gas_left only ever decreases,
            // so a boundary check detects out-of-gas on the walked path
            // (the exact faulting pc does not matter — an unfinishable
            // walk falls back).
            let mut charge = plan.static_gas;
            for term in &plan.exp_terms {
                let ctx = BindCtx {
                    tx: env,
                    origin: self.origin,
                    block: self.block,
                    loads: &loads,
                    loop_vars: &loop_vars,
                };
                let exponent = term.eval(&ctx)?;
                charge += 50 * exponent.bits().div_ceil(8) as u64;
            }
            for &(offset, len) in &plan.mem_touches {
                let end = offset.checked_add(len).filter(|&e| e <= MEMORY_LIMIT)?;
                let end_words = end.div_ceil(32) as u64;
                if end_words > mem_words {
                    charge += 3 * (end_words - mem_words);
                    mem_words = end_words;
                }
            }
            if charge > gas_left {
                return None;
            }
            gas_left -= charge;

            for access in &plan.accesses {
                // A store in a read-only frame reverts the machine mid-
                // block; the lump gas charge above no longer matches, so
                // the walk cannot replicate it — speculation prices it.
                if read_only && matches!(access.kind, AccessKind::Write | AccessKind::Add) {
                    return None;
                }
                let ctx = BindCtx {
                    tx: env,
                    origin: self.origin,
                    block: self.block,
                    loads: &loads,
                    loop_vars: &loop_vars,
                };
                let key_value = access.key.expr().eval(&ctx)?;
                let key = match access.key {
                    KeyExpr::Storage(_) => StateKey::storage(contract, key_value),
                    KeyExpr::Balance(_) => StateKey::balance(Address::from_u256(key_value)),
                };
                // Mirror SpecHost's merge semantics: reads see own writes
                // plus pending commutative deltas; a full write folds the
                // delta. The overlay is shared across frames, so a callee
                // observes its caller's earlier writes and vice versa.
                match access.kind {
                    AccessKind::Read => {
                        let delta = self.deltas.get(&key).copied().unwrap_or(U256::ZERO);
                        let value = match self.overlay.get(&key) {
                            Some(&v) => v.wrapping_add(delta),
                            None => {
                                let base = self.snapshot.get(&key);
                                self.snapshot_deps.insert(key, base);
                                base.wrapping_add(delta)
                            }
                        };
                        loads[access.load?] = Some(value);
                    }
                    AccessKind::Write => {
                        let value = access.value.as_ref()?.eval(&ctx)?;
                        self.deltas.remove(&key);
                        self.overlay.insert(key, value);
                    }
                    AccessKind::Add => {
                        let delta = access.value.as_ref()?.eval(&ctx)?;
                        let entry = self.deltas.entry(key).or_insert(U256::ZERO);
                        *entry = entry.wrapping_add(delta);
                    }
                }
                self.events.push((
                    AccessEvent {
                        pc: access.pc,
                        kind: access.kind,
                        key,
                    },
                    depth,
                ));
            }

            // A summarized call is always its block's last instruction
            // (the CFG splits blocks at `CALL`), so the lump charge above
            // is exactly what the machine had charged when it computed the
            // 63/64 budget.
            if let Some(call) = &plan.call {
                self.called = true;
                if depth + 1 > CALL_DEPTH_LIMIT {
                    // The machine pushes 0 here where the plan assumed
                    // success; let speculation price that path.
                    return None;
                }
                let ctx = BindCtx {
                    tx: env,
                    origin: self.origin,
                    block: self.block,
                    loads: &loads,
                    loop_vars: &loop_vars,
                };
                let value = call.value.eval(&ctx)?;
                if !value.is_zero() && read_only {
                    // Value transfer inside a static frame: the machine
                    // reverts this frame at the call pc. The call ends its
                    // block, so the lump charge matches the machine's and
                    // the revert binds exactly.
                    break (false, None);
                }
                // Resolve the callee: a fixed address, or the bound value
                // of the registry slot the dispatch reads from (that slot's
                // earlier `SLOAD` already guards the prediction with a
                // snapshot dependency).
                let callee = match call.target {
                    CallTarget::Fixed(addr) => addr,
                    CallTarget::RegistrySlot { load } => {
                        self.bounded = true;
                        Address::from_u256(loads[load]?)
                    }
                };
                let mut input = Vec::with_capacity(call.args.len() * 32);
                for word in &call.args {
                    input.extend_from_slice(&word.eval(&ctx)?.to_be_bytes());
                }
                input.truncate(call.args_len);
                // Value plumbing, exactly as the machine does it: traced
                // read of the sending contract's balance, then either a
                // failed call (push 0, no transfer, callee not entered) or
                // a full-write debit plus a commutative credit that never
                // observes the recipient's old balance.
                let mut entered = true;
                if !value.is_zero() {
                    let sender_key = StateKey::balance(contract);
                    let delta = self.deltas.get(&sender_key).copied().unwrap_or(U256::ZERO);
                    let balance = match self.overlay.get(&sender_key) {
                        Some(&v) => v.wrapping_add(delta),
                        None => {
                            let base = self.snapshot.get(&sender_key);
                            self.snapshot_deps.insert(sender_key, base);
                            base.wrapping_add(delta)
                        }
                    };
                    self.events.push((
                        AccessEvent {
                            pc: call.pc,
                            kind: AccessKind::Read,
                            key: sender_key,
                        },
                        depth,
                    ));
                    if balance < value {
                        entered = false;
                    } else {
                        self.deltas.remove(&sender_key);
                        self.overlay.insert(sender_key, balance.wrapping_sub(value));
                        self.events.push((
                            AccessEvent {
                                pc: call.pc,
                                kind: AccessKind::Write,
                                key: sender_key,
                            },
                            depth,
                        ));
                        let recipient_key = StateKey::balance(callee);
                        let entry = self.deltas.entry(recipient_key).or_insert(U256::ZERO);
                        *entry = entry.wrapping_add(value);
                        self.events.push((
                            AccessEvent {
                                pc: call.pc,
                                kind: AccessKind::Add,
                                key: recipient_key,
                            },
                            depth,
                        ));
                    }
                }
                let callee_psag = if entered { (self.resolver)(&callee) } else { None };
                match callee_psag {
                    Some(callee_psag) => {
                        let callee_budget = gas_left - gas_left / 64;
                        let callee_env = match call.kind {
                            // Delegate frames keep the caller's identity:
                            // same storage context, caller and value.
                            PlanCallKind::Delegate => TxEnv {
                                caller: env.caller,
                                contract: env.contract,
                                value: env.value,
                                input,
                                gas_limit: callee_budget,
                            },
                            // A transferred value moved at the balance
                            // level above; the callee frame observes
                            // CALLVALUE = 0, as in the machine.
                            _ => TxEnv {
                                caller: contract,
                                contract: callee,
                                value: U256::ZERO,
                                input,
                                gas_limit: callee_budget,
                            },
                        };
                        let child_read_only = read_only || call.kind == PlanCallKind::Static;
                        let frame = self.frame(
                            &callee_psag,
                            &callee_env,
                            callee_budget,
                            depth + 1,
                            child_read_only,
                        )?;
                        gas_left -= callee_budget - frame.gas_left;
                        if !frame.success {
                            // A failing callee reverts the calling frame at
                            // the call pc; the revert propagates through
                            // every ancestor frame (and keeps each frame's
                            // gas).
                            break (false, None);
                        }
                        if let Some(id) = call.result_load {
                            loads[id] = Some(U256::ONE);
                        }
                        if call.ret_len > 0 {
                            let out = frame.output.as_ref()?;
                            let copy = (out.len() * 32).min(call.ret_len);
                            let ctx = BindCtx {
                                tx: env,
                                origin: self.origin,
                                block: self.block,
                                loads: &loads,
                                loop_vars: &loop_vars,
                            };
                            let mut bound = Vec::with_capacity(call.ret_loads.len());
                            for (w, prev) in call.prev_ret_words.iter().enumerate() {
                                bound.push(if 32 * (w + 1) <= copy {
                                    out[w]
                                } else if 32 * w >= copy {
                                    // Short callee output: the word keeps
                                    // its pre-call memory content.
                                    prev.eval(&ctx)?
                                } else {
                                    return None; // copy boundary splits the word
                                });
                            }
                            for (&id, value) in call.ret_loads.iter().zip(bound) {
                                loads[id] = Some(value);
                            }
                        }
                    }
                    None => {
                        // A failed value call, or a callee with no deployed
                        // code (trivial success): either way the callee is
                        // not entered — result 0 or 1, return region left
                        // with its pre-call contents.
                        let ctx = BindCtx {
                            tx: env,
                            origin: self.origin,
                            block: self.block,
                            loads: &loads,
                            loop_vars: &loop_vars,
                        };
                        let mut bound = Vec::with_capacity(call.ret_loads.len());
                        for prev in &call.prev_ret_words {
                            bound.push(prev.eval(&ctx)?);
                        }
                        for (&id, value) in call.ret_loads.iter().zip(bound) {
                            loads[id] = Some(value);
                        }
                        let result = if entered { U256::ONE } else { U256::ZERO };
                        match call.result_load {
                            Some(id) => loads[id] = Some(result),
                            // A zero-value no-code site is modeled as
                            // `no_code_call` at plan time, so a composed
                            // site without a result hole statically pushed
                            // 1 — only reachable here when the result is 1.
                            None if result == U256::ONE => {}
                            None => return None,
                        }
                    }
                }
            }

            let next = match bb.exit {
                BlockExit::Halt => {
                    // Shape the return payload for the caller, when the
                    // halting block's plan captured one and every word
                    // binds. `None` only hurts call sites that need the
                    // bytes (ret_len > 0) — they fall back.
                    let output = plan.output.as_ref().and_then(|words| {
                        let ctx = BindCtx {
                            tx: env,
                            origin: self.origin,
                            block: self.block,
                            loads: &loads,
                            loop_vars: &loop_vars,
                        };
                        words.iter().map(|w| w.eval(&ctx)).collect()
                    });
                    break (true, output);
                }
                BlockExit::Abort => break (false, None),
                BlockExit::FallThrough(succ) | BlockExit::Jump(succ) => succ,
                BlockExit::Branch(taken, fall) => {
                    let ctx = BindCtx {
                        tx: env,
                        origin: self.origin,
                        block: self.block,
                        loads: &loads,
                        loop_vars: &loop_vars,
                    };
                    let cond = plan.cond.as_ref()?.eval(&ctx)?;
                    if cond.is_zero() {
                        fall
                    } else {
                        taken
                    }
                }
                BlockExit::Unknown => return None,
            };
            // Same observation point as the interpreter's release
            // callback: landing on a release pc, with the gas left at
            // that moment. The machine only fires release callbacks in
            // the outermost frame.
            let next_pc = psag.cfg.blocks[next].start_pc;
            if depth == 0 && self.release_set.contains(&next_pc) {
                self.releases.push((next_pc, gas_left));
            }
            // Crossing an edge into a φ head re-binds the head's
            // loop-carried variables: every assignment's right-hand side
            // is evaluated against the pre-edge state, then all are
            // committed at once (parallel copy). An edge that misses a
            // variable, or a right-hand side that fails to evaluate,
            // falls back.
            if let Some(vars) = psag.plan.phi_heads.get(&next) {
                let assigns = psag.plan.phi_edges.get(&(index, next))?;
                let ctx = BindCtx {
                    tx: env,
                    origin: self.origin,
                    block: self.block,
                    loads: &loads,
                    loop_vars: &loop_vars,
                };
                let mut committed = Vec::with_capacity(vars.len());
                for var in vars {
                    let (_, expr) = assigns.iter().find(|(v, _)| v == var)?;
                    committed.push((*var, expr.eval(&ctx)?));
                }
                for (var, value) in committed {
                    loop_vars[var] = Some(value);
                }
                self.looped = true;
            }
            index = next;
        };

        Some(BoundFrame {
            gas_left,
            success,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;
    use dmvcc_vm::{calldata, contracts, BlockEnv, TxEnv};

    const TOKEN: u64 = 100;
    const COUNTER: u64 = 101;
    const FIG1: u64 = 102;
    const AMM: u64 = 103;
    const ROUTER: u64 = 104;
    const TOKEN_A: u64 = 105;
    const TOKEN_B: u64 = 106;
    const ROUTER2: u64 = 107;
    const FLASH: u64 = 108;
    const ORACLE: u64 = 109;
    const CONSUMER1: u64 = 110;
    const CONSUMER2: u64 = 111;
    const DROP: u64 = 112;
    const SPLITTER: u64 = 113;
    const FLOOR: u64 = 114;

    fn analyzer() -> Analyzer {
        let amm_addr = Address::from_u64(AMM);
        let token_a = Address::from_u64(TOKEN_A);
        let token_b = Address::from_u64(TOKEN_B);
        let consumers = [Address::from_u64(CONSUMER1), Address::from_u64(CONSUMER2)];
        let splitter = Address::from_u64(SPLITTER);
        let floor = Address::from_u64(FLOOR);
        let registry = CodeRegistry::builder()
            .deploy(Address::from_u64(DROP), contracts::nft_drop(splitter, floor))
            .deploy(splitter, contracts::royalty_splitter())
            .deploy(floor, contracts::floor_oracle())
            .deploy(Address::from_u64(TOKEN), contracts::token())
            .deploy(Address::from_u64(COUNTER), contracts::counter())
            .deploy(Address::from_u64(FIG1), contracts::fig1_example())
            .deploy(amm_addr, contracts::amm())
            .deploy(Address::from_u64(ROUTER), contracts::dex_router(amm_addr))
            .deploy(token_a, contracts::token())
            .deploy(token_b, contracts::token())
            .deploy(
                Address::from_u64(ROUTER2),
                contracts::dex_router2(amm_addr, token_a, token_b),
            )
            .deploy(Address::from_u64(FLASH), contracts::flash_mint(token_a))
            .deploy(Address::from_u64(ORACLE), contracts::oracle(&consumers))
            .deploy(consumers[0], contracts::price_consumer())
            .deploy(consumers[1], contracts::price_consumer())
            .build();
        Analyzer::new(registry)
    }

    /// AMM pool seeded with reserves 1000/4000.
    fn amm_snapshot() -> Snapshot {
        let amm_addr = Address::from_u64(AMM);
        Snapshot::from_entries([
            (StateKey::storage(amm_addr, U256::ZERO), U256::from(1000u64)),
            (StateKey::storage(amm_addr, U256::ONE), U256::from(4000u64)),
        ])
    }

    fn call_tx(contract: u64, caller: u64, selector: u64, args: &[U256]) -> Transaction {
        Transaction::call(TxEnv::call(
            Address::from_u64(caller),
            Address::from_u64(contract),
            calldata(selector, args),
        ))
    }

    #[test]
    fn transfer_csag_is_exact() {
        let from = Address::from_u64(1);
        let to = Address::from_u64(2);
        let sag = CSag::for_transfer(from, to);
        assert!(sag.reads.contains(&StateKey::balance(from)));
        assert!(sag.writes.contains(&StateKey::balance(from)));
        assert!(sag.adds.contains(&StateKey::balance(to)));
        assert!(sag.predicted_success);
    }

    #[test]
    fn counter_increment_predicts_single_add() {
        let a = analyzer();
        let tx = call_tx(COUNTER, 1, contracts::counter_fn::INCREMENT, &[]);
        let sag = a.csag(&tx, &Snapshot::empty(), &BlockEnv::default());
        assert_eq!(sag.adds.len(), 1);
        assert!(sag.reads.is_empty());
        assert!(sag.writes.is_empty());
        assert!(sag.predicted_success);
        // Counter cannot abort → release point at entry with gas bound
        // covering the whole body.
        assert_eq!(sag.release_points.len(), 1);
        assert_eq!(sag.release_points[0].pc, 0);
        assert_eq!(
            sag.release_points[0].gas_bound,
            sag.predicted_gas - dmvcc_vm::INTRINSIC_GAS
        );
    }

    #[test]
    fn token_transfer_prediction() {
        let a = analyzer();
        let alice = Address::from_u64(1);
        let alice_slot = contracts::map_slot(alice.to_u256(), 1);
        let bob_slot = contracts::map_slot(Address::from_u64(2).to_u256(), 1);
        let key_alice = StateKey::storage(Address::from_u64(TOKEN), alice_slot);
        let key_bob = StateKey::storage(Address::from_u64(TOKEN), bob_slot);

        // Fund alice in the snapshot so the transfer succeeds.
        let snapshot = Snapshot::from_entries([(key_alice, U256::from(100u64))]);
        let tx = call_tx(
            TOKEN,
            1,
            contracts::token_fn::TRANSFER,
            &[Address::from_u64(2).to_u256(), U256::from(30u64)],
        );
        let sag = a.csag(&tx, &snapshot, &BlockEnv::default());
        assert!(sag.predicted_success);
        assert!(sag.reads.contains(&key_alice));
        assert!(sag.writes.contains(&key_alice));
        assert!(sag.adds.contains(&key_bob));
        // The snapshot dependency on alice's balance is recorded.
        assert_eq!(sag.snapshot_deps.get(&key_alice), Some(&U256::from(100u64)));
        // There is a release point after the balance check, with a positive
        // gas bound smaller than the whole execution.
        assert!(!sag.release_points.is_empty());
        let rp = sag.release_points[0];
        assert!(rp.gas_bound > 0);
        assert!(rp.gas_bound < sag.predicted_gas);
    }

    #[test]
    fn token_transfer_failure_predicted() {
        let a = analyzer();
        let tx = call_tx(
            TOKEN,
            1,
            contracts::token_fn::TRANSFER,
            &[Address::from_u64(2).to_u256(), U256::from(30u64)],
        );
        // Empty snapshot: alice has no balance → revert predicted.
        let sag = a.csag(&tx, &Snapshot::empty(), &BlockEnv::default());
        assert!(!sag.predicted_success);
    }

    #[test]
    fn fig1_key_resolution_via_snapshot() {
        let a = analyzer();
        let x = Address::from_u64(42).to_u256();
        let a_slot = contracts::map_slot(x, 0);
        let key_ax = StateKey::storage(Address::from_u64(FIG1), a_slot);
        // Snapshot: A[x] = 3 → branch 1, loop unrolls twice, touching
        // B[3], B[2] (writes) and B[1], B[0] (reads).
        let snapshot = Snapshot::from_entries([(key_ax, U256::from(3u64))]);
        let tx = call_tx(
            FIG1,
            1,
            contracts::fig1_fn::UPDATE_B,
            &[x, U256::from(4u64)],
        );
        let sag = a.csag(&tx, &snapshot, &BlockEnv::default());
        assert!(sag.predicted_success);
        let b = |i: u64| StateKey::storage(Address::from_u64(FIG1), contracts::fig1_b_slot(i));
        assert!(sag.writes.contains(&b(3)));
        assert!(sag.writes.contains(&b(2)));
        assert!(sag.reads.contains(&b(1)));
        assert!(sag.reads.contains(&b(0)));
        // The prediction depends on the snapshot value of A[x].
        assert!(sag.snapshot_deps.contains_key(&key_ax));
        // With A[x] = 0 the other branch is taken: B[0], B[1] written.
        let sag2 = a.csag(&tx, &Snapshot::empty(), &BlockEnv::default());
        assert!(sag2.writes.contains(&b(0)));
        assert!(sag2.writes.contains(&b(1)));
        assert!(!sag2.writes.contains(&b(3)));
    }

    #[test]
    fn conflicts_follow_definition_3() {
        let a = analyzer();
        let snapshot = {
            let alice_slot = contracts::map_slot(Address::from_u64(1).to_u256(), 1);
            Snapshot::from_entries([(
                StateKey::storage(Address::from_u64(TOKEN), alice_slot),
                U256::from(1000u64),
            )])
        };
        let block = BlockEnv::default();
        // Two transfers from the same sender: rw-conflict on the sender
        // balance.
        let t1 = call_tx(
            TOKEN,
            1,
            contracts::token_fn::TRANSFER,
            &[Address::from_u64(2).to_u256(), U256::from(1u64)],
        );
        let t2 = call_tx(
            TOKEN,
            1,
            contracts::token_fn::TRANSFER,
            &[Address::from_u64(3).to_u256(), U256::from(1u64)],
        );
        let s1 = a.csag(&t1, &snapshot, &block);
        let s2 = a.csag(&t2, &snapshot, &block);
        assert!(s1.conflicts_with(&s2));

        // Two mints to different accounts: no conflict (adds commute, and
        // the shared totalSupply is also an add).
        let m1 = call_tx(
            TOKEN,
            1,
            contracts::token_fn::MINT,
            &[Address::from_u64(7).to_u256(), U256::from(1u64)],
        );
        let m2 = call_tx(
            TOKEN,
            2,
            contracts::token_fn::MINT,
            &[Address::from_u64(8).to_u256(), U256::from(1u64)],
        );
        let sm1 = a.csag(&m1, &snapshot, &block);
        let sm2 = a.csag(&m2, &snapshot, &block);
        assert!(!sm1.conflicts_with(&sm2));

        // Counter increments (pure adds) never conflict with each other.
        let c1 = call_tx(COUNTER, 1, contracts::counter_fn::INCREMENT, &[]);
        let sc1 = a.csag(&c1, &snapshot, &block);
        let sc2 = a.csag(&c1, &snapshot, &block);
        assert!(!sc1.conflicts_with(&sc2));
        // But a checked increment (read-modify-write) conflicts with an add.
        let c3 = call_tx(COUNTER, 1, contracts::counter_fn::INCREMENT_CHECKED, &[]);
        let sc3 = a.csag(&c3, &snapshot, &block);
        assert!(sc1.conflicts_with(&sc3));
    }

    #[test]
    fn unknown_contract_yields_empty_sag() {
        let a = analyzer();
        let tx = call_tx(999, 1, 1, &[]);
        let sag = a.csag(&tx, &Snapshot::empty(), &BlockEnv::default());
        assert!(sag.touched().is_empty());
        assert!(sag.trace.is_empty());
    }

    #[test]
    fn hide_fraction_drops_keys_deterministically() {
        let registry = analyzer().registry().clone();
        let full = Analyzer::new(registry.clone());
        let lossy = Analyzer::with_config(
            registry,
            AnalysisConfig {
                hide_fraction: 1.0,
                seed: 7,
                ..AnalysisConfig::default()
            },
        );
        let tx = call_tx(COUNTER, 1, contracts::counter_fn::INCREMENT, &[]);
        let snapshot = Snapshot::empty();
        let block = BlockEnv::default();
        let full_sag = full.csag(&tx, &snapshot, &block);
        let lossy_sag = lossy.csag(&tx, &snapshot, &block);
        assert_eq!(full_sag.adds.len(), 1);
        assert_eq!(lossy_sag.adds.len(), 0, "hide_fraction=1 hides everything");
        // Determinism: same seed, same result.
        let lossy_sag2 = Analyzer::with_config(
            full.registry().clone(),
            AnalysisConfig {
                hide_fraction: 1.0,
                seed: 7,
                ..AnalysisConfig::default()
            },
        )
        .csag(&tx, &snapshot, &block);
        assert_eq!(lossy_sag.adds.len(), lossy_sag2.adds.len());
    }

    /// Everything except `tier` must agree between the two refinement
    /// tiers — the symbolic walk is only allowed to exist because it is
    /// bit-identical to speculation whenever it binds.
    fn assert_same_prediction(symbolic: &CSag, speculative: &CSag, what: &str) {
        assert_eq!(symbolic.reads, speculative.reads, "{what}: reads");
        assert_eq!(symbolic.writes, speculative.writes, "{what}: writes");
        assert_eq!(symbolic.adds, speculative.adds, "{what}: adds");
        assert_eq!(symbolic.trace, speculative.trace, "{what}: trace");
        assert_eq!(
            symbolic.release_points, speculative.release_points,
            "{what}: release points"
        );
        assert_eq!(
            symbolic.last_write_pc, speculative.last_write_pc,
            "{what}: last_write_pc"
        );
        assert_eq!(
            symbolic.snapshot_deps, speculative.snapshot_deps,
            "{what}: snapshot_deps"
        );
        assert_eq!(
            symbolic.predicted_success, speculative.predicted_success,
            "{what}: predicted_success"
        );
        assert_eq!(
            symbolic.predicted_gas, speculative.predicted_gas,
            "{what}: predicted_gas"
        );
    }

    #[test]
    fn symbolic_tier_matches_speculation_exactly() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let alice_slot = contracts::map_slot(Address::from_u64(1).to_u256(), 1);
        let snapshot = Snapshot::from_entries([(
            StateKey::storage(Address::from_u64(TOKEN), alice_slot),
            U256::from(100u64),
        )]);
        let block = BlockEnv::default();
        let cases = [
            (
                "counter add",
                call_tx(COUNTER, 1, contracts::counter_fn::INCREMENT, &[]),
            ),
            (
                "token transfer (succeeds)",
                call_tx(
                    TOKEN,
                    1,
                    contracts::token_fn::TRANSFER,
                    &[Address::from_u64(2).to_u256(), U256::from(30u64)],
                ),
            ),
            (
                "token transfer (reverts)",
                call_tx(
                    TOKEN,
                    3,
                    contracts::token_fn::TRANSFER,
                    &[Address::from_u64(2).to_u256(), U256::from(30u64)],
                ),
            ),
        ];
        for (what, tx) in cases {
            let s = two_tier.csag(&tx, &snapshot, &block);
            let p = speculative.csag(&tx, &snapshot, &block);
            assert_eq!(s.tier, RefinementTier::Symbolic, "{what}: expected a bind");
            assert_eq!(p.tier, RefinementTier::Speculative);
            assert_same_prediction(&s, &p, what);
        }
    }

    #[test]
    fn loop_paths_bind_loop_summarized_and_match_speculation() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let x = Address::from_u64(42).to_u256();
        let key_ax = StateKey::storage(Address::from_u64(FIG1), contracts::map_slot(x, 0));
        // A[x] = 3 steers fig1's UpdateB into its for-loop. The loop's
        // carried counter is a φ variable now, so the two-tier analyzer
        // unrolls at bind time instead of falling back — and must still be
        // bit-identical to the pure speculative analyzer.
        let snapshot = Snapshot::from_entries([(key_ax, U256::from(3u64))]);
        let tx = call_tx(
            FIG1,
            1,
            contracts::fig1_fn::UPDATE_B,
            &[x, U256::from(4u64)],
        );
        let s = two_tier.csag(&tx, &snapshot, &BlockEnv::default());
        let p = speculative.csag(&tx, &snapshot, &BlockEnv::default());
        assert_eq!(s.tier, RefinementTier::LoopSummarized);
        assert_eq!(p.tier, RefinementTier::Speculative);
        assert!(s.predicted_success);
        assert_same_prediction(&s, &p, "fig1 loop");
    }

    /// Every router path — the read-only quote (whose return data feeds
    /// the caller's arithmetic), the two-frame swap, the caller-side
    /// slippage revert between the two calls — must bind on the
    /// interprocedural tier and agree bit-for-bit with speculation.
    #[test]
    fn router_calls_bind_interprocedural_and_match_speculation() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let snapshot = amm_snapshot();
        let block = BlockEnv::default();
        let cases = [
            (
                "router quote",
                call_tx(
                    ROUTER,
                    1,
                    contracts::router_fn::QUOTE,
                    &[U256::from(100u64)],
                ),
                true,
            ),
            (
                "router swap (succeeds)",
                call_tx(
                    ROUTER,
                    1,
                    contracts::router_fn::SWAP_EXACT,
                    &[U256::from(100u64), U256::from(300u64)],
                ),
                true,
            ),
            (
                "router swap (slippage revert between calls)",
                call_tx(
                    ROUTER,
                    1,
                    contracts::router_fn::SWAP_EXACT,
                    &[U256::from(100u64), U256::from(10_000u64)],
                ),
                false,
            ),
        ];
        for (what, tx, expect_success) in cases {
            let s = two_tier.csag(&tx, &snapshot, &block);
            let p = speculative.csag(&tx, &snapshot, &block);
            assert_eq!(
                s.tier,
                RefinementTier::Interprocedural,
                "{what}: expected a composed bind"
            );
            assert_eq!(p.tier, RefinementTier::Speculative);
            assert_eq!(s.predicted_success, expect_success, "{what}");
            assert_same_prediction(&s, &p, what);
        }
    }

    /// The successful swap's prediction sees *through* the call: the
    /// callee's reserve writes and the router's credit show up under the
    /// pool's address, with nested-frame write pcs opaque to early-write
    /// visibility (a caller pc cannot order a callee's write).
    #[test]
    fn interprocedural_bind_predicts_callee_state_effects() {
        let a = analyzer();
        let amm_addr = Address::from_u64(AMM);
        let tx = call_tx(
            ROUTER,
            1,
            contracts::router_fn::SWAP_EXACT,
            &[U256::from(100u64), U256::from(300u64)],
        );
        let sag = a.csag(&tx, &amm_snapshot(), &BlockEnv::default());
        assert_eq!(sag.tier, RefinementTier::Interprocedural);
        assert!(sag.predicted_success);
        let r0 = StateKey::storage(amm_addr, U256::ZERO);
        let r1 = StateKey::storage(amm_addr, U256::ONE);
        assert!(sag.writes.contains(&r0), "reserve A write-through");
        assert!(sag.writes.contains(&r1), "reserve B write-through");
        // The swap credits CALLER — which in the nested frame is the
        // *router*, not the transaction sender.
        let credit = StateKey::storage(
            amm_addr,
            contracts::map_slot(Address::from_u64(ROUTER).to_u256(), 2),
        );
        assert!(sag.adds.contains(&credit), "router credited inside pool");
        // Both reserves were consumed from the snapshot.
        assert_eq!(sag.snapshot_deps.get(&r0), Some(&U256::from(1000u64)));
        assert_eq!(sag.snapshot_deps.get(&r1), Some(&U256::from(4000u64)));
        // Callee-frame writes must not advertise caller-frame pcs.
        assert_eq!(sag.last_write_pc.get(&r0), Some(&usize::MAX));
    }

    /// A callee that reverts (the AMM rejects zero-amount swaps) reverts
    /// the *caller's* frame at the call pc; the bound prediction must
    /// mirror the interpreter's revert-frame semantics — same verdict,
    /// same gas, same access trace — which the speculative tier measures
    /// on the real machine.
    #[test]
    fn reverting_callee_matches_interpreter_revert_semantics() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        // amount_in = 0 passes the router's slippage check (0 < 0 is
        // false) and reverts inside the AMM's swap frame.
        let tx = call_tx(
            ROUTER,
            1,
            contracts::router_fn::SWAP_EXACT,
            &[U256::ZERO, U256::ZERO],
        );
        let snapshot = amm_snapshot();
        let block = BlockEnv::default();
        let s = two_tier.csag(&tx, &snapshot, &block);
        let p = speculative.csag(&tx, &snapshot, &block);
        assert_eq!(s.tier, RefinementTier::Interprocedural);
        assert!(!s.predicted_success, "callee revert fails the whole tx");
        assert_same_prediction(&s, &p, "callee revert");
    }

    /// The aggregator swap spans four frames (router → pool reserves →
    /// tokenA.transferFrom → pool swap → tokenB.transfer): the deepest
    /// stress case for composed binding. The walk must thread the
    /// callee's return data into the caller's arithmetic, rebind CALLER
    /// per frame, and stay bit-identical to speculation — on the happy
    /// path and when the unapproved trader makes a mid-chain callee
    /// revert.
    #[test]
    fn aggregator_swap_binds_across_four_frames() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let trader = Address::from_u64(1);
        let amm_addr = Address::from_u64(AMM);
        let token_a = Address::from_u64(TOKEN_A);
        let token_b = Address::from_u64(TOKEN_B);
        let router2 = Address::from_u64(ROUTER2);
        let snapshot = Snapshot::from_entries([
            (StateKey::storage(amm_addr, U256::ZERO), U256::from(1000u64)),
            (StateKey::storage(amm_addr, U256::ONE), U256::from(4000u64)),
            (
                StateKey::storage(token_a, contracts::map_slot(trader.to_u256(), 1)),
                U256::from(500u64),
            ),
            (
                StateKey::storage(
                    token_a,
                    contracts::map_slot2(trader.to_u256(), router2.to_u256(), 2),
                ),
                U256::from(500u64),
            ),
            (
                StateKey::storage(token_b, contracts::map_slot(router2.to_u256(), 1)),
                U256::from(10_000u64),
            ),
        ]);
        let block = BlockEnv::default();
        let tx = call_tx(
            ROUTER2,
            1,
            contracts::router2_fn::SWAP,
            &[U256::from(100u64), U256::from(300u64)],
        );
        let s = two_tier.csag(&tx, &snapshot, &block);
        let p = speculative.csag(&tx, &snapshot, &block);
        assert_eq!(s.tier, RefinementTier::Interprocedural);
        assert!(s.predicted_success);
        assert_same_prediction(&s, &p, "aggregator swap");
        // One transaction, keys under three distinct contracts.
        assert!(s.writes.contains(&StateKey::storage(amm_addr, U256::ZERO)));
        assert!(s.writes.contains(&StateKey::storage(
            token_a,
            contracts::map_slot(trader.to_u256(), 1)
        )));
        assert!(s.adds.contains(&StateKey::storage(
            token_b,
            contracts::map_slot(trader.to_u256(), 1)
        )));
        // An unapproved trader fails inside tokenA.transferFrom (frame 2
        // of 4) — still bound, still bit-identical.
        let broke = call_tx(
            ROUTER2,
            2,
            contracts::router2_fn::SWAP,
            &[U256::from(100u64), U256::ZERO],
        );
        let s = two_tier.csag(&broke, &snapshot, &block);
        let p = speculative.csag(&broke, &snapshot, &block);
        assert_eq!(s.tier, RefinementTier::Interprocedural);
        assert!(!s.predicted_success);
        assert_same_prediction(&s, &p, "aggregator swap (unapproved)");
    }

    /// Flash-mint's repay only binds because sub-frames share one
    /// overlay: tokenA.transferFrom in frame 2 must see the balance that
    /// tokenA.mint credited in frame 1, else the walk would predict an
    /// insufficient-balance revert that the machine never takes.
    #[test]
    fn flash_mint_repay_sees_minted_balance_across_frames() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let borrower = Address::from_u64(1);
        let token_a = Address::from_u64(TOKEN_A);
        let flash = Address::from_u64(FLASH);
        // Only the approval is pre-seeded — the principal exists solely
        // inside the transaction.
        let snapshot = Snapshot::from_entries([(
            StateKey::storage(
                token_a,
                contracts::map_slot2(borrower.to_u256(), flash.to_u256(), 2),
            ),
            U256::from(1_000_000u64),
        )]);
        let block = BlockEnv::default();
        let tx = call_tx(
            FLASH,
            1,
            contracts::flash_fn::FLASH,
            &[U256::from(5_000u64)],
        );
        let s = two_tier.csag(&tx, &snapshot, &block);
        let p = speculative.csag(&tx, &snapshot, &block);
        assert_eq!(s.tier, RefinementTier::Interprocedural);
        assert!(s.predicted_success, "repay must see the minted balance");
        assert_same_prediction(&s, &p, "flash mint");
        // The fee tab is an add under the flash contract itself.
        assert!(s.adds.contains(&StateKey::storage(
            flash,
            contracts::map_slot(borrower.to_u256(), 0)
        )));
        // Without the approval the repay pull reverts in frame 2 and the
        // prediction tracks that too.
        let s = two_tier.csag(&tx, &Snapshot::empty(), &block);
        let p = speculative.csag(&tx, &Snapshot::empty(), &block);
        assert_eq!(s.tier, RefinementTier::Interprocedural);
        assert!(!s.predicted_success);
        assert_same_prediction(&s, &p, "flash mint (unapproved)");
    }

    /// An oracle update fans out one call per subscribed consumer; the
    /// composed prediction covers every consumer's slots so the
    /// scheduler sees the full conflict footprint up front.
    #[test]
    fn oracle_fanout_predicts_every_consumer() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let block = BlockEnv::default();
        let tx = call_tx(
            ORACLE,
            1,
            contracts::oracle_fn::UPDATE,
            &[U256::from(777u64)],
        );
        let s = two_tier.csag(&tx, &Snapshot::empty(), &block);
        let p = speculative.csag(&tx, &Snapshot::empty(), &block);
        assert_eq!(s.tier, RefinementTier::Interprocedural);
        assert!(s.predicted_success);
        assert_same_prediction(&s, &p, "oracle fanout");
        for consumer in [CONSUMER1, CONSUMER2] {
            let addr = Address::from_u64(consumer);
            assert!(
                s.writes.contains(&StateKey::storage(addr, U256::ZERO)),
                "consumer {consumer} price write predicted"
            );
            assert!(
                s.adds.contains(&StateKey::storage(addr, U256::ONE)),
                "consumer {consumer} counter add predicted"
            );
        }
    }

    #[test]
    fn transfers_are_exact_tier() {
        let sag = CSag::for_transfer(Address::from_u64(1), Address::from_u64(2));
        assert_eq!(sag.tier, RefinementTier::Exact);
    }

    #[test]
    fn psag_cache_hits() {
        let a = analyzer();
        let addr = Address::from_u64(COUNTER);
        let first = a.psag(&addr).expect("counter deployed");
        let second = a.psag(&addr).expect("cached");
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert!(a.psag(&Address::from_u64(999)).is_none());
    }

    #[test]
    fn psag_summaries_are_shared_by_code_hash() {
        // TOKEN, TOKEN_A and TOKEN_B deploy the same bytecode: the first
        // summary build is a miss, the other two addresses hit the
        // code-hash memo and share the same Arc.
        let a = analyzer();
        let first = a.psag(&Address::from_u64(TOKEN)).unwrap();
        let hits_before = a.registry().summaries().hits();
        let second = a.psag(&Address::from_u64(TOKEN_A)).unwrap();
        let third = a.psag(&Address::from_u64(TOKEN_B)).unwrap();
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        assert!(std::sync::Arc::ptr_eq(&first, &third));
        assert_eq!(a.registry().summaries().hits(), hits_before + 2);
    }

    /// The mint-rush snapshot: drop priced at 100 with a funded treasury,
    /// creator registered in slot 2, floor oracle at 55.
    fn mint_rush_snapshot(treasury: u64) -> Snapshot {
        let drop_addr = Address::from_u64(DROP);
        Snapshot::from_entries([
            (StateKey::storage(drop_addr, U256::ONE), U256::from(100u64)),
            (
                StateKey::storage(drop_addr, U256::from(2u64)),
                Address::from_u64(777).to_u256(),
            ),
            (StateKey::balance(drop_addr), U256::from(treasury)),
            (
                StateKey::storage(Address::from_u64(FLOOR), U256::ZERO),
                U256::from(55u64),
            ),
        ])
    }

    /// `mint()` chains every new call shape: a DELEGATECALL into the
    /// splitter (whose writes land in the *drop's* storage), a
    /// value-transferring CALL (implicit balance keys), and a registry-slot
    /// recipient (bounded dynamic dispatch). The bind must carry the
    /// bounded tier and agree bit-for-bit with speculation.
    #[test]
    fn nft_mint_binds_bounded_dynamic_and_matches_speculation() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let block = BlockEnv::default();
        let snapshot = mint_rush_snapshot(1000);
        let tx = call_tx(DROP, 1, contracts::drop_fn::MINT, &[]);
        let s = two_tier.csag(&tx, &snapshot, &block);
        let p = speculative.csag(&tx, &snapshot, &block);
        assert_eq!(s.tier, RefinementTier::BoundedDynamic);
        assert_eq!(p.tier, RefinementTier::Speculative);
        assert!(s.predicted_success);
        assert_same_prediction(&s, &p, "nft mint");

        let drop_addr = Address::from_u64(DROP);
        // Context rebinding: the borrowed splitter body writes the drop's
        // fee tab, never its own storage.
        assert!(s
            .adds
            .contains(&StateKey::storage(drop_addr, U256::from(3u64))));
        assert!(!s
            .trace
            .iter()
            .any(|event| event.key.address == Address::from_u64(SPLITTER)));
        // The value transfer shows up as implicit balance keys: debit on
        // the drop's treasury, commutative credit on the creator.
        assert!(s.writes.contains(&StateKey::balance(drop_addr)));
        assert!(s.adds.contains(&StateKey::balance(Address::from_u64(777))));
    }

    /// A treasury too small for the royalty pays out nothing: the inner
    /// value call fails, the splitter reverts, and the revert must
    /// propagate out of the DELEGATECALL in the bind exactly as the
    /// machine does it.
    #[test]
    fn nft_mint_with_short_treasury_predicts_revert() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let block = BlockEnv::default();
        let snapshot = mint_rush_snapshot(5);
        let tx = call_tx(DROP, 1, contracts::drop_fn::MINT, &[]);
        let s = two_tier.csag(&tx, &snapshot, &block);
        let p = speculative.csag(&tx, &snapshot, &block);
        assert_eq!(s.tier, RefinementTier::BoundedDynamic);
        assert!(!s.predicted_success);
        assert_same_prediction(&s, &p, "nft mint (short treasury)");
        // The failed transfer never credits the creator.
        assert!(!s.adds.contains(&StateKey::balance(Address::from_u64(777))));
    }

    /// `preview()` STATICCALLs the write-free floor oracle: a read-only
    /// composed frame that binds on the interprocedural tier (the callee
    /// is a fixed address) with the oracle's slot in the read set.
    #[test]
    fn nft_preview_staticcall_binds_and_matches_speculation() {
        let registry = analyzer().registry().clone();
        let two_tier = Analyzer::new(registry.clone());
        let speculative = Analyzer::with_config(
            registry,
            AnalysisConfig {
                refinement: RefinementMode::SpeculativeOnly,
                ..AnalysisConfig::default()
            },
        );
        let block = BlockEnv::default();
        let snapshot = mint_rush_snapshot(1000);
        let tx = call_tx(DROP, 1, contracts::drop_fn::PREVIEW, &[]);
        let s = two_tier.csag(&tx, &snapshot, &block);
        let p = speculative.csag(&tx, &snapshot, &block);
        assert_eq!(s.tier, RefinementTier::Interprocedural);
        assert!(s.predicted_success);
        assert_same_prediction(&s, &p, "nft preview");
        assert!(s
            .reads
            .contains(&StateKey::storage(Address::from_u64(FLOOR), U256::ZERO)));
        assert!(s.writes.is_empty());
        assert!(s.adds.is_empty());
    }
}
