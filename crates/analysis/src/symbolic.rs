//! Symbolic expressions over transaction inputs.
//!
//! The abstract interpretation pass ([`crate::absint`]) executes contract
//! code over this domain: a value is either a constant, a named piece of
//! the transaction environment (calldata word, caller, value, block
//! fields), the result of an earlier storage read (`Load`), a Keccak-256
//! mapping-key computation over such values, or arithmetic over them.
//! Anything the domain cannot express collapses to [`SymExpr::Unknown`].
//!
//! A closed expression (one without `Unknown`) is a *template*: C-SAG
//! refinement binds it against a concrete transaction by substituting
//! calldata and the few snapshot values the `Load` nodes name, which is
//! what makes the symbolic tier cheap relative to speculative
//! pre-execution.

use core::fmt;

use dmvcc_primitives::{keccak256, Address, U256};
use dmvcc_vm::{word_at, BlockEnv, TxEnv};

/// Unary operators of the symbolic domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `a == 0`.
    IsZero,
    /// Bitwise not.
    Not,
}

/// Binary operators of the symbolic domain. Operands are kept in *pop
/// order* — `(a, b)` is exactly what the interpreter's `binary` helper
/// sees — so evaluation can mirror the interpreter verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b` (wrapping).
    Add,
    /// `a * b` (wrapping).
    Mul,
    /// `a - b` (wrapping).
    Sub,
    /// `a / b` (`0` on division by zero).
    Div,
    /// Signed division.
    SDiv,
    /// `a % b`.
    Mod,
    /// Signed modulo.
    SMod,
    /// `b` sign-extended from byte position `a`.
    SignExtend,
    /// `a ** b` (wrapping).
    Exp,
    /// `a < b`.
    Lt,
    /// `a > b`.
    Gt,
    /// Signed `a < b`.
    Slt,
    /// Signed `a > b`.
    Sgt,
    /// `a == b`.
    Eq,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Byte `a` of `b`, most-significant first.
    Byte,
    /// `b << a` (shift in `a`, value in `b` — pop order).
    Shl,
    /// `b >> a`.
    Shr,
    /// Arithmetic right shift of `b` by `a`.
    Sar,
}

/// A symbolic value: the abstract domain of the analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SymExpr {
    /// Not representable in the domain (⊤) — e.g. `GAS`, `MSIZE`, loop-
    /// variant memory, or a join of two different expressions.
    Unknown,
    /// A compile-time constant.
    Const(U256),
    /// `word_at(tx.input, offset)` — a calldata argument.
    CallDataWord(usize),
    /// The calldata length in bytes.
    CallDataSize,
    /// The current frame's sender (`CALLER`). At the top frame this is
    /// the transaction sender; in a composed callee frame the caller
    /// contract's address is substituted at the call site.
    Caller,
    /// The top-level transaction sender (`ORIGIN`), invariant across
    /// nested call frames.
    Origin,
    /// The executing contract's address.
    SelfAddr,
    /// The transaction's attached value.
    CallValue,
    /// The block number.
    BlockNumber,
    /// The block timestamp.
    BlockTimestamp,
    /// The value produced by the plan's read access with this id,
    /// bound during the C-SAG walk (a `snapshot_deps` template hole).
    Load(usize),
    /// A loop-carried value (a φ at a loop head): the analysis cannot
    /// name it in closed form, but the C-SAG walk can — on every back
    /// edge the walk re-binds the variable from the plan's per-edge
    /// assignment (see [`crate::absint::ContractPlan::phi_edges`]),
    /// which is what "unrolling the loop at bind time" means.
    LoopVar(usize),
    /// Keccak-256 over a word-tiled memory image — the mapping-key shape
    /// `keccak(key ++ slot)` solidity emits.
    Keccak(Vec<SymExpr>),
    /// A unary operation.
    Unary(UnOp, Box<SymExpr>),
    /// A binary operation over operands in pop order.
    Binary(BinOp, Box<SymExpr>, Box<SymExpr>),
}

/// Everything needed to evaluate a template against one transaction.
pub struct BindCtx<'a> {
    /// The frame environment being bound (synthetic for callee frames).
    pub tx: &'a TxEnv,
    /// The top-level transaction sender (`ORIGIN` across every frame).
    pub origin: Address,
    /// The block environment.
    pub block: &'a BlockEnv,
    /// Values produced by read accesses earlier in the walk, by load id.
    pub loads: &'a [Option<U256>],
    /// Current values of the loop-carried φ variables, by variable id
    /// (re-bound by the walk on every loop-head edge).
    pub loop_vars: &'a [Option<U256>],
}

/// Applies `op` to operands in pop order, mirroring the interpreter.
pub fn apply_bin(op: BinOp, a: U256, b: U256) -> U256 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Div => a / b,
        BinOp::SDiv => a.sdiv(b),
        BinOp::Mod => a % b,
        BinOp::SMod => a.smod(b),
        BinOp::SignExtend => b.sign_extend(a),
        BinOp::Exp => a.wrapping_pow(b),
        BinOp::Lt => U256::from(a < b),
        BinOp::Gt => U256::from(a > b),
        BinOp::Slt => U256::from(a.slt(&b)),
        BinOp::Sgt => U256::from(a.sgt(&b)),
        BinOp::Eq => U256::from(a == b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Byte => b.byte_be(a),
        BinOp::Shl => b << a.to_u64().map_or(256, |s| s.min(256) as u32),
        BinOp::Shr => b >> a.to_u64().map_or(256, |s| s.min(256) as u32),
        BinOp::Sar => b.sar(a.to_u64().map_or(256, |s| s.min(256) as u32)),
    }
}

fn apply_un(op: UnOp, a: U256) -> U256 {
    match op {
        UnOp::IsZero => U256::from(a.is_zero()),
        UnOp::Not => !a,
    }
}

impl SymExpr {
    /// Builds a binary node, constant-folding when both operands are
    /// constants and absorbing `Unknown` (every operator is strict).
    pub fn binary(op: BinOp, a: SymExpr, b: SymExpr) -> SymExpr {
        match (&a, &b) {
            (SymExpr::Unknown, _) | (_, SymExpr::Unknown) => SymExpr::Unknown,
            (SymExpr::Const(x), SymExpr::Const(y)) => SymExpr::Const(apply_bin(op, *x, *y)),
            _ => SymExpr::Binary(op, Box::new(a), Box::new(b)),
        }
    }

    /// Builds a unary node with the same folding rules.
    pub fn unary(op: UnOp, a: SymExpr) -> SymExpr {
        match &a {
            SymExpr::Unknown => SymExpr::Unknown,
            SymExpr::Const(x) => SymExpr::Const(apply_un(op, *x)),
            _ => SymExpr::Unary(op, Box::new(a)),
        }
    }

    /// The constant value, if this expression is a literal constant.
    ///
    /// Keccak nodes are deliberately *not* folded at analysis time even
    /// when fully constant, so that statically-resolved slots keep their
    /// historical meaning (a slot named by the code, not a derived hash);
    /// they still evaluate fine at bind time.
    pub fn as_const(&self) -> Option<U256> {
        match self {
            SymExpr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// `true` if the expression contains no [`SymExpr::Unknown`] — i.e. it
    /// is a closed template that will evaluate under any binding whose
    /// loads are available.
    pub fn is_template(&self) -> bool {
        match self {
            SymExpr::Unknown => false,
            SymExpr::Keccak(words) => words.iter().all(SymExpr::is_template),
            SymExpr::Unary(_, a) => a.is_template(),
            SymExpr::Binary(_, a, b) => a.is_template() && b.is_template(),
            _ => true,
        }
    }

    /// Appends the load ids referenced by this expression to `out`.
    pub fn collect_loads(&self, out: &mut Vec<usize>) {
        match self {
            SymExpr::Load(id) => out.push(*id),
            SymExpr::Keccak(words) => words.iter().for_each(|w| w.collect_loads(out)),
            SymExpr::Unary(_, a) => a.collect_loads(out),
            SymExpr::Binary(_, a, b) => {
                a.collect_loads(out);
                b.collect_loads(out);
            }
            _ => {}
        }
    }

    /// Calls `f` on this node and every sub-expression, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&SymExpr)) {
        f(self);
        match self {
            SymExpr::Keccak(words) => words.iter().for_each(|w| w.visit(f)),
            SymExpr::Unary(_, a) => a.visit(f),
            SymExpr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Evaluates the template against one transaction. `None` when the
    /// expression contains `Unknown` or references a load that has not
    /// been bound yet.
    pub fn eval(&self, ctx: &BindCtx<'_>) -> Option<U256> {
        match self {
            SymExpr::Unknown => None,
            SymExpr::Const(v) => Some(*v),
            SymExpr::CallDataWord(offset) => Some(word_at(&ctx.tx.input, *offset)),
            SymExpr::CallDataSize => Some(U256::from(ctx.tx.input.len())),
            SymExpr::Caller => Some(ctx.tx.caller.to_u256()),
            SymExpr::Origin => Some(ctx.origin.to_u256()),
            SymExpr::SelfAddr => Some(ctx.tx.contract.to_u256()),
            SymExpr::CallValue => Some(ctx.tx.value),
            SymExpr::BlockNumber => Some(U256::from(ctx.block.number)),
            SymExpr::BlockTimestamp => Some(U256::from(ctx.block.timestamp)),
            SymExpr::Load(id) => *ctx.loads.get(*id)?,
            SymExpr::LoopVar(id) => *ctx.loop_vars.get(*id)?,
            SymExpr::Keccak(words) => {
                let mut bytes = Vec::with_capacity(words.len() * 32);
                for word in words {
                    bytes.extend_from_slice(&word.eval(ctx)?.to_be_bytes());
                }
                Some(keccak256(&bytes).to_u256())
            }
            SymExpr::Unary(op, a) => Some(apply_un(*op, a.eval(ctx)?)),
            SymExpr::Binary(op, a, b) => Some(apply_bin(*op, a.eval(ctx)?, b.eval(ctx)?)),
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Unknown => write!(f, "?"),
            SymExpr::Const(v) => {
                if let Some(small) = v.to_u64() {
                    write!(f, "{small}")
                } else {
                    write!(f, "0x{:x}", v)
                }
            }
            SymExpr::CallDataWord(offset) => write!(f, "calldata[{offset}]"),
            SymExpr::CallDataSize => write!(f, "calldatasize"),
            SymExpr::Caller => write!(f, "caller"),
            SymExpr::Origin => write!(f, "origin"),
            SymExpr::SelfAddr => write!(f, "address(this)"),
            SymExpr::CallValue => write!(f, "callvalue"),
            SymExpr::BlockNumber => write!(f, "block.number"),
            SymExpr::BlockTimestamp => write!(f, "block.timestamp"),
            SymExpr::Load(id) => write!(f, "load#{id}"),
            SymExpr::LoopVar(id) => write!(f, "i#{id}"),
            SymExpr::Keccak(words) => {
                write!(f, "keccak(")?;
                for (i, word) in words.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ++ ")?;
                    }
                    write!(f, "{word}")?;
                }
                write!(f, ")")
            }
            SymExpr::Unary(op, a) => match op {
                UnOp::IsZero => write!(f, "iszero({a})"),
                UnOp::Not => write!(f, "~{a}"),
            },
            SymExpr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Mul => "*",
                    BinOp::Sub => "-",
                    BinOp::Div => "/",
                    BinOp::SDiv => "/s",
                    BinOp::Mod => "%",
                    BinOp::SMod => "%s",
                    BinOp::SignExtend => "sext",
                    BinOp::Exp => "**",
                    BinOp::Lt => "<",
                    BinOp::Gt => ">",
                    BinOp::Slt => "<s",
                    BinOp::Sgt => ">s",
                    BinOp::Eq => "==",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Byte => "byte",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                    BinOp::Sar => ">>s",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_primitives::Address;

    fn ctx<'a>(tx: &'a TxEnv, block: &'a BlockEnv, loads: &'a [Option<U256>]) -> BindCtx<'a> {
        BindCtx {
            tx,
            origin: tx.caller,
            block,
            loads,
            loop_vars: &[],
        }
    }

    #[test]
    fn constant_folding_on_construction() {
        let four = SymExpr::binary(
            BinOp::Add,
            SymExpr::Const(U256::from(2u64)),
            SymExpr::Const(U256::from(2u64)),
        );
        assert_eq!(four, SymExpr::Const(U256::from(4u64)));
        assert_eq!(
            SymExpr::binary(BinOp::Add, SymExpr::Unknown, SymExpr::Caller),
            SymExpr::Unknown
        );
    }

    #[test]
    fn sub_uses_pop_order_like_the_interpreter() {
        // Interpreter pops a then b and computes a - b.
        let e = SymExpr::binary(
            BinOp::Sub,
            SymExpr::Const(U256::from(10u64)),
            SymExpr::Const(U256::from(3u64)),
        );
        assert_eq!(e, SymExpr::Const(U256::from(7u64)));
    }

    #[test]
    fn keccak_matches_map_slot() {
        // keccak(key ++ base) as emitted by asm_map_slot.
        let key = U256::from(0xabcdu64);
        let base = U256::from(1u64);
        let expr = SymExpr::Keccak(vec![SymExpr::CallDataWord(32), SymExpr::Const(base)]);
        let mut input = vec![0u8; 64];
        input[32..64].copy_from_slice(&key.to_be_bytes());
        let tx = TxEnv {
            caller: Address::from_u64(1),
            contract: Address::from_u64(2),
            value: U256::ZERO,
            input,
            gas_limit: 1_000_000,
        };
        let block = BlockEnv::default();
        let bound = expr.eval(&ctx(&tx, &block, &[])).expect("template binds");

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&key.to_be_bytes());
        bytes.extend_from_slice(&base.to_be_bytes());
        assert_eq!(bound, keccak256(&bytes).to_u256());
    }

    #[test]
    fn unbound_load_fails_evaluation() {
        let e = SymExpr::Load(0);
        let tx = TxEnv {
            caller: Address::from_u64(1),
            contract: Address::from_u64(2),
            value: U256::ZERO,
            input: Vec::new(),
            gas_limit: 1_000_000,
        };
        let block = BlockEnv::default();
        assert_eq!(e.eval(&ctx(&tx, &block, &[None])), None);
        assert_eq!(
            e.eval(&ctx(&tx, &block, &[Some(U256::from(9u64))])),
            Some(U256::from(9u64))
        );
        assert!(e.is_template());
        assert!(!SymExpr::Unknown.is_template());
    }

    #[test]
    fn display_is_compact() {
        let e = SymExpr::Keccak(vec![SymExpr::Caller, SymExpr::Const(U256::ONE)]);
        assert_eq!(e.to_string(), "keccak(caller ++ 1)");
    }
}
