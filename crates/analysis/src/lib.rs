//! State access graph (SAG) analysis for the DMVCC reproduction.
//!
//! This crate plays the role of the paper's Slither-based analyzer (§V-A):
//! it builds control-flow graphs from bytecode ([`Cfg`]), prunes them into
//! *partial* state access graphs with placeholders for runtime-dependent
//! keys ([`PSag`]), and refines those per transaction into *complete* state
//! access graphs ([`CSag`]) using the transaction input and the latest
//! committed snapshot — including release points annotated with measured
//! gas bounds, which drive early-write visibility in the scheduler.
//!
//! # Examples
//!
//! ```
//! use dmvcc_analysis::PSag;
//! use dmvcc_vm::contracts;
//!
//! let sag = PSag::build(&contracts::token());
//! // The token's mapping accesses cannot be resolved statically …
//! assert!(sag.unresolved().count() > 0);
//! // … and the post-check transfer suffix yields release points.
//! assert!(!sag.release_pcs.is_empty());
//! ```

#![warn(missing_docs)]

mod absint;
mod cfg;
mod commute;
mod csag;
mod gas;
mod interproc;
mod lint;
mod loops;
mod psag;
mod symbolic;

pub use absint::{
    analyze, analyze_with, BlockPlan, CallTarget, ContractPlan, KeyExpr, PlanAccess, PlanCall,
    PlanCallKind,
};
pub use interproc::CallSite;
pub use cfg::{decode, BasicBlock, BlockExit, Cfg, Instruction};
pub use commute::{classify_increments, IncrementClass, IncrementReport};
pub use csag::{
    AccessEvent, AnalysisConfig, Analyzer, CSag, RefinementMode, RefinementTier, ReleasePoint,
};
pub use gas::{cfg_to_dot, loop_gas_bounds, static_gas_bounds};
pub use interproc::{CallGraph, CallSiteVerdict, ContractVerdict};
pub use lint::{call_site_findings, lint_contract, lint_deployed, ContractLint, Finding, Severity};
pub use loops::{
    analyze_loops, InductionVar, KeyFamily, LoopInfo, LoopSummary, Step, TripCount, TripSource,
};
pub use psag::{AccessKind, PSag, SagOp};
pub use symbolic::{apply_bin, BinOp, BindCtx, SymExpr, UnOp};
