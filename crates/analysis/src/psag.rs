//! Partial state access graphs (P-SAG).
//!
//! A P-SAG is built *statically* from contract code (paper §III-B): the CFG
//! skeleton pruned to state-access operations, with a placeholder ("–") for
//! every access whose key cannot be resolved without transaction data, loop
//! nodes for loops that cannot be solved statically, and release points
//! after the last reachable abortable statement.

use dmvcc_primitives::U256;
use dmvcc_vm::CodeRegistry;

use crate::absint::{self, ContractPlan};
use crate::cfg::Cfg;
use crate::loops::{self, LoopInfo};

/// The access kind of a SAG node (ρ, ω, or the commutative increment ω̄).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// ρ — a read.
    Read,
    /// ω — a write.
    Write,
    /// ω̄ — a commutative increment (write that never reads).
    Add,
}

/// One state-access node of a SAG.
///
/// `slot` is `Some` when static analysis resolved the key (a constant-slot
/// access like `PUSH1 0 SLOAD`); `None` is the paper's "–" placeholder that
/// C-SAG refinement fills in with concrete transaction data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SagOp {
    /// Program counter of the access instruction.
    pub pc: usize,
    /// ρ / ω / ω̄.
    pub kind: AccessKind,
    /// Statically resolved slot, if any.
    pub slot: Option<U256>,
}

/// The statically-constructed partial state access graph of one contract.
#[derive(Debug, Clone)]
pub struct PSag {
    /// The CFG skeleton, with jump exits patched by value-set propagation
    /// (see [`crate::absint`]).
    pub cfg: Cfg,
    /// All state-access nodes in code order.
    pub ops: Vec<SagOp>,
    /// Release-point pcs (block starts past the last reachable abort),
    /// computed on the patched CFG.
    pub release_pcs: Vec<usize>,
    /// Start pcs of *natural* loop-head blocks (the paper's *loop nodes*,
    /// unrolled only at C-SAG time), one per head — nested back edges
    /// sharing a head are deduplicated. Heads of irreducible
    /// (multiple-entry) regions are deliberately *not* listed here; see
    /// [`LoopInfo::irreducible_head_pcs`] on [`PSag::loops`].
    pub loop_head_pcs: Vec<usize>,
    /// Per-block symbolic plan: key templates, conditions and gas facts
    /// that let C-SAG refinement bind instead of re-executing.
    pub plan: ContractPlan,
    /// Static loop summaries: induction variables, trip-count templates,
    /// per-iteration gas, strided key families, and irreducible-region
    /// flags (see [`crate::analyze_loops`]).
    pub loops: LoopInfo,
}

impl PSag {
    /// Builds the P-SAG of `code`. Cross-contract calls degrade to
    /// speculative fallback; see [`PSag::build_with`].
    pub fn build(code: &[u8]) -> PSag {
        PSag::build_with(code, None)
    }

    /// Builds the P-SAG of `code` with a code registry in scope, so
    /// statically-resolvable `CALL` sites become composable summaries
    /// instantiated across call edges at bind time.
    pub fn build_with(code: &[u8], registry: Option<&CodeRegistry>) -> PSag {
        let mut cfg = Cfg::build(code);
        let plan = absint::analyze_with(code, &mut cfg, registry);
        // One SagOp per access node, in code order (blocks are sorted by
        // start pc, plan accesses by instruction order). `slot` keeps its
        // historical meaning — a key the code names as a literal constant;
        // parameterized templates live in `plan`.
        let ops = cfg
            .blocks
            .iter()
            .flat_map(|block| plan.blocks[block.index].accesses.iter())
            .map(|access| SagOp {
                pc: access.pc,
                kind: access.kind,
                slot: access.key.as_const(),
            })
            .collect();
        let release_pcs = cfg.release_points();
        let loops = loops::analyze_loops(&cfg, &plan);
        let loop_head_pcs = loops.loops.iter().map(|l| l.head_pc).collect();
        PSag {
            cfg,
            ops,
            release_pcs,
            loop_head_pcs,
            plan,
            loops,
        }
    }

    /// Nodes whose key is still the "–" placeholder.
    pub fn unresolved(&self) -> impl Iterator<Item = &SagOp> {
        self.ops.iter().filter(|op| op.slot.is_none())
    }

    /// Nodes with statically-known keys.
    pub fn resolved(&self) -> impl Iterator<Item = &SagOp> {
        self.ops.iter().filter(|op| op.slot.is_some())
    }

    /// Nodes whose key is a *closed template* — resolvable per transaction
    /// by substituting calldata/caller/snapshot values, without
    /// speculative execution. A superset of [`PSag::resolved`].
    pub fn template_resolved(&self) -> impl Iterator<Item = &crate::absint::PlanAccess> {
        self.plan.accesses().filter(|a| a.key.is_template())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_vm::{assemble, contracts};

    fn psag(src: &str) -> PSag {
        PSag::build(&assemble(src).expect("valid assembly"))
    }

    #[test]
    fn constant_slot_resolved() {
        let sag = psag("PUSH1 5 PUSH1 0 SSTORE PUSH1 0 SLOAD POP STOP");
        assert_eq!(sag.ops.len(), 2);
        assert_eq!(sag.ops[0].kind, AccessKind::Write);
        assert_eq!(sag.ops[0].slot, Some(U256::ZERO));
        assert_eq!(sag.ops[1].kind, AccessKind::Read);
        assert_eq!(sag.ops[1].slot, Some(U256::ZERO));
    }

    #[test]
    fn computed_slot_is_placeholder() {
        // Slot comes off SHA3 → unresolved.
        let sag = psag("PUSH1 32 PUSH1 0 SHA3 SLOAD POP STOP");
        assert_eq!(sag.ops.len(), 1);
        assert_eq!(sag.ops[0].slot, None);
        assert_eq!(sag.unresolved().count(), 1);
        assert_eq!(sag.resolved().count(), 0);
    }

    #[test]
    fn sadd_classified_as_add() {
        let sag = psag("PUSH1 1 PUSH1 0 SADD STOP");
        assert_eq!(sag.ops[0].kind, AccessKind::Add);
        assert_eq!(sag.ops[0].slot, Some(U256::ZERO));
    }

    #[test]
    fn wide_push_immediate_resolved() {
        let sag = psag("PUSH32 0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff01 SLOAD POP STOP");
        let expected =
            U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff01")
                .unwrap();
        assert_eq!(sag.ops[0].slot, Some(expected));
    }

    #[test]
    fn loop_head_detected() {
        let sag = psag("PUSH1 3 loop: JUMPDEST PUSH1 1 SWAP1 SUB DUP1 PUSH @loop JUMPI STOP");
        assert_eq!(sag.loop_head_pcs.len(), 1);
        assert_eq!(sag.loop_head_pcs[0], 2); // the JUMPDEST
    }

    #[test]
    fn irreducible_entry_is_flagged_not_a_loop_node() {
        // A cycle with a second entry jumping into its middle: no natural
        // loop head, an explicit irreducible flag instead.
        let sag = psag(
            "PUSH1 0 CALLDATALOAD PUSH @mid JUMPI \
             top: JUMPDEST PUSH1 1 PUSH @mid JUMPI STOP \
             mid: JUMPDEST PUSH1 1 PUSH @top JUMPI STOP",
        );
        assert!(!sag.loops.irreducible_head_pcs.is_empty());
        for pc in &sag.loops.irreducible_head_pcs {
            assert!(
                !sag.loop_head_pcs.contains(pc),
                "irreducible head {pc} must not be listed as summarizable"
            );
        }
    }

    #[test]
    fn straight_line_has_no_loop_heads() {
        let sag = psag("PUSH1 1 POP STOP");
        assert!(sag.loop_head_pcs.is_empty());
    }

    #[test]
    fn fig1_has_loop_and_placeholders() {
        let sag = PSag::build(&contracts::fig1_example());
        // The for-loop of UpdateB is a loop node.
        assert!(!sag.loop_head_pcs.is_empty());
        // A[x] access key depends on calldata → placeholder.
        assert!(sag.unresolved().count() > 0);
        // B[0]/B[1] constant-slot writes in branch 2 are resolved.
        assert!(sag.resolved().count() > 0);
        // Branch 2's post-assert suffix yields a release point.
        assert!(!sag.release_pcs.is_empty());
    }

    #[test]
    fn counter_psag_fully_resolved() {
        let sag = PSag::build(&contracts::counter());
        assert_eq!(sag.unresolved().count(), 0);
        assert!(sag.ops.iter().any(|op| op.kind == AccessKind::Add));
        // Counter never aborts → entry is a release point.
        assert!(sag.release_pcs.contains(&0));
    }

    #[test]
    fn balance_opcode_is_a_read_node() {
        let mut code = vec![0x73]; // PUSH20
        code.extend_from_slice(&[0u8; 20]);
        code.push(0x31); // BALANCE
        code.push(0x00); // STOP
        let sag = PSag::build(&code);
        assert_eq!(sag.ops.len(), 1);
        assert_eq!(sag.ops[0].kind, AccessKind::Read);
    }
}
