//! Static loop summarization over the patched CFG and block plans.
//!
//! The C-SAG walk ([`crate::csag`]) unrolls loops *concretely* by
//! re-binding φ variables on every loop-head edge; this module is the
//! *static* companion that explains what that unrolling will do before any
//! transaction exists:
//!
//! 1. **Natural-loop detection** — dominators over the patched [`Cfg`]
//!    identify back edges (`latch → head` where the head dominates the
//!    latch). Retreating edges whose target does *not* dominate their
//!    source close multiple-entry (irreducible) regions; those heads are
//!    reported in [`LoopInfo::irreducible_head_pcs`] and never summarized.
//! 2. **Induction variables** — a φ variable whose every back-edge
//!    assignment is `LoopVar(v) ± Const(s)` advances by a fixed stride per
//!    iteration ([`Step::Add`]/[`Step::Sub`]); one assigned `LoopVar(v)`
//!    itself is loop-invariant.
//! 3. **Trip counts** — the loop's exit guard (a branch with one arm in
//!    the body, one outside) is parsed into `i ⋈ B` with `i` an induction
//!    variable and `B` a loop-invariant bound. The bound's provenance is
//!    classified ([`TripSource`]: constant, calldata-derived,
//!    snapshot-derived, or mixed), and when the arithmetic closes — a
//!    constant bound, or a calldata bound clamped by a dominating
//!    `Abort` guard — a hard iteration cap comes out ([`TripCount::cap`]).
//! 4. **Per-iteration cost & access shape** — summed static gas of the
//!    body, a one-shot memory-expansion allowance, abort-freedom, and the
//!    body's accesses as strided key families (`base + i·stride`, possibly
//!    under a keccak, [`KeyFamily`]).
//!
//! [`crate::gas::loop_gas_bounds`] turns capped summaries into finite gas
//! bounds for release points inside and after loops; `dmvcc lint` surfaces
//! unbounded trip counts and irreducible loops as findings.

use std::collections::{BTreeMap, BTreeSet};

use dmvcc_primitives::U256;

use crate::absint::ContractPlan;
use crate::cfg::{BlockExit, Cfg};
use crate::psag::AccessKind;
use crate::symbolic::{BinOp, SymExpr, UnOp};

/// Per-iteration advance of a loop-carried φ variable along the back
/// edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Re-assigned to itself: the value does not change across iterations.
    Invariant,
    /// Increases by the constant each iteration (wrapping).
    Add(U256),
    /// Decreases by the constant each iteration (wrapping).
    Sub(U256),
}

/// A recognized induction variable of one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionVar {
    /// The φ variable id ([`SymExpr::LoopVar`]).
    pub var: usize,
    /// Its per-iteration step, identical on every back edge.
    pub step: Step,
}

/// Where a loop's trip count comes from — which inputs the bound and the
/// induction variable's initial values draw on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripSource {
    /// Compile-time constants only.
    Constant,
    /// Transaction data (calldata, caller, value, block environment).
    Calldata,
    /// Snapshot values read during the walk ([`SymExpr::Load`]).
    Snapshot,
    /// Both transaction data and snapshot values.
    Mixed,
}

/// The trip-count template of a summarized loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripCount {
    /// The governing induction variable.
    pub var: usize,
    /// The loop-invariant bound the exit guard compares the variable
    /// against.
    pub bound: SymExpr,
    /// Provenance of the bound and the variable's initial values.
    pub source: TripSource,
    /// Hard static cap on the number of body iterations, when the
    /// arithmetic closes (constant bound and inits, or a bound clamped by
    /// a dominating abort guard).
    pub cap: Option<u64>,
}

/// One state access of the loop body, as a strided key family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyFamily {
    /// Program counter of the access.
    pub pc: usize,
    /// ρ / ω / ω̄.
    pub kind: AccessKind,
    /// The key template, parameterized over the loop's φ variables.
    pub key: SymExpr,
    /// Per-iteration key advance (two's-complement for down-counting),
    /// when the key — or a keccak preimage word, see
    /// [`KeyFamily::hashed`] — is affine in one induction variable.
    pub stride: Option<U256>,
    /// `true` when the stride applies to a keccak preimage word rather
    /// than the key value itself (mapping accesses: `keccak(base + i·s)`).
    pub hashed: bool,
}

/// The static summary of one natural loop.
#[derive(Debug, Clone)]
pub struct LoopSummary {
    /// Block index of the loop head.
    pub head: usize,
    /// Start pc of the head block.
    pub head_pc: usize,
    /// Block indices of the loop body (head included), sorted.
    pub body: Vec<usize>,
    /// Body blocks with a back edge to the head.
    pub latches: Vec<usize>,
    /// Blocks outside the body that body blocks exit to.
    pub exit_targets: Vec<usize>,
    /// The loop's φ variables with recognized steps (others are omitted).
    pub induction: Vec<InductionVar>,
    /// The trip-count template, when an exit guard parses.
    pub trip: Option<TripCount>,
    /// Upper bound on one iteration's gas: the summed static gas of every
    /// body block (each iteration executes a subset). `None` when a body
    /// block is not walkable or has unbounded dynamic costs.
    pub per_iter_gas: Option<u64>,
    /// One-shot memory-expansion allowance for the whole loop (expansion
    /// gas is charged against the high-water mark, so the body's maximal
    /// constant extent is paid at most once).
    pub mem_gas: u64,
    /// `true` when no abortable instruction or abort/unknown exit exists
    /// inside the body.
    pub abort_free: bool,
    /// `true` when the body contains another loop's head; nested loops
    /// are detected but not given gas caps.
    pub nested: bool,
    /// The body's state accesses as strided key families.
    pub families: Vec<KeyFamily>,
}

impl LoopSummary {
    /// A loop the gas pass can bound: reducible (by construction), not
    /// nested, with a hard trip cap and fully-costed body.
    pub fn bounded(&self) -> bool {
        !self.nested
            && self.per_iter_gas.is_some()
            && self.trip.as_ref().is_some_and(|t| t.cap.is_some())
    }
}

/// All loops of one contract.
#[derive(Debug, Clone, Default)]
pub struct LoopInfo {
    /// Natural (reducible) loops, one per head, ordered by head index.
    /// Nested back edges sharing a head are merged into one summary.
    pub loops: Vec<LoopSummary>,
    /// Start pcs of irreducible (multiple-entry) region heads: targets of
    /// retreating edges not dominated over their source. These are never
    /// summarized; binding through them relies purely on the φ machinery
    /// and the non-head widening.
    pub irreducible_head_pcs: Vec<usize>,
}

impl LoopInfo {
    /// The summary owning `head_pc`, if any.
    pub fn by_head_pc(&self, head_pc: usize) -> Option<&LoopSummary> {
        self.loops.iter().find(|l| l.head_pc == head_pc)
    }
}

/// Detects and summarizes every loop of the (jump-patched) CFG.
pub fn analyze_loops(cfg: &Cfg, plan: &ContractPlan) -> LoopInfo {
    let order = postorder(cfg);
    let idom = idoms(cfg, &order);
    let mut pos = vec![usize::MAX; cfg.blocks.len()];
    for (i, &b) in order.iter().rev().enumerate() {
        pos[b] = i; // reverse-postorder position
    }

    // Classify retreating edges: back edges (head dominates latch) found
    // natural loops; the rest are entries into irreducible regions.
    let mut latches: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut irreducible: BTreeSet<usize> = BTreeSet::new();
    for &block in order.iter() {
        for succ in cfg.blocks[block].successors() {
            if pos[succ] <= pos[block] {
                if dominates(&idom, succ, block) {
                    latches.entry(succ).or_default().push(block);
                } else {
                    irreducible.insert(cfg.blocks[succ].start_pc);
                }
            }
        }
    }

    let loops = latches
        .into_iter()
        .map(|(head, latches)| summarize(cfg, plan, &idom, head, latches))
        .collect::<Vec<_>>();
    let mut loops = loops;
    // A nested head's body is a subset of its ancestors'.
    let heads: Vec<usize> = loops.iter().map(|l| l.head).collect();
    for l in &mut loops {
        l.nested = heads.iter().any(|&h| h != l.head && l.body.contains(&h));
    }
    LoopInfo {
        loops,
        irreducible_head_pcs: irreducible.into_iter().collect(),
    }
}

/// Postorder of the reachable blocks from the entry.
fn postorder(cfg: &Cfg) -> Vec<usize> {
    let n = cfg.blocks.len();
    let mut visited = vec![false; n];
    let mut out = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some(&mut (block, ref mut next)) = stack.last_mut() {
        let succs = cfg.blocks[block].successors();
        if *next < succs.len() {
            let succ = succs[*next];
            *next += 1;
            if !visited[succ] {
                visited[succ] = true;
                stack.push((succ, 0));
            }
        } else {
            out.push(block);
            stack.pop();
        }
    }
    out
}

/// Immediate dominators (Cooper–Harvey–Kennedy over reverse postorder).
/// `idom[b]` is `None` for unreachable blocks; the entry dominates itself.
fn idoms(cfg: &Cfg, order: &[usize]) -> Vec<Option<usize>> {
    let n = cfg.blocks.len();
    let mut pos = vec![usize::MAX; n];
    for (i, &b) in order.iter().rev().enumerate() {
        pos[b] = i;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &b in order {
        for succ in cfg.blocks[b].successors() {
            preds[succ].push(b);
        }
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[0] = Some(0);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().rev() {
            if b == 0 {
                continue;
            }
            let mut new: Option<usize> = None;
            for &p in &preds[b] {
                if idom[p].is_none() {
                    continue;
                }
                new = Some(match new {
                    None => p,
                    Some(acc) => intersect(&idom, &pos, acc, p),
                });
            }
            if new.is_some() && new != idom[b] {
                idom[b] = new;
                changed = true;
            }
        }
    }
    idom
}

fn intersect(idom: &[Option<usize>], pos: &[usize], a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while a != b {
        while pos[a] > pos[b] {
            a = idom[a].expect("processed");
        }
        while pos[b] > pos[a] {
            b = idom[b].expect("processed");
        }
    }
    a
}

/// Whether `a` dominates `b` (reflexive).
fn dominates(idom: &[Option<usize>], a: usize, b: usize) -> bool {
    let mut at = b;
    loop {
        if at == a {
            return true;
        }
        match idom[at] {
            Some(up) if up != at => at = up,
            _ => return false,
        }
    }
}

/// The natural loop of `head`: `head` plus everything that reaches a latch
/// without passing through `head`.
fn natural_body(cfg: &Cfg, head: usize, latches: &[usize]) -> BTreeSet<usize> {
    let n = cfg.blocks.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, block) in cfg.blocks.iter().enumerate() {
        for succ in block.successors() {
            preds[succ].push(b);
        }
    }
    let mut body: BTreeSet<usize> = BTreeSet::new();
    body.insert(head);
    let mut stack: Vec<usize> = latches.to_vec();
    while let Some(b) = stack.pop() {
        if body.insert(b) {
            stack.extend(preds[b].iter().copied());
        }
    }
    body
}

fn summarize(
    cfg: &Cfg,
    plan: &ContractPlan,
    idom: &[Option<usize>],
    head: usize,
    latches: Vec<usize>,
) -> LoopSummary {
    let body = natural_body(cfg, head, &latches);
    let exit_targets: Vec<usize> = body
        .iter()
        .flat_map(|&b| cfg.blocks[b].successors())
        .filter(|s| !body.contains(s))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();

    let induction = induction_vars(plan, head, &latches);
    let trip = trip_count(cfg, plan, idom, head, &body, &induction);

    let mut per_iter = Some(0u64);
    let mut mem_end = 0usize;
    let mut abort_free = true;
    for &b in &body {
        let p = &plan.blocks[b];
        if !p.complete || !p.exp_terms.is_empty() {
            per_iter = None;
        }
        per_iter = per_iter.map(|g| g.saturating_add(p.static_gas));
        for &(offset, len) in &p.mem_touches {
            mem_end = mem_end.max(offset.saturating_add(len));
        }
        if matches!(cfg.blocks[b].exit, BlockExit::Abort | BlockExit::Unknown)
            || cfg.blocks[b]
                .instructions
                .iter()
                .any(|i| i.op.is_abortable())
        {
            abort_free = false;
        }
    }
    let mem_gas = 3 * mem_end.div_ceil(32) as u64;

    let families = body
        .iter()
        .flat_map(|&b| plan.blocks[b].accesses.iter())
        .map(|access| {
            let key = access.key.expr().clone();
            let (stride, hashed) = stride_of(&key, &induction);
            KeyFamily {
                pc: access.pc,
                kind: access.kind,
                key,
                stride,
                hashed,
            }
        })
        .collect();

    LoopSummary {
        head,
        head_pc: cfg.blocks[head].start_pc,
        body: body.iter().copied().collect(),
        latches,
        exit_targets,
        induction,
        trip,
        per_iter_gas: per_iter,
        mem_gas,
        abort_free,
        nested: false, // filled by the caller
        families,
    }
}

/// Classifies each φ variable of the head by its back-edge assignments.
fn induction_vars(plan: &ContractPlan, head: usize, latches: &[usize]) -> Vec<InductionVar> {
    let Some(vars) = plan.phi_heads.get(&head) else {
        return Vec::new();
    };
    vars.iter()
        .filter_map(|&var| {
            let mut step: Option<Step> = None;
            for &latch in latches {
                let assigns = plan.phi_edges.get(&(latch, head))?;
                let (_, expr) = assigns.iter().find(|(v, _)| *v == var)?;
                let this = step_of(expr, var)?;
                match step {
                    None => step = Some(this),
                    Some(prior) if prior == this => {}
                    Some(_) => return None,
                }
            }
            Some(InductionVar { var, step: step? })
        })
        .collect()
}

/// `LoopVar(v)` → invariant; `LoopVar(v) ± c` → stepped; anything else is
/// not an induction pattern.
fn step_of(expr: &SymExpr, var: usize) -> Option<Step> {
    let is_var = |e: &SymExpr| *e == SymExpr::LoopVar(var);
    match expr {
        e if is_var(e) => Some(Step::Invariant),
        SymExpr::Binary(BinOp::Add, a, b) if is_var(a) => b.as_const().map(Step::Add),
        SymExpr::Binary(BinOp::Add, a, b) if is_var(b) => a.as_const().map(Step::Add),
        SymExpr::Binary(BinOp::Sub, a, b) if is_var(a) => b.as_const().map(Step::Sub),
        _ => None,
    }
}

/// Unsigned comparison shapes an exit guard can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
}

/// Normalizes a branch condition to `left ⋈ right`, folding `ISZERO`
/// chains into the comparison's negation. Only unsigned comparisons
/// participate (the domain's loops count with unsigned arithmetic).
fn comparison(cond: &SymExpr, negate: bool) -> Option<(Cmp, &SymExpr, &SymExpr)> {
    match cond {
        SymExpr::Unary(UnOp::IsZero, inner) => comparison(inner, !negate),
        SymExpr::Binary(BinOp::Lt, a, b) => Some((if negate { Cmp::Ge } else { Cmp::Lt }, a, b)),
        SymExpr::Binary(BinOp::Gt, a, b) => Some((if negate { Cmp::Le } else { Cmp::Gt }, a, b)),
        _ => None,
    }
}

fn flip(cmp: Cmp) -> Cmp {
    match cmp {
        Cmp::Lt => Cmp::Gt,
        Cmp::Gt => Cmp::Lt,
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
    }
}

fn contains_loop_var(expr: &SymExpr) -> bool {
    let mut found = false;
    expr.visit(&mut |e| {
        if matches!(e, SymExpr::LoopVar(_)) {
            found = true;
        }
    });
    found
}

/// `true` when every leaf is fixed for the whole transaction (constants,
/// calldata, sender, environment) — the precondition for a dominating
/// guard on the expression to still hold at the loop.
fn tx_pure(expr: &SymExpr) -> bool {
    let mut pure = true;
    expr.visit(&mut |e| {
        if matches!(e, SymExpr::Unknown | SymExpr::Load(_) | SymExpr::LoopVar(_)) {
            pure = false;
        }
    });
    pure
}

/// Finds the loop's exit guard and builds the trip-count template.
fn trip_count(
    cfg: &Cfg,
    plan: &ContractPlan,
    idom: &[Option<usize>],
    head: usize,
    body: &BTreeSet<usize>,
    induction: &[InductionVar],
) -> Option<TripCount> {
    let mut best: Option<TripCount> = None;
    for &b in body {
        let BlockExit::Branch(taken, fall) = cfg.blocks[b].exit else {
            continue;
        };
        let (t_in, f_in) = (body.contains(&taken), body.contains(&fall));
        if t_in == f_in {
            continue; // not an exit guard
        }
        let Some(cond) = &plan.blocks[b].cond else {
            continue;
        };
        // The continue condition holds whenever control stays in the body.
        let Some((cmp, left, right)) = comparison(cond, !t_in) else {
            continue;
        };
        // Put the induction variable on the left. Guards often test the
        // freshly-updated value (`(i − 1) > B`), so an affine offset on the
        // variable is accepted when it cannot wrap past the cap
        // arithmetic: non-negative offsets for up-counting, non-positive
        // unit-step offsets for down-counting.
        let var_side = |e: &SymExpr| affine_guard_var(e, induction);
        let (cmp, iv, bound) = if let Some(iv) = var_side(left) {
            (cmp, iv, right)
        } else if let Some(iv) = var_side(right) {
            (flip(cmp), iv, left)
        } else {
            continue;
        };
        if contains_loop_var(bound) {
            continue; // the bound itself varies per iteration
        }
        // Initial values of the variable: the non-body in-edges' φ
        // assignments.
        let inits: Vec<&SymExpr> = preds_of(cfg, head)
            .into_iter()
            .filter(|p| !body.contains(p))
            .filter_map(|p| {
                plan.phi_edges
                    .get(&(p, head))
                    .and_then(|assigns| assigns.iter().find(|(v, _)| *v == iv.var))
                    .map(|(_, e)| e)
            })
            .collect();
        if inits.is_empty() {
            continue;
        }
        let mut sourced: Vec<&SymExpr> = inits.clone();
        sourced.push(bound);
        let Some(source) = classify(&sourced) else {
            continue;
        };
        let cap = iteration_cap(cfg, plan, idom, head, cmp, iv.step, bound, &inits);
        let trip = TripCount {
            var: iv.var,
            bound: bound.clone(),
            source,
            cap,
        };
        // Prefer a guard that yields a cap; among capped guards, the
        // tightest.
        best = Some(match best.take() {
            None => trip,
            Some(prior) => match (prior.cap, trip.cap) {
                (Some(a), Some(b)) if b < a => trip,
                (None, Some(_)) => trip,
                _ => prior,
            },
        });
    }
    best
}

/// Matches a guard side of the shape `LoopVar(v) [± const]` for a stepped
/// induction variable, under offsets the cap arithmetic stays sound for:
/// `i + d` (d ≥ 0) only tightens an up-counting `i + d < B` guard, and
/// `i − c` (c ≥ 0) in a unit-step down-counting `i − c > B` guard fails no
/// later than `i > B` does (the descent visits every value, so it cannot
/// skip over the wrap window).
fn affine_guard_var(e: &SymExpr, induction: &[InductionVar]) -> Option<InductionVar> {
    let stepped = |v: &SymExpr| {
        if let SymExpr::LoopVar(v) = v {
            induction
                .iter()
                .find(|iv| iv.var == *v && iv.step != Step::Invariant)
                .copied()
        } else {
            None
        }
    };
    if let Some(iv) = stepped(e) {
        return Some(iv);
    }
    match e {
        SymExpr::Binary(BinOp::Add, a, b) => {
            let (iv, off) = if let Some(iv) = stepped(a) {
                (iv, b.as_const()?)
            } else {
                (stepped(b)?, a.as_const()?)
            };
            // A non-negative offset that cannot itself wrap the compare.
            off.to_u64()?;
            matches!(iv.step, Step::Add(_)).then_some(iv)
        }
        SymExpr::Binary(BinOp::Sub, a, b) => {
            let iv = stepped(a)?;
            b.as_const()?.to_u64()?;
            (iv.step == Step::Sub(U256::ONE)).then_some(iv)
        }
        _ => None,
    }
}

/// Provenance of a set of expressions; `None` when an `Unknown` or
/// φ-variable leaf makes the count unclassifiable.
fn classify(exprs: &[&SymExpr]) -> Option<TripSource> {
    let mut tx = false;
    let mut snap = false;
    let mut opaque = false;
    for expr in exprs {
        expr.visit(&mut |e| match e {
            SymExpr::CallDataWord(_)
            | SymExpr::CallDataSize
            | SymExpr::Caller
            | SymExpr::SelfAddr
            | SymExpr::CallValue
            | SymExpr::BlockNumber
            | SymExpr::BlockTimestamp => tx = true,
            SymExpr::Load(_) => snap = true,
            SymExpr::Unknown | SymExpr::LoopVar(_) => opaque = true,
            _ => {}
        });
    }
    if opaque {
        return None;
    }
    Some(match (tx, snap) {
        (false, false) => TripSource::Constant,
        (true, false) => TripSource::Calldata,
        (false, true) => TripSource::Snapshot,
        (true, true) => TripSource::Mixed,
    })
}

/// Closes the trip-count arithmetic to a hard iteration cap, when the
/// guard shape, step direction and available bounds allow it.
#[allow(clippy::too_many_arguments)]
fn iteration_cap(
    cfg: &Cfg,
    plan: &ContractPlan,
    idom: &[Option<usize>],
    head: usize,
    cmp: Cmp,
    step: Step,
    bound: &SymExpr,
    inits: &[&SymExpr],
) -> Option<u64> {
    match (step, cmp) {
        // Up-counting `for i = init; i < B; i += s`: needs a constant
        // floor on the inits and a ceiling on the bound.
        (Step::Add(s), Cmp::Lt | Cmp::Le) => {
            let s = s.to_u64().filter(|&s| s > 0)?;
            let floor = inits
                .iter()
                .map(|e| e.as_const().and_then(|c| c.to_u64()))
                .collect::<Option<Vec<_>>>()?
                .into_iter()
                .min()?;
            let ceiling = upper_bound(cfg, plan, idom, head, bound)?;
            let span = ceiling.saturating_sub(floor);
            Some(span.div_ceil(s) + u64::from(cmp == Cmp::Le))
        }
        // Down-counting `for i = init; i > B; i -= s`: the bound's value
        // is irrelevant for an upper cap (unsigned, so B ≥ 0); needs a
        // ceiling on the inits.
        (Step::Sub(s), Cmp::Gt) => {
            let s = s.to_u64().filter(|&s| s > 0)?;
            let ceiling = inits
                .iter()
                .map(|e| upper_bound(cfg, plan, idom, head, e))
                .collect::<Option<Vec<_>>>()?
                .into_iter()
                .max()?;
            Some(ceiling.div_ceil(s))
        }
        // `i >= B` only terminates before wrapping when B ≥ 1.
        (Step::Sub(s), Cmp::Ge) => {
            let s = s.to_u64().filter(|&s| s > 0)?;
            bound.as_const().filter(|b| *b >= U256::ONE)?;
            let ceiling = inits
                .iter()
                .map(|e| upper_bound(cfg, plan, idom, head, e))
                .collect::<Option<Vec<_>>>()?
                .into_iter()
                .max()?;
            Some(ceiling.div_ceil(s) + 1)
        }
        _ => None,
    }
}

/// An upper bound on a loop-invariant expression: its constant value, or
/// the tightest clamp a dominating abort guard imposes (`expr > k → abort`
/// on every path into the loop means `expr ≤ k` whenever the loop runs).
fn upper_bound(
    cfg: &Cfg,
    plan: &ContractPlan,
    idom: &[Option<usize>],
    head: usize,
    expr: &SymExpr,
) -> Option<u64> {
    if let Some(c) = expr.as_const() {
        return c.to_u64();
    }
    if !tx_pure(expr) {
        return None; // a snapshot value can change between guard and loop
    }
    let mut best: Option<u64> = None;
    let mut d = idom[head]?;
    loop {
        if let Some(k) = guard_clamp(cfg, plan, d, expr) {
            best = Some(best.map_or(k, |b| b.min(k)));
        }
        let up = idom[d]?;
        if up == d {
            break;
        }
        d = up;
    }
    best
}

/// If block `d` branches straight to an `Abort` block exactly when
/// `expr > k` (or `expr ≥ k`), the surviving path has `expr ≤ k`
/// (resp. `≤ k−1`): returns that clamp.
fn guard_clamp(cfg: &Cfg, plan: &ContractPlan, d: usize, expr: &SymExpr) -> Option<u64> {
    let BlockExit::Branch(taken, fall) = cfg.blocks[d].exit else {
        return None;
    };
    let cond = plan.blocks[d].cond.as_ref()?;
    let mut best: Option<u64> = None;
    for (abort_side, negate) in [(taken, false), (fall, true)] {
        if !matches!(cfg.blocks[abort_side].exit, BlockExit::Abort) {
            continue;
        }
        let Some((cmp, left, right)) = comparison(cond, negate) else {
            continue;
        };
        let (cmp, limit) = if left == expr {
            (cmp, right)
        } else if right == expr {
            (flip(cmp), left)
        } else {
            continue;
        };
        let Some(k) = limit.as_const().and_then(|k| k.to_u64()) else {
            continue;
        };
        let clamp = match cmp {
            Cmp::Gt => Some(k),          // aborts when expr > k
            Cmp::Ge => k.checked_sub(1), // aborts when expr ≥ k
            Cmp::Lt | Cmp::Le => None,   // clamps from below, useless here
        };
        if let Some(c) = clamp {
            best = Some(best.map_or(c, |b| b.min(c)));
        }
    }
    best
}

/// The per-iteration stride of a key template: direct when the key itself
/// is affine in a stepped induction variable, hashed when a keccak
/// preimage word is.
fn stride_of(key: &SymExpr, induction: &[InductionVar]) -> (Option<U256>, bool) {
    for iv in induction {
        let scale = match iv.step {
            Step::Invariant => continue,
            Step::Add(s) => s,
            Step::Sub(s) => s.wrapping_neg(),
        };
        if let Some(c) = linear_coeff(key, iv.var) {
            if c != U256::ZERO {
                return (Some(c.wrapping_mul(scale)), false);
            }
            continue; // key invariant in this variable
        }
        if let SymExpr::Keccak(words) = key {
            let coeffs: Option<Vec<U256>> = words.iter().map(|w| linear_coeff(w, iv.var)).collect();
            if let Some(coeffs) = coeffs {
                let varying: Vec<&U256> = coeffs.iter().filter(|c| **c != U256::ZERO).collect();
                if let [c] = varying.as_slice() {
                    return (Some(c.wrapping_mul(scale)), true);
                }
            }
        }
    }
    (None, false)
}

/// The coefficient of `LoopVar(var)` in `expr` when `expr` is affine in
/// it: `Some(0)` when absent, `None` when it appears non-linearly.
fn linear_coeff(expr: &SymExpr, var: usize) -> Option<U256> {
    match expr {
        SymExpr::LoopVar(v) if *v == var => Some(U256::ONE),
        SymExpr::Binary(BinOp::Add, a, b) => {
            Some(linear_coeff(a, var)?.wrapping_add(linear_coeff(b, var)?))
        }
        SymExpr::Binary(BinOp::Sub, a, b) => {
            Some(linear_coeff(a, var)?.wrapping_sub(linear_coeff(b, var)?))
        }
        SymExpr::Binary(BinOp::Mul, a, b) => match (a.as_const(), b.as_const()) {
            (Some(c), _) => Some(c.wrapping_mul(linear_coeff(b, var)?)),
            (_, Some(c)) => Some(linear_coeff(a, var)?.wrapping_mul(c)),
            _ => {
                let (ca, cb) = (linear_coeff(a, var)?, linear_coeff(b, var)?);
                (ca == U256::ZERO && cb == U256::ZERO).then_some(U256::ZERO)
            }
        },
        other => {
            let mut present = false;
            other.visit(&mut |e| {
                if *e == SymExpr::LoopVar(var) {
                    present = true;
                }
            });
            if present {
                None // under a hash, division, comparison, …: non-affine
            } else {
                Some(U256::ZERO)
            }
        }
    }
}

fn preds_of(cfg: &Cfg, block: usize) -> Vec<usize> {
    (0..cfg.blocks.len())
        .filter(|&p| cfg.blocks[p].successors().contains(&block))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint;
    use dmvcc_vm::{assemble, contracts};

    fn analyzed(code: &[u8]) -> (Cfg, ContractPlan) {
        let mut cfg = Cfg::build(code);
        let plan = absint::analyze(code, &mut cfg);
        (cfg, plan)
    }

    fn loops_of(src: &str) -> (Cfg, ContractPlan, LoopInfo) {
        let code = assemble(src).expect("valid assembly");
        let (cfg, plan) = analyzed(&code);
        let info = analyze_loops(&cfg, &plan);
        (cfg, plan, info)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (_, _, info) = loops_of("PUSH1 1 POP STOP");
        assert!(info.loops.is_empty());
        assert!(info.irreducible_head_pcs.is_empty());
    }

    #[test]
    fn constant_count_down_loop_is_fully_capped() {
        // i = 3; while i > 0 { i -= 1 }: constant trip source, cap 3.
        let (_, _, info) = loops_of(
            "PUSH1 3 \
             loop: JUMPDEST PUSH1 1 SWAP1 SUB DUP1 PUSH1 0 SWAP1 GT PUSH @loop JUMPI STOP",
        );
        assert_eq!(info.loops.len(), 1);
        let l = &info.loops[0];
        assert!(l.induction.iter().any(|iv| iv.step == Step::Sub(U256::ONE)));
        let trip = l.trip.as_ref().expect("guard parses");
        assert_eq!(trip.source, TripSource::Constant);
        assert_eq!(trip.cap, Some(3));
        assert!(l.per_iter_gas.is_some());
        assert!(l.abort_free);
        assert!(!l.nested);
    }

    #[test]
    fn fig1_loop_is_snapshot_bounded_without_cap() {
        let code = contracts::fig1_example();
        let (cfg, plan) = analyzed(&code);
        let info = analyze_loops(&cfg, &plan);
        assert_eq!(info.loops.len(), 1, "fig1 has exactly one loop");
        let l = &info.loops[0];
        let trip = l.trip.as_ref().expect("head guard parses");
        // The counter starts from a snapshot read: bindable per
        // transaction, but no static cap.
        assert_eq!(trip.source, TripSource::Snapshot);
        assert_eq!(trip.cap, None);
        assert!(info.irreducible_head_pcs.is_empty());
        // The body writes B[i]: a unit-stride direct key family.
        assert!(l
            .families
            .iter()
            .any(|f| f.kind == AccessKind::Write && f.stride.is_some() && !f.hashed));
    }

    #[test]
    fn airdrop_loop_is_calldata_bounded_with_a_guard_clamp() {
        let code = contracts::airdrop();
        let (cfg, plan) = analyzed(&code);
        let info = analyze_loops(&cfg, &plan);
        assert_eq!(info.loops.len(), 1, "airdrop has exactly one loop");
        let l = &info.loops[0];
        assert!(l.abort_free, "credit loop must be abort-free");
        assert!(!l.nested);
        let trip = l.trip.as_ref().expect("exit guard parses");
        assert_eq!(trip.source, TripSource::Calldata);
        // The dominating `require(n <= 32)` closes the calldata bound.
        assert_eq!(trip.cap, Some(32));
        assert!(l.per_iter_gas.is_some(), "body fully costed");
        assert!(l.bounded());
        // The SADD key `keccak((start + i) ++ 0)` is a unit-stride hashed
        // family.
        assert!(l
            .families
            .iter()
            .any(|f| f.kind == AccessKind::Add && f.stride == Some(U256::ONE) && f.hashed));
    }

    #[test]
    fn batch_transfer_loop_is_snapshot_bounded_without_cap() {
        let code = contracts::batch_transfer();
        let (cfg, plan) = analyzed(&code);
        let info = analyze_loops(&cfg, &plan);
        assert_eq!(info.loops.len(), 1, "batch_transfer has exactly one loop");
        let l = &info.loops[0];
        assert!(l.abort_free);
        let trip = l.trip.as_ref().expect("exit guard parses");
        // The count is read from storage: bindable per transaction against
        // the snapshot, but no static cap.
        assert_eq!(trip.source, TripSource::Snapshot);
        assert_eq!(trip.cap, None);
        assert!(!l.bounded());
        // Down-counting unit-stride hashed credit family.
        assert!(l
            .families
            .iter()
            .any(|f| f.kind == AccessKind::Add && f.stride.is_some() && f.hashed));
    }

    #[test]
    fn irreducible_region_is_flagged_not_summarized() {
        // Two entries into the same cycle: a → b → a with a second entry
        // jumping into the middle of the cycle.
        let (_, _, info) = loops_of(
            "PUSH1 0 CALLDATALOAD PUSH @mid JUMPI \
             top: JUMPDEST PUSH1 1 PUSH @mid JUMPI STOP \
             mid: JUMPDEST PUSH1 1 PUSH @top JUMPI STOP",
        );
        // The retreating edge mid→top targets a block that does not
        // dominate it (top can be bypassed via the calldata branch).
        assert!(!info.irreducible_head_pcs.is_empty());
        assert!(info
            .loops
            .iter()
            .all(|l| { !info.irreducible_head_pcs.contains(&l.head_pc) }));
    }
}
