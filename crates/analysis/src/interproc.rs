//! Interprocedural call-graph analysis over a contract registry.
//!
//! The per-contract abstract interpreter ([`crate::absint`]) already turns
//! statically-resolvable `CALL` sites into [`PlanCall`] summaries; this
//! module lifts those site-level facts to the registry level. It builds
//! the static call graph (an edge per summarized or dynamic call site),
//! condenses it with Tarjan's SCC algorithm, and classifies every site
//! and contract:
//!
//! - the SCC condensation yields a **bottom-up order** — callees before
//!   callers — which is the order summaries must be computed in so a
//!   caller's template can substitute fully-summarized callee plans
//!   (the [`crate::Analyzer`] P-SAG cache is warmed in this order);
//! - sites whose callee sits in the same SCC (including self-loops) are
//!   **recursive** — composing them would not terminate, so the bind
//!   walk's frame budget would blow and speculation takes over;
//! - chains nesting deeper than [`CALL_DEPTH_LIMIT`] are flagged, since
//!   the interpreter fails such calls at runtime (pushing 0) while the
//!   static plan assumed success;
//! - dynamic-target sites (callee address not a foldable constant) are
//!   the paper's unanalyzable residue, surfaced by `dmvcc lint` as
//!   `unanalyzable-call-target`.
//!
//! The verdicts are *advisory*: the C-SAG walk re-checks everything at
//! bind time and falls back to speculative pre-execution on any mismatch,
//! so a wrong verdict can cost performance, never correctness.

use std::collections::BTreeMap;

use dmvcc_primitives::Address;
use dmvcc_vm::{CodeRegistry, CALL_DEPTH_LIMIT};

use crate::absint;
use crate::cfg::Cfg;

/// Classification of one `CALL` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallSiteVerdict {
    /// The callee summary composes into the caller's template.
    Summarizable,
    /// Statically-known target with no deployed code: the call trivially
    /// succeeds with empty return data (modeled exactly, nothing to
    /// compose).
    NoCode,
    /// The callee address does not fold to a constant; the block degrades
    /// to speculative fallback.
    DynamicTarget,
    /// The callee reaches back into the caller's SCC; composition would
    /// not terminate.
    Recursive,
    /// The static call chain below this site nests past
    /// [`CALL_DEPTH_LIMIT`], where the interpreter fails the call.
    DepthExceeded,
}

/// One call site of a contract, as seen by the call graph.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Program counter of the `CALL` instruction.
    pub pc: usize,
    /// Statically-resolved callee, when the address folded.
    pub callee: Option<Address>,
    /// The site's classification.
    pub verdict: CallSiteVerdict,
}

/// Aggregate verdict for one deployed contract.
#[derive(Debug, Clone)]
pub struct ContractVerdict {
    /// All call sites, in code order.
    pub sites: Vec<CallSite>,
    /// Height of the static call tree rooted here: 0 for leaf contracts,
    /// `1 + max(callee heights)` otherwise; `usize::MAX` inside a cycle.
    pub height: usize,
    /// `true` when every site is [`CallSiteVerdict::Summarizable`] or
    /// [`CallSiteVerdict::NoCode`] — the contract's own transactions can
    /// bind across every call edge.
    pub summarizable: bool,
}

/// The static call graph of a registry, with its SCC condensation and
/// per-site verdicts.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Deployed addresses in bottom-up (callees-first) summary order.
    pub bottom_up: Vec<Address>,
    /// Strongly connected components, in the same bottom-up order;
    /// components with more than one member (or a self-loop) are
    /// recursive.
    pub sccs: Vec<Vec<Address>>,
    /// Per-contract classification.
    pub verdicts: BTreeMap<Address, ContractVerdict>,
}

impl CallGraph {
    /// Builds the call graph of `registry` by running the per-contract
    /// abstract interpretation and linking its summarized call sites.
    pub fn build(registry: &CodeRegistry) -> CallGraph {
        let mut addrs: Vec<Address> = registry.iter().map(|(a, _)| *a).collect();
        addrs.sort();
        let index_of: BTreeMap<Address, usize> =
            addrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();

        // Per contract: (pc, Option<callee>) for every call site.
        let mut raw_sites: Vec<Vec<(usize, Option<Address>)>> = Vec::with_capacity(addrs.len());
        for addr in &addrs {
            let code = registry.code(addr).expect("address came from the registry");
            let mut cfg = Cfg::build(&code);
            let plan = absint::analyze_with(&code, &mut cfg, Some(registry));
            let mut sites = Vec::new();
            for block in &plan.blocks {
                if let Some(call) = &block.call {
                    sites.push((call.pc, Some(call.callee)));
                }
                if let Some((pc, callee)) = block.no_code_call {
                    sites.push((pc, Some(callee)));
                }
                if let Some(pc) = block.dynamic_call {
                    sites.push((pc, None));
                }
            }
            sites.sort_by_key(|&(pc, _)| pc);
            raw_sites.push(sites);
        }

        // Edges restricted to deployed callees (a no-code target has no
        // node to point at).
        let succs: Vec<Vec<usize>> = raw_sites
            .iter()
            .map(|sites| {
                sites
                    .iter()
                    .filter_map(|(_, callee)| callee.and_then(|c| index_of.get(&c).copied()))
                    .collect()
            })
            .collect();

        let sccs = tarjan_sccs(&succs);
        // Tarjan emits components in reverse topological order of the
        // condensation — callees before callers — exactly the bottom-up
        // summary order.
        let mut scc_of = vec![0usize; addrs.len()];
        for (scc_index, component) in sccs.iter().enumerate() {
            for &node in component {
                scc_of[node] = scc_index;
            }
        }
        let recursive_scc: Vec<bool> = sccs
            .iter()
            .map(|component| {
                component.len() > 1 || component.iter().any(|&n| succs[n].contains(&n))
            })
            .collect();

        // Heights bottom-up over the condensation DAG.
        let mut height = vec![0usize; addrs.len()];
        for component in &sccs {
            for &node in component {
                if recursive_scc[scc_of[node]] {
                    height[node] = usize::MAX;
                    continue;
                }
                let mut h = 0usize;
                for &succ in &succs[node] {
                    let below = height[succ];
                    h = h.max(below.saturating_add(1));
                }
                height[node] = h;
            }
        }

        let mut verdicts = BTreeMap::new();
        for (i, addr) in addrs.iter().enumerate() {
            let sites: Vec<CallSite> = raw_sites[i]
                .iter()
                .map(|&(pc, callee)| {
                    let verdict = match callee {
                        None => CallSiteVerdict::DynamicTarget,
                        Some(c) => match index_of.get(&c) {
                            None => CallSiteVerdict::NoCode,
                            Some(&j) if scc_of[j] == scc_of[i] || recursive_scc[scc_of[j]] => {
                                CallSiteVerdict::Recursive
                            }
                            Some(&j) if height[j].saturating_add(1) > CALL_DEPTH_LIMIT => {
                                CallSiteVerdict::DepthExceeded
                            }
                            Some(_) => CallSiteVerdict::Summarizable,
                        },
                    };
                    CallSite {
                        pc,
                        callee,
                        verdict,
                    }
                })
                .collect();
            let summarizable = sites.iter().all(|s| {
                matches!(
                    s.verdict,
                    CallSiteVerdict::Summarizable | CallSiteVerdict::NoCode
                )
            });
            verdicts.insert(
                *addr,
                ContractVerdict {
                    sites,
                    height: height[i],
                    summarizable,
                },
            );
        }

        CallGraph {
            bottom_up: sccs.iter().flatten().map(|&n| addrs[n]).collect(),
            sccs: sccs
                .iter()
                .map(|component| component.iter().map(|&n| addrs[n]).collect())
                .collect(),
            verdicts,
        }
    }

    /// Sites with the given verdict across the whole registry, as
    /// `(contract, pc)` pairs in address order.
    pub fn sites_with(&self, verdict: CallSiteVerdict) -> Vec<(Address, usize)> {
        self.verdicts
            .iter()
            .flat_map(|(addr, v)| {
                v.sites
                    .iter()
                    .filter(move |s| s.verdict == verdict)
                    .map(move |s| (*addr, s.pc))
            })
            .collect()
    }
}

/// Iterative Tarjan SCC over an adjacency list; components are emitted in
/// reverse topological order (every edge leaves a later component).
fn tarjan_sccs(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS frames: (node, next successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (node, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[node] = next_index;
                lowlink[node] = next_index;
                next_index += 1;
                stack.push(node);
                on_stack[node] = true;
            }
            if let Some(&succ) = succs[node].get(*pos) {
                *pos += 1;
                if index[succ] == UNVISITED {
                    frames.push((succ, 0));
                } else if on_stack[succ] {
                    lowlink[node] = lowlink[node].min(index[succ]);
                }
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[node]);
            }
            if lowlink[node] == index[node] {
                let mut component = Vec::new();
                loop {
                    let member = stack.pop().expect("stack holds the component");
                    on_stack[member] = false;
                    component.push(member);
                    if member == node {
                        break;
                    }
                }
                component.sort_unstable();
                components.push(component);
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_vm::{assemble, contracts};

    /// A contract that CALLs `target` with a static address and stops.
    fn caller_of(target: Address) -> Vec<u8> {
        let hex: String = target
            .to_u256()
            .to_be_bytes()
            .iter()
            .skip(12)
            .map(|b| format!("{b:02x}"))
            .collect();
        assemble(&format!(
            "PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH20 0x{hex} GAS CALL POP STOP"
        ))
        .expect("valid assembly")
    }

    /// A contract whose CALL target comes off calldata → dynamic at
    /// analysis time (constant arithmetic would fold away).
    fn dynamic_caller() -> Vec<u8> {
        assemble(
            "PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 \
             PUSH1 0 CALLDATALOAD GAS CALL POP STOP",
        )
        .expect("valid assembly")
    }

    #[test]
    fn linear_chain_orders_bottom_up() {
        let leaf = Address::from_u64(1);
        let mid = Address::from_u64(2);
        let top = Address::from_u64(3);
        let registry = CodeRegistry::builder()
            .deploy(leaf, contracts::counter())
            .deploy(mid, caller_of(leaf))
            .deploy(top, caller_of(mid))
            .build();
        let graph = CallGraph::build(&registry);
        let pos = |a: Address| graph.bottom_up.iter().position(|&x| x == a).unwrap();
        assert!(pos(leaf) < pos(mid), "callee before caller");
        assert!(pos(mid) < pos(top));
        assert_eq!(graph.verdicts[&leaf].height, 0);
        assert_eq!(graph.verdicts[&mid].height, 1);
        assert_eq!(graph.verdicts[&top].height, 2);
        assert!(graph.verdicts[&top].summarizable);
        assert_eq!(
            graph.verdicts[&top].sites[0].verdict,
            CallSiteVerdict::Summarizable
        );
    }

    #[test]
    fn mutual_recursion_is_one_scc() {
        let a = Address::from_u64(1);
        let b = Address::from_u64(2);
        let registry = CodeRegistry::builder()
            .deploy(a, caller_of(b))
            .deploy(b, caller_of(a))
            .build();
        let graph = CallGraph::build(&registry);
        assert!(graph.sccs.iter().any(|c| c.len() == 2));
        assert_eq!(
            graph.verdicts[&a].sites[0].verdict,
            CallSiteVerdict::Recursive
        );
        assert!(!graph.verdicts[&a].summarizable);
        assert_eq!(graph.verdicts[&a].height, usize::MAX);
    }

    #[test]
    fn self_call_is_recursive() {
        let a = Address::from_u64(1);
        let registry = CodeRegistry::builder().deploy(a, caller_of(a)).build();
        let graph = CallGraph::build(&registry);
        assert_eq!(
            graph.verdicts[&a].sites[0].verdict,
            CallSiteVerdict::Recursive
        );
    }

    #[test]
    fn dynamic_target_flagged() {
        let a = Address::from_u64(1);
        let registry = CodeRegistry::builder().deploy(a, dynamic_caller()).build();
        let graph = CallGraph::build(&registry);
        assert_eq!(
            graph.verdicts[&a].sites[0].verdict,
            CallSiteVerdict::DynamicTarget
        );
        assert_eq!(graph.sites_with(CallSiteVerdict::DynamicTarget).len(), 1);
    }

    #[test]
    fn no_code_target_is_benign() {
        let a = Address::from_u64(1);
        let registry = CodeRegistry::builder()
            .deploy(a, caller_of(Address::from_u64(99)))
            .build();
        let graph = CallGraph::build(&registry);
        assert_eq!(graph.verdicts[&a].sites[0].verdict, CallSiteVerdict::NoCode);
        assert!(graph.verdicts[&a].summarizable);
    }

    #[test]
    fn depth_limit_chain_flagged() {
        // A chain of CALL_DEPTH_LIMIT + 1 contracts: the top site's static
        // chain nests past the interpreter's frame limit.
        let addr = |i: usize| Address::from_u64(100 + i as u64);
        let mut builder = CodeRegistry::builder().deploy(addr(0), contracts::counter());
        for i in 1..=CALL_DEPTH_LIMIT + 1 {
            builder = builder.deploy(addr(i), caller_of(addr(i - 1)));
        }
        let graph = CallGraph::build(&builder.build());
        let top = addr(CALL_DEPTH_LIMIT + 1);
        assert_eq!(
            graph.verdicts[&top].sites[0].verdict,
            CallSiteVerdict::DepthExceeded
        );
        // One level down still fits.
        assert_eq!(
            graph.verdicts[&addr(CALL_DEPTH_LIMIT)].sites[0].verdict,
            CallSiteVerdict::Summarizable
        );
    }

    #[test]
    fn fixture_universe_routers_summarizable() {
        let amm = Address::from_u64(1);
        let router = Address::from_u64(2);
        let registry = CodeRegistry::builder()
            .deploy(amm, contracts::amm())
            .deploy(router, contracts::dex_router(amm))
            .build();
        let graph = CallGraph::build(&registry);
        assert!(
            graph.verdicts[&router].summarizable,
            "router sites: {:?}",
            graph.verdicts[&router].sites
        );
        assert!(!graph.verdicts[&router].sites.is_empty());
    }
}
