//! Interprocedural call-graph analysis over a contract registry.
//!
//! The per-contract abstract interpreter ([`crate::absint`]) already turns
//! statically-resolvable `CALL` sites into [`PlanCall`] summaries; this
//! module lifts those site-level facts to the registry level. It builds
//! the static call graph (an edge per summarized or dynamic call site),
//! condenses it with Tarjan's SCC algorithm, and classifies every site
//! and contract:
//!
//! - the SCC condensation yields a **bottom-up order** — callees before
//!   callers — which is the order summaries must be computed in so a
//!   caller's template can substitute fully-summarized callee plans
//!   (the [`crate::Analyzer`] P-SAG cache is warmed in this order);
//! - sites whose callee sits in the same SCC (including self-loops) are
//!   **recursive** — composing them would not terminate, so the bind
//!   walk's frame budget would blow and speculation takes over;
//! - chains nesting deeper than [`CALL_DEPTH_LIMIT`] are flagged, since
//!   the interpreter fails such calls at runtime (pushing 0) while the
//!   static plan assumed success;
//! - dynamic-target sites (callee address not a foldable constant) are
//!   the paper's unanalyzable residue, surfaced by `dmvcc lint` as
//!   `unanalyzable-call-target`.
//!
//! The verdicts are *advisory*: the C-SAG walk re-checks everything at
//! bind time and falls back to speculative pre-execution on any mismatch,
//! so a wrong verdict can cost performance, never correctness.

use std::collections::BTreeMap;

use dmvcc_primitives::Address;
use dmvcc_vm::{CodeRegistry, Opcode, CALL_DEPTH_LIMIT};

use crate::absint::{self, CallTarget, PlanCallKind};
use crate::cfg::Cfg;
use crate::psag::AccessKind;

/// Classification of one call-family site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallSiteVerdict {
    /// The callee summary composes into the caller's template.
    Summarizable,
    /// Statically-known target with no deployed code: the call trivially
    /// succeeds with empty return data (modeled exactly, nothing to
    /// compose).
    NoCode,
    /// Dynamic-but-bounded dispatch: the callee address is read from a
    /// registry storage slot, so the bind walk enumerates the candidate
    /// and composes its summary under the slot's snapshot guard.
    BoundedDynamic,
    /// The callee address neither folds to a constant nor comes from a
    /// registry slot; the block degrades to speculative fallback.
    DynamicTarget,
    /// A `STATICCALL` whose target is not provably write-free: the callee
    /// can reach a store, which reverts inside the read-only frame.
    /// Surfaced by `dmvcc lint` as the `staticcall-writes` error.
    StaticWrites,
    /// The callee reaches back into the caller's SCC; composition would
    /// not terminate.
    Recursive,
    /// The static call chain below this site nests past
    /// [`CALL_DEPTH_LIMIT`], where the interpreter fails the call.
    DepthExceeded,
}

/// One call site of a contract, as seen by the call graph.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Program counter of the call instruction.
    pub pc: usize,
    /// Which call-family instruction sits at the site.
    pub kind: PlanCallKind,
    /// Statically-resolved callee, when the address folded.
    pub callee: Option<Address>,
    /// The site's classification.
    pub verdict: CallSiteVerdict,
}

/// Aggregate verdict for one deployed contract.
#[derive(Debug, Clone)]
pub struct ContractVerdict {
    /// All call sites, in code order.
    pub sites: Vec<CallSite>,
    /// Height of the static call tree rooted here: 0 for leaf contracts,
    /// `1 + max(callee heights)` otherwise; `usize::MAX` inside a cycle.
    pub height: usize,
    /// `true` when every site is [`CallSiteVerdict::Summarizable`],
    /// [`CallSiteVerdict::NoCode`] or [`CallSiteVerdict::BoundedDynamic`]
    /// — the contract's own transactions can bind across every call edge.
    pub summarizable: bool,
    /// Statically-verified write freedom: no storage write, commutative
    /// increment, or balance-moving value transfer is reachable from this
    /// contract's code, transitively through its fixed call targets. This
    /// is the proof obligation a `STATICCALL` target must discharge.
    pub write_free: bool,
}

/// How a raw call site's target resolved during abstract interpretation.
#[derive(Debug, Clone, Copy)]
enum RawTarget {
    Fixed(Address),
    Registry,
    Dynamic,
}

/// The static call graph of a registry, with its SCC condensation and
/// per-site verdicts.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Deployed addresses in bottom-up (callees-first) summary order.
    pub bottom_up: Vec<Address>,
    /// Strongly connected components, in the same bottom-up order;
    /// components with more than one member (or a self-loop) are
    /// recursive.
    pub sccs: Vec<Vec<Address>>,
    /// Per-contract classification.
    pub verdicts: BTreeMap<Address, ContractVerdict>,
}

impl CallGraph {
    /// Builds the call graph of `registry` by running the per-contract
    /// abstract interpretation and linking its summarized call sites.
    pub fn build(registry: &CodeRegistry) -> CallGraph {
        let mut addrs: Vec<Address> = registry.iter().map(|(a, _)| *a).collect();
        addrs.sort();
        let index_of: BTreeMap<Address, usize> =
            addrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();

        // Per contract: (pc, kind, target) for every call site, plus the
        // local write facts the write-freedom fixpoint starts from.
        let mut raw_sites: Vec<Vec<(usize, PlanCallKind, RawTarget)>> =
            Vec::with_capacity(addrs.len());
        let mut writes_possible = vec![false; addrs.len()];
        for (i, addr) in addrs.iter().enumerate() {
            let code = registry.code(addr).expect("address came from the registry");
            let mut cfg = Cfg::build(&code);
            let plan = absint::analyze_with(&code, &mut cfg, Some(registry));
            let mut sites = Vec::new();
            let mut modeled_call_pcs = Vec::new();
            for block in &plan.blocks {
                if let Some(call) = &block.call {
                    let target = match call.target {
                        CallTarget::Fixed(callee) => RawTarget::Fixed(callee),
                        CallTarget::RegistrySlot { .. } => RawTarget::Registry,
                    };
                    sites.push((call.pc, call.kind, target));
                    modeled_call_pcs.push(call.pc);
                    // A value transfer debits the sender and credits the
                    // recipient balance — storage writes either way.
                    if !call.value.as_const().is_some_and(|v| v.is_zero()) {
                        writes_possible[i] = true;
                    }
                    // The candidate set of a registry slot is unknown at
                    // graph-build time; assume the worst for write freedom.
                    if matches!(call.target, CallTarget::RegistrySlot { .. }) {
                        writes_possible[i] = true;
                    }
                }
                if let Some((pc, kind, callee)) = block.no_code_call {
                    sites.push((pc, kind, RawTarget::Fixed(callee)));
                    modeled_call_pcs.push(pc);
                }
                if let Some(pc) = block.dynamic_call {
                    let kind = code
                        .get(pc)
                        .and_then(|&b| Opcode::from_byte(b))
                        .map_or(PlanCallKind::Call, plan_call_kind);
                    sites.push((pc, kind, RawTarget::Dynamic));
                    modeled_call_pcs.push(pc);
                    // Unknown callee → unknown writes.
                    writes_possible[i] = true;
                }
                if block
                    .accesses
                    .iter()
                    .any(|a| matches!(a.kind, AccessKind::Write | AccessKind::Add))
                {
                    writes_possible[i] = true;
                }
            }
            // A call-family instruction the abstract interpreter could not
            // summarize at all (e.g. unaligned memory regions) reaches an
            // unknown callee: no graph edge, but writes are possible.
            for block in &cfg.blocks {
                if let Some(ins) = block.instructions.last() {
                    if matches!(
                        ins.op,
                        Opcode::Call | Opcode::DelegateCall | Opcode::StaticCall
                    ) && !modeled_call_pcs.contains(&ins.pc)
                    {
                        writes_possible[i] = true;
                    }
                }
            }
            sites.sort_by_key(|&(pc, _, _)| pc);
            raw_sites.push(sites);
        }

        // Edges restricted to fixed, deployed callees (a no-code target has
        // no node to point at; dynamic candidates are resolved at bind
        // time, not graph-build time).
        let succs: Vec<Vec<usize>> = raw_sites
            .iter()
            .map(|sites| {
                sites
                    .iter()
                    .filter_map(|(_, _, target)| match target {
                        RawTarget::Fixed(c) => index_of.get(c).copied(),
                        RawTarget::Registry | RawTarget::Dynamic => None,
                    })
                    .collect()
            })
            .collect();

        let sccs = tarjan_sccs(&succs);
        // Tarjan emits components in reverse topological order of the
        // condensation — callees before callers — exactly the bottom-up
        // summary order.
        let mut scc_of = vec![0usize; addrs.len()];
        for (scc_index, component) in sccs.iter().enumerate() {
            for &node in component {
                scc_of[node] = scc_index;
            }
        }
        let recursive_scc: Vec<bool> = sccs
            .iter()
            .map(|component| {
                component.len() > 1 || component.iter().any(|&n| succs[n].contains(&n))
            })
            .collect();

        // Heights bottom-up over the condensation DAG.
        let mut height = vec![0usize; addrs.len()];
        for component in &sccs {
            for &node in component {
                if recursive_scc[scc_of[node]] {
                    height[node] = usize::MAX;
                    continue;
                }
                let mut h = 0usize;
                for &succ in &succs[node] {
                    let below = height[succ];
                    h = h.max(below.saturating_add(1));
                }
                height[node] = h;
            }
        }

        // Write-freedom fixpoint: a write anywhere below a contract (along
        // fixed, deployed call edges) makes the contract itself capable of
        // writing. Least fixpoint of OR — recursion converges naturally.
        loop {
            let mut changed = false;
            for i in 0..addrs.len() {
                if writes_possible[i] {
                    continue;
                }
                if succs[i].iter().any(|&j| writes_possible[j]) {
                    writes_possible[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut verdicts = BTreeMap::new();
        for (i, addr) in addrs.iter().enumerate() {
            let sites: Vec<CallSite> = raw_sites[i]
                .iter()
                .map(|&(pc, kind, target)| {
                    let callee = match target {
                        RawTarget::Fixed(c) => Some(c),
                        RawTarget::Registry | RawTarget::Dynamic => None,
                    };
                    let verdict = match target {
                        RawTarget::Dynamic => CallSiteVerdict::DynamicTarget,
                        RawTarget::Registry => CallSiteVerdict::BoundedDynamic,
                        RawTarget::Fixed(c) => match index_of.get(&c) {
                            None => CallSiteVerdict::NoCode,
                            Some(&j) if scc_of[j] == scc_of[i] || recursive_scc[scc_of[j]] => {
                                CallSiteVerdict::Recursive
                            }
                            Some(&j) if height[j].saturating_add(1) > CALL_DEPTH_LIMIT => {
                                CallSiteVerdict::DepthExceeded
                            }
                            Some(&j) if kind == PlanCallKind::Static && writes_possible[j] => {
                                CallSiteVerdict::StaticWrites
                            }
                            Some(_) => CallSiteVerdict::Summarizable,
                        },
                    };
                    CallSite {
                        pc,
                        kind,
                        callee,
                        verdict,
                    }
                })
                .collect();
            let summarizable = sites.iter().all(|s| {
                matches!(
                    s.verdict,
                    CallSiteVerdict::Summarizable
                        | CallSiteVerdict::NoCode
                        | CallSiteVerdict::BoundedDynamic
                )
            });
            verdicts.insert(
                *addr,
                ContractVerdict {
                    sites,
                    height: height[i],
                    summarizable,
                    write_free: !writes_possible[i],
                },
            );
        }

        CallGraph {
            bottom_up: sccs.iter().flatten().map(|&n| addrs[n]).collect(),
            sccs: sccs
                .iter()
                .map(|component| component.iter().map(|&n| addrs[n]).collect())
                .collect(),
            verdicts,
        }
    }

    /// Sites with the given verdict across the whole registry, as
    /// `(contract, pc)` pairs in address order.
    pub fn sites_with(&self, verdict: CallSiteVerdict) -> Vec<(Address, usize)> {
        self.verdicts
            .iter()
            .flat_map(|(addr, v)| {
                v.sites
                    .iter()
                    .filter(move |s| s.verdict == verdict)
                    .map(move |s| (*addr, s.pc))
            })
            .collect()
    }
}

/// Maps a call-family opcode to its plan kind.
fn plan_call_kind(op: Opcode) -> PlanCallKind {
    match op {
        Opcode::DelegateCall => PlanCallKind::Delegate,
        Opcode::StaticCall => PlanCallKind::Static,
        _ => PlanCallKind::Call,
    }
}

/// Iterative Tarjan SCC over an adjacency list; components are emitted in
/// reverse topological order (every edge leaves a later component).
fn tarjan_sccs(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS frames: (node, next successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (node, ref mut pos)) = frames.last_mut() {
            if *pos == 0 {
                index[node] = next_index;
                lowlink[node] = next_index;
                next_index += 1;
                stack.push(node);
                on_stack[node] = true;
            }
            if let Some(&succ) = succs[node].get(*pos) {
                *pos += 1;
                if index[succ] == UNVISITED {
                    frames.push((succ, 0));
                } else if on_stack[succ] {
                    lowlink[node] = lowlink[node].min(index[succ]);
                }
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[node]);
            }
            if lowlink[node] == index[node] {
                let mut component = Vec::new();
                loop {
                    let member = stack.pop().expect("stack holds the component");
                    on_stack[member] = false;
                    component.push(member);
                    if member == node {
                        break;
                    }
                }
                component.sort_unstable();
                components.push(component);
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_vm::{assemble, contracts};

    /// A contract that CALLs `target` with a static address and stops.
    fn caller_of(target: Address) -> Vec<u8> {
        let hex: String = target
            .to_u256()
            .to_be_bytes()
            .iter()
            .skip(12)
            .map(|b| format!("{b:02x}"))
            .collect();
        assemble(&format!(
            "PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH20 0x{hex} GAS CALL POP STOP"
        ))
        .expect("valid assembly")
    }

    /// A contract whose CALL target comes off calldata → dynamic at
    /// analysis time (constant arithmetic would fold away).
    fn dynamic_caller() -> Vec<u8> {
        assemble(
            "PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 \
             PUSH1 0 CALLDATALOAD GAS CALL POP STOP",
        )
        .expect("valid assembly")
    }

    #[test]
    fn linear_chain_orders_bottom_up() {
        let leaf = Address::from_u64(1);
        let mid = Address::from_u64(2);
        let top = Address::from_u64(3);
        let registry = CodeRegistry::builder()
            .deploy(leaf, contracts::counter())
            .deploy(mid, caller_of(leaf))
            .deploy(top, caller_of(mid))
            .build();
        let graph = CallGraph::build(&registry);
        let pos = |a: Address| graph.bottom_up.iter().position(|&x| x == a).unwrap();
        assert!(pos(leaf) < pos(mid), "callee before caller");
        assert!(pos(mid) < pos(top));
        assert_eq!(graph.verdicts[&leaf].height, 0);
        assert_eq!(graph.verdicts[&mid].height, 1);
        assert_eq!(graph.verdicts[&top].height, 2);
        assert!(graph.verdicts[&top].summarizable);
        assert_eq!(
            graph.verdicts[&top].sites[0].verdict,
            CallSiteVerdict::Summarizable
        );
    }

    #[test]
    fn mutual_recursion_is_one_scc() {
        let a = Address::from_u64(1);
        let b = Address::from_u64(2);
        let registry = CodeRegistry::builder()
            .deploy(a, caller_of(b))
            .deploy(b, caller_of(a))
            .build();
        let graph = CallGraph::build(&registry);
        assert!(graph.sccs.iter().any(|c| c.len() == 2));
        assert_eq!(
            graph.verdicts[&a].sites[0].verdict,
            CallSiteVerdict::Recursive
        );
        assert!(!graph.verdicts[&a].summarizable);
        assert_eq!(graph.verdicts[&a].height, usize::MAX);
    }

    #[test]
    fn self_call_is_recursive() {
        let a = Address::from_u64(1);
        let registry = CodeRegistry::builder().deploy(a, caller_of(a)).build();
        let graph = CallGraph::build(&registry);
        assert_eq!(
            graph.verdicts[&a].sites[0].verdict,
            CallSiteVerdict::Recursive
        );
    }

    #[test]
    fn dynamic_target_flagged() {
        let a = Address::from_u64(1);
        let registry = CodeRegistry::builder().deploy(a, dynamic_caller()).build();
        let graph = CallGraph::build(&registry);
        assert_eq!(
            graph.verdicts[&a].sites[0].verdict,
            CallSiteVerdict::DynamicTarget
        );
        assert_eq!(graph.sites_with(CallSiteVerdict::DynamicTarget).len(), 1);
    }

    #[test]
    fn no_code_target_is_benign() {
        let a = Address::from_u64(1);
        let registry = CodeRegistry::builder()
            .deploy(a, caller_of(Address::from_u64(99)))
            .build();
        let graph = CallGraph::build(&registry);
        assert_eq!(graph.verdicts[&a].sites[0].verdict, CallSiteVerdict::NoCode);
        assert!(graph.verdicts[&a].summarizable);
    }

    #[test]
    fn depth_limit_chain_flagged() {
        // A chain of CALL_DEPTH_LIMIT + 1 contracts: the top site's static
        // chain nests past the interpreter's frame limit.
        let addr = |i: usize| Address::from_u64(100 + i as u64);
        let mut builder = CodeRegistry::builder().deploy(addr(0), contracts::counter());
        for i in 1..=CALL_DEPTH_LIMIT + 1 {
            builder = builder.deploy(addr(i), caller_of(addr(i - 1)));
        }
        let graph = CallGraph::build(&builder.build());
        let top = addr(CALL_DEPTH_LIMIT + 1);
        assert_eq!(
            graph.verdicts[&top].sites[0].verdict,
            CallSiteVerdict::DepthExceeded
        );
        // One level down still fits.
        assert_eq!(
            graph.verdicts[&addr(CALL_DEPTH_LIMIT)].sites[0].verdict,
            CallSiteVerdict::Summarizable
        );
    }

    #[test]
    fn fixture_universe_routers_summarizable() {
        let amm = Address::from_u64(1);
        let router = Address::from_u64(2);
        let registry = CodeRegistry::builder()
            .deploy(amm, contracts::amm())
            .deploy(router, contracts::dex_router(amm))
            .build();
        let graph = CallGraph::build(&registry);
        assert!(
            graph.verdicts[&router].summarizable,
            "router sites: {:?}",
            graph.verdicts[&router].sites
        );
        assert!(!graph.verdicts[&router].sites.is_empty());
    }

    /// A contract that STATICCALLs `target` and stops.
    fn static_caller_of(target: Address) -> Vec<u8> {
        let hex = dmvcc_primitives::encode_hex(target.as_bytes());
        assemble(&format!(
            "PUSH1 0 PUSH1 0 PUSH1 0 PUSH1 0 PUSH20 0x{hex} GAS STATICCALL POP STOP"
        ))
        .expect("valid assembly")
    }

    #[test]
    fn write_freedom_is_a_transitive_proof() {
        let floor = Address::from_u64(1);
        let viewer = Address::from_u64(2);
        let token = Address::from_u64(3);
        let registry = CodeRegistry::builder()
            .deploy(floor, contracts::floor_oracle())
            .deploy(viewer, static_caller_of(floor))
            .deploy(token, contracts::token())
            .build();
        let graph = CallGraph::build(&registry);
        // The oracle stores nothing; a wrapper that only STATICCALLs it
        // inherits the proof. The token writes balances.
        assert!(graph.verdicts[&floor].write_free);
        assert!(graph.verdicts[&viewer].write_free);
        assert!(!graph.verdicts[&token].write_free);
        assert_eq!(
            graph.verdicts[&viewer].sites[0].verdict,
            CallSiteVerdict::Summarizable
        );
    }

    #[test]
    fn staticcall_into_writer_is_flagged() {
        let token = Address::from_u64(1);
        let viewer = Address::from_u64(2);
        let registry = CodeRegistry::builder()
            .deploy(token, contracts::token())
            .deploy(viewer, static_caller_of(token))
            .build();
        let graph = CallGraph::build(&registry);
        let site = &graph.verdicts[&viewer].sites[0];
        assert_eq!(site.kind, PlanCallKind::Static);
        assert_eq!(site.verdict, CallSiteVerdict::StaticWrites);
        assert!(!graph.verdicts[&viewer].summarizable);
    }

    #[test]
    fn registry_slot_dispatch_is_bounded_dynamic() {
        let splitter = Address::from_u64(1);
        let registry = CodeRegistry::builder()
            .deploy(splitter, contracts::royalty_splitter())
            .build();
        let graph = CallGraph::build(&registry);
        let verdict = &graph.verdicts[&splitter];
        let site = verdict
            .sites
            .iter()
            .find(|s| s.verdict == CallSiteVerdict::BoundedDynamic)
            .expect("registry-slot site gets the bounded verdict");
        assert_eq!(site.callee, None, "candidate set is per-transaction");
        // Bounded dispatch stays summarizable (it binds per candidate) but
        // poisons the write-freedom proof: the candidate set is unknown.
        assert!(verdict.summarizable);
        assert!(!verdict.write_free);
    }

    #[test]
    fn delegate_site_kind_and_write_taint_propagate() {
        let splitter = Address::from_u64(1);
        let floor = Address::from_u64(2);
        let drop = Address::from_u64(3);
        let registry = CodeRegistry::builder()
            .deploy(splitter, contracts::royalty_splitter())
            .deploy(floor, contracts::floor_oracle())
            .deploy(drop, contracts::nft_drop(splitter, floor))
            .build();
        let graph = CallGraph::build(&registry);
        let verdict = &graph.verdicts[&drop];
        let delegate = verdict
            .sites
            .iter()
            .find(|s| s.kind == PlanCallKind::Delegate)
            .expect("mint's delegatecall site");
        assert_eq!(delegate.callee, Some(splitter));
        assert_eq!(delegate.verdict, CallSiteVerdict::Summarizable);
        // The static preview site targets the write-free oracle.
        let preview = verdict
            .sites
            .iter()
            .find(|s| s.kind == PlanCallKind::Static)
            .expect("preview's staticcall site");
        assert_eq!(preview.verdict, CallSiteVerdict::Summarizable);
        // The drop writes locally (and borrows a writing body): not
        // write-free, but every site still summarizes.
        assert!(verdict.summarizable);
        assert!(!verdict.write_free);
    }
}
