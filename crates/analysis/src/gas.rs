//! Static gas upper bounds.
//!
//! A release point carries "an upper bound estimation to the gas needed
//! for the remaining statements" (paper §III-B). C-SAGs measure the bound
//! on the concrete unrolled path; this module computes the *static*
//! counterpart on the CFG. [`static_gas_bounds`] is the acyclic-path
//! maximum, `None` wherever a loop is reachable. [`loop_gas_bounds`]
//! extends it through *summarized* loops: a loop with a hard trip cap and
//! a fully-costed body ([`LoopSummary::bounded`]) contributes
//! `(cap + 1) × per_iter_gas + mem_gas` plus the worst exit path, so
//! release points inside and after capped loops get finite bounds too —
//! only unbounded loops (and unresolved jumps) still yield `None`.

use std::collections::HashMap;

use crate::absint::ContractPlan;
use crate::cfg::{BlockExit, Cfg};
use crate::loops::{LoopInfo, LoopSummary};

/// Gas cost of one basic block: the sum of its instructions' base costs
/// (dynamic components like `EXP`'s per-byte charge are bounded separately
/// at C-SAG time; the static bound is advisory).
fn block_gas(cfg: &Cfg, index: usize) -> u64 {
    cfg.blocks[index]
        .instructions
        .iter()
        .map(|ins| ins.op.base_gas())
        .sum()
}

/// Computes, per block, the maximum static gas needed from the block's
/// start to any terminator — `None` where a loop (or unresolved jump)
/// makes the bound infinite.
///
/// # Examples
///
/// ```
/// use dmvcc_analysis::{static_gas_bounds, Cfg};
/// use dmvcc_vm::assemble;
///
/// let code = assemble("PUSH1 1 PUSH1 2 ADD POP STOP")?;
/// let cfg = Cfg::build(&code);
/// let bounds = static_gas_bounds(&cfg);
/// assert!(bounds[0].is_some());
/// # Ok::<(), dmvcc_vm::AsmError>(())
/// ```
pub fn static_gas_bounds(cfg: &Cfg) -> Vec<Option<u64>> {
    let n = cfg.blocks.len();
    // Memoized DFS with cycle detection: a block on the current path that
    // is revisited has an unbounded cost.
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InProgress,
        Done,
    }
    let mut state = vec![State::Unvisited; n];
    let mut memo: HashMap<usize, Option<u64>> = HashMap::new();

    fn visit(
        cfg: &Cfg,
        index: usize,
        state: &mut Vec<State>,
        memo: &mut HashMap<usize, Option<u64>>,
    ) -> Option<u64> {
        match state[index] {
            State::Done => return memo[&index],
            State::InProgress => return None, // cycle ⇒ unbounded
            State::Unvisited => {}
        }
        state[index] = State::InProgress;
        let own = block_gas(cfg, index);
        let result = match &cfg.blocks[index].exit {
            BlockExit::Unknown => None,
            BlockExit::Halt | BlockExit::Abort => Some(own),
            _ => {
                let mut best: Option<u64> = Some(0);
                for succ in cfg.blocks[index].successors() {
                    match (best, visit(cfg, succ, state, memo)) {
                        (Some(b), Some(s)) => best = Some(b.max(s)),
                        _ => {
                            best = None;
                            break;
                        }
                    }
                }
                best.map(|b| own + b)
            }
        };
        state[index] = State::Done;
        memo.insert(index, result);
        result
    }

    (0..n)
        .map(|i| visit(cfg, i, &mut state, &mut memo))
        .collect()
}

/// Like [`static_gas_bounds`], but finite through *summarized* loops: any
/// loop with a hard static trip cap and a fully-costed body (see
/// [`LoopSummary::bounded`]) is collapsed to
/// `(cap + 1) × per_iter_gas + mem_gas + worst exit`, and the result is
/// propagated upstream. `plan` must be the [`ContractPlan`] the loop
/// summaries were built from (it is unused today but pins the signature to
/// the facts the bound depends on).
pub fn loop_gas_bounds(cfg: &Cfg, plan: &ContractPlan, loops: &LoopInfo) -> Vec<Option<u64>> {
    let _ = plan;
    let n = cfg.blocks.len();
    let mut bounds = static_gas_bounds(cfg);
    let mut owner: Vec<Option<&LoopSummary>> = vec![None; n];
    for summary in loops.loops.iter().filter(|l| l.bounded()) {
        for &b in &summary.body {
            owner[b] = Some(summary);
        }
    }
    // Relaxation over the loop-collapsed graph: every cycle sits inside a
    // summarized body (or keeps its `None`), so n passes reach a fixpoint.
    for _ in 0..n {
        let mut changed = false;
        for index in 0..n {
            if bounds[index].is_some() {
                continue;
            }
            let candidate = match owner[index] {
                // Any body block's remaining gas is covered by the whole
                // collapsed loop: at most cap body passes plus the final
                // guard visit, each bounded by the summed body gas.
                Some(summary) => collapsed_bound(summary, &bounds),
                None => match &cfg.blocks[index].exit {
                    BlockExit::Unknown => None,
                    BlockExit::Halt | BlockExit::Abort => Some(block_gas(cfg, index)),
                    _ => cfg.blocks[index]
                        .successors()
                        .iter()
                        .map(|&s| bounds[s])
                        .try_fold(0u64, |best, b| b.map(|b| best.max(b)))
                        .map(|best| block_gas(cfg, index).saturating_add(best)),
                },
            };
            if candidate.is_some() {
                bounds[index] = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    bounds
}

/// `(cap + 1) × per_iter + mem_gas + max(exit bounds)`, once every exit
/// target is itself bounded.
fn collapsed_bound(summary: &LoopSummary, bounds: &[Option<u64>]) -> Option<u64> {
    let cap = summary.trip.as_ref()?.cap?;
    let per_iter = summary.per_iter_gas?;
    let mut exit_max = 0u64;
    for &target in &summary.exit_targets {
        exit_max = exit_max.max(bounds[target]?);
    }
    Some(
        cap.saturating_add(1)
            .saturating_mul(per_iter)
            .saturating_add(summary.mem_gas)
            .saturating_add(exit_max),
    )
}

/// Renders a CFG (the SAG skeleton) as Graphviz DOT, with state-access
/// instructions highlighted and release points marked — the inspection
/// format used by the `analyze_contract` example.
pub fn cfg_to_dot(cfg: &Cfg, release_pcs: &[usize]) -> String {
    use dmvcc_vm::Opcode;
    let bounds = static_gas_bounds(cfg);
    let mut out = String::from("digraph sag {\n  node [shape=box, fontname=\"monospace\"];\n");
    for block in &cfg.blocks {
        let mut label = format!("block {} @pc {}", block.index, block.start_pc);
        if release_pcs.contains(&block.start_pc) {
            match bounds[block.index] {
                Some(g) => label.push_str(&format!("\\n[release point, gas ≤ {g}]")),
                None => label.push_str("\\n[release point]"),
            }
        }
        for ins in &block.instructions {
            match ins.op {
                Opcode::Sload | Opcode::Balance => {
                    label.push_str(&format!("\\nρ @ {}", ins.pc));
                }
                Opcode::Sstore => label.push_str(&format!("\\nω @ {}", ins.pc)),
                Opcode::Sadd => label.push_str(&format!("\\nω̄ @ {}", ins.pc)),
                Opcode::Revert | Opcode::Invalid => {
                    label.push_str(&format!("\\nabort @ {}", ins.pc));
                }
                _ => {}
            }
        }
        let style = if release_pcs.contains(&block.start_pc) {
            ", style=filled, fillcolor=palegreen"
        } else if matches!(block.exit, BlockExit::Abort) {
            ", style=filled, fillcolor=mistyrose"
        } else {
            ""
        };
        out.push_str(&format!(
            "  b{} [label=\"{}\"{}];\n",
            block.index, label, style
        ));
        for succ in block.successors() {
            out.push_str(&format!("  b{} -> b{};\n", block.index, succ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmvcc_vm::{assemble, contracts};

    fn cfg(src: &str) -> Cfg {
        Cfg::build(&assemble(src).expect("valid assembly"))
    }

    #[test]
    fn straight_line_bound_is_exact_sum() {
        let g = cfg("PUSH1 1 PUSH1 2 ADD POP STOP");
        let bounds = static_gas_bounds(&g);
        // 4 * 3 gas + STOP(1) = 13.
        assert_eq!(bounds[0], Some(13));
    }

    #[test]
    fn branch_takes_the_max_path() {
        // Taken path: JUMPDEST(1) + PUSH1(3)*2 + REVERT(0) = 7;
        // fall-through: PUSH1(3) + STOP(1) = 4. Entry adds its own cost.
        let g = cfg("PUSH1 1 PUSH @a JUMPI PUSH1 9 STOP a: JUMPDEST PUSH1 0 PUSH1 0 REVERT");
        let bounds = static_gas_bounds(&g);
        let entry_cost = 3 + 3 + 10; // PUSH1, PUSH2, JUMPI
        assert_eq!(bounds[0], Some(entry_cost + 7));
    }

    #[test]
    fn loops_make_bounds_unbounded() {
        let g = cfg("loop: JUMPDEST PUSH1 1 PUSH @loop JUMPI STOP");
        let bounds = static_gas_bounds(&g);
        assert_eq!(bounds[0], None);
        // The exit block after the loop is still bounded.
        let stop_block = g
            .blocks
            .iter()
            .find(|b| b.start_pc > 0 && matches!(b.exit, BlockExit::Halt))
            .expect("stop block");
        assert!(bounds[stop_block.index].is_some());
    }

    #[test]
    fn capped_loop_gets_a_finite_loop_aware_bound() {
        let src =
            "PUSH1 3 loop: JUMPDEST PUSH1 1 SWAP1 SUB DUP1 PUSH1 0 SWAP1 GT PUSH @loop JUMPI STOP";
        let code = assemble(src).expect("valid assembly");
        let mut g = Cfg::build(&code);
        let plan = crate::absint::analyze(&code, &mut g);
        let loops = crate::loops::analyze_loops(&g, &plan);
        assert_eq!(static_gas_bounds(&g)[0], None, "static pass must give up");
        let bounds = loop_gas_bounds(&g, &plan, &loops);
        let bound = bounds[0].expect("capped loop must get a finite bound");
        // 3 iterations of the body plus the final failed-guard pass plus
        // the STOP tail; the collapsed formula over-approximates, so only
        // check it is sane (positive, and at least one body's gas).
        let summary = &loops.loops[0];
        let per_iter = summary.per_iter_gas.expect("body fully costed");
        assert!(
            bound >= per_iter,
            "bound {bound} below one iteration {per_iter}"
        );
        assert!(bound <= (3 + 1) * per_iter + summary.mem_gas + 13);
    }

    #[test]
    fn uncapped_loop_stays_unbounded_in_loop_aware_pass() {
        // Trip count comes off storage with no dominating guard → no cap.
        let src = "PUSH1 0 SLOAD loop: JUMPDEST PUSH1 1 SWAP1 SUB DUP1 PUSH1 0 SWAP1 GT PUSH @loop JUMPI STOP";
        let code = assemble(src).expect("valid assembly");
        let mut g = Cfg::build(&code);
        let plan = crate::absint::analyze(&code, &mut g);
        let loops = crate::loops::analyze_loops(&g, &plan);
        let bounds = loop_gas_bounds(&g, &plan, &loops);
        assert_eq!(bounds[0], None);
    }

    #[test]
    fn airdrop_release_point_inside_summarized_loop_is_bounded() {
        // The airdrop contract's credit loop is abort-free and its head is
        // a release point; the calldata-derived trip count is clamped to 32
        // by the dominating guard, so the loop-aware pass must produce a
        // finite bound *at* that release point.
        let code = contracts::airdrop();
        let mut g = Cfg::build(&code);
        let plan = crate::absint::analyze(&code, &mut g);
        let loops = crate::loops::analyze_loops(&g, &plan);
        let summary = loops
            .loops
            .iter()
            .find(|l| l.bounded())
            .expect("airdrop loop must be summarized with a cap");
        assert!(
            g.release_points().contains(&summary.head_pc),
            "loop head at pc {} must be a release point",
            summary.head_pc
        );
        assert_eq!(
            static_gas_bounds(&g)[summary.head],
            None,
            "static pass alone cannot bound the loop"
        );
        let bounds = loop_gas_bounds(&g, &plan, &loops);
        assert!(
            bounds[summary.head].is_some(),
            "release point inside the summarized loop must get a finite bound"
        );
        // Blocks of the body (not just the head) are bounded too.
        for &b in &summary.body {
            assert!(bounds[b].is_some(), "body block {b} unbounded");
        }
    }

    #[test]
    fn unknown_jumps_make_bounds_unbounded() {
        let g = cfg("PUSH1 2 PUSH1 2 ADD JUMP JUMPDEST STOP");
        let bounds = static_gas_bounds(&g);
        assert_eq!(bounds[0], None);
    }

    #[test]
    fn token_release_blocks_have_static_bounds() {
        // The token contract is loop-free: every release point gets a
        // finite static bound.
        let code = contracts::token();
        let g = Cfg::build(&code);
        let bounds = static_gas_bounds(&g);
        for pc in g.release_points() {
            let block = g.blocks.iter().find(|b| b.start_pc == pc).expect("block");
            assert!(
                bounds[block.index].is_some(),
                "release point at {pc} lacks a static bound"
            );
        }
    }

    #[test]
    fn fig1_loop_blocks_unbounded_but_branch2_bounded() {
        let code = contracts::fig1_example();
        let g = Cfg::build(&code);
        let bounds = static_gas_bounds(&g);
        // Some block is unbounded (the loop) …
        assert!(bounds.iter().any(Option::is_none));
        // … and some terminal block is bounded.
        assert!(bounds.iter().any(Option::is_some));
    }

    #[test]
    fn dot_export_mentions_release_points_and_accesses() {
        let code = contracts::token();
        let g = Cfg::build(&code);
        let release = g.release_points();
        let dot = cfg_to_dot(&g, &release);
        assert!(dot.starts_with("digraph sag {"));
        assert!(dot.contains("release point"));
        assert!(dot.contains("ω̄")); // the SADD nodes
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }
}

#[cfg(test)]
mod safety_tests {
    //! Release-point safety: from any release point of any library
    //! contract, no abortable instruction may be reachable — verified by
    //! exhaustive walk of the CFG (this is the property Algorithm 2's
    //! correctness rests on).

    use crate::cfg::{BlockExit, Cfg};
    use dmvcc_vm::contracts;

    fn abort_free_from(cfg: &Cfg, start_block: usize) -> bool {
        let mut stack = vec![start_block];
        let mut seen = std::collections::HashSet::new();
        while let Some(block) = stack.pop() {
            if !seen.insert(block) {
                continue;
            }
            if matches!(
                cfg.blocks[block].exit,
                BlockExit::Abort | BlockExit::Unknown
            ) {
                return false;
            }
            if cfg.blocks[block]
                .instructions
                .iter()
                .any(|i| i.op.is_abortable())
            {
                return false;
            }
            stack.extend(cfg.blocks[block].successors());
        }
        true
    }

    #[test]
    fn no_abort_reachable_from_any_release_point() {
        for (name, code) in [
            ("token", contracts::token()),
            ("counter", contracts::counter()),
            ("amm", contracts::amm()),
            ("nft", contracts::nft()),
            ("ballot", contracts::ballot()),
            ("fig1", contracts::fig1_example()),
            ("auction", contracts::auction()),
            ("crowdsale", contracts::crowdsale()),
            ("batch_pay", contracts::batch_pay()),
            ("airdrop", contracts::airdrop()),
            ("batch_transfer", contracts::batch_transfer()),
        ] {
            let cfg = Cfg::build(&code);
            for pc in cfg.release_points() {
                let block = cfg
                    .blocks
                    .iter()
                    .find(|b| b.start_pc == pc)
                    .unwrap_or_else(|| panic!("{name}: no block at release pc {pc}"));
                assert!(
                    abort_free_from(&cfg, block.index),
                    "{name}: abort reachable from release point at pc {pc}"
                );
            }
        }
    }

    #[test]
    fn every_halting_path_passes_a_release_point_or_aborts() {
        // Completeness: a successful terminal block is either itself
        // release-eligible or downstream of one — otherwise early-write
        // visibility would never trigger for that path.
        for (name, code) in [
            ("token", contracts::token()),
            ("counter", contracts::counter()),
            ("crowdsale", contracts::crowdsale()),
        ] {
            let cfg = Cfg::build(&code);
            let reach = cfg.abort_reachable();
            for block in &cfg.blocks {
                if matches!(block.exit, BlockExit::Halt) {
                    assert!(
                        !reach[block.index],
                        "{name}: halting block at pc {} can still abort",
                        block.start_pc
                    );
                }
            }
        }
    }
}
